"""The grid file of Nievergelt, Hinterberger and Sevcik (1984).

The structure the paper measures itself against throughout ("like the
grid file, the directory corresponds to a rectilinearly partitioned
attribute space", §1; "improves upon ... the grid-file", §6).  This is
the binary-buddy variant: linear scales split intervals at dyadic
midpoints, so its regions live in the same prefix algebra as the hashing
schemes and every analysis tool (partition extraction, Theorem 4 counts)
applies unchanged.
"""

from repro.gridfile.gridfile import GridFile

__all__ = ["GridFile"]
