"""A binary-buddy grid file.

Structure (Nievergelt et al. 1984, §2 of that paper):

* **linear scales** — per dimension, a sorted list of boundary values
  partitioning that axis into intervals.  Scales refine only where data
  demands it, unlike the one-level hashing directory whose axis
  resolution is uniform.
* **grid directory** — the full cross product of the scale intervals;
  each grid block holds a page pointer, and a *region* (the paper's
  terminology: the blocks sharing one page) is kept a dyadic box so the
  two-disk-access principle and buddy merging work.

Splitting policy: an overflowing region is cut at the dyadic midpoint of
its box, cycling through the dimensions.  If the midpoint is not yet a
scale boundary the scale gains it and the directory duplicates the
corresponding slab — the grid file's own flavour of directory growth,
charged to the I/O ledger like the hashing directory rewrites.

The weakness the BMEH paper pounces on is visible in the shape: the
directory is a *product* of per-axis refinements, so one dense corner
refines entire hyperplanes and the directory grows superlinearly under
skew even though the scales are adaptive.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Any, Iterator, Sequence

from repro.bits import low_mask
from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.storage import DataPage, PageStore
from repro.core.interface import (
    KeyCodes,
    LeafRegion,
    MultidimensionalIndex,
    Record,
)


class _Region:
    """One data-page region: a dyadic box plus the split cursor."""

    __slots__ = ("lows", "highs", "m", "ptr")

    def __init__(
        self,
        lows: tuple[int, ...],
        highs: tuple[int, ...],
        m: int,
        ptr: int | None,
    ) -> None:
        self.lows = lows
        self.highs = highs
        self.m = m
        self.ptr = ptr

    def contains(self, codes: KeyCodes) -> bool:
        return all(
            lo <= c <= hi
            for lo, c, hi in zip(self.lows, codes, self.highs)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Region({self.lows}..{self.highs} -> {self.ptr})"


class GridFile(MultidimensionalIndex):
    """Binary-buddy grid file over pseudo-key codes.

    Args:
        dims / page_capacity / widths / store: as for every scheme.
        dir_page_entries: directory blocks per directory page for I/O
            accounting (64 by default, like the one-level scheme).
    """

    def __init__(
        self,
        dims: int,
        page_capacity: int,
        widths: Sequence[int] | int = 32,
        store: PageStore | None = None,
        dir_page_entries: int = 64,
    ) -> None:
        super().__init__(dims, page_capacity, widths, store)
        if dir_page_entries < 1:
            raise ValueError("dir_page_entries must be positive")
        self._epp = dir_page_entries
        # Scale j holds the interior boundary values of axis j: interval
        # i covers [boundary[i-1], boundary[i]) with virtual extremes.
        self._scales: list[list[int]] = [[] for _ in range(dims)]
        domain_high = tuple(low_mask(w) for w in self._widths)
        whole = _Region((0,) * dims, domain_high, dims - 1, None)
        self._grid: list[_Region] = [whole]
        self._shape = [1] * dims
        self._data_pages = 0

    # -- state ---------------------------------------------------------------

    @property
    def scales(self) -> tuple[tuple[int, ...], ...]:
        """The linear scales (interior boundaries per dimension)."""
        return tuple(tuple(s) for s in self._scales)

    @property
    def grid_shape(self) -> tuple[int, ...]:
        """Intervals per dimension; their product is the directory size."""
        return tuple(self._shape)

    @property
    def directory_size(self) -> int:
        size = 1
        for extent in self._shape:
            size *= extent
        return size

    @property
    def data_page_count(self) -> int:
        return self._data_pages

    # -- directory addressing ---------------------------------------------------

    def _interval(self, dim: int, code: int) -> int:
        return bisect.bisect_right(self._scales[dim], code)

    def _block_address(self, cell: Sequence[int]) -> int:
        address = 0
        for extent, coordinate in zip(self._shape, cell):
            address = address * extent + coordinate
        return address

    def _cell_of(self, codes: KeyCodes) -> tuple[int, ...]:
        return tuple(
            self._interval(j, codes[j]) for j in range(self._dims)
        )

    def _region_at(self, cell: Sequence[int]) -> _Region:
        return self._grid[self._block_address(cell)]

    def _charge_block_read(self, cell: Sequence[int]) -> None:
        token = self._block_address(cell) // self._epp
        self._store.count_virtual_read(("grid", token))

    def _charge_block_write(self, address: int) -> None:
        self._store.count_virtual_write(("grid", address // self._epp))

    # -- operations ----------------------------------------------------------

    def search(self, key: Sequence[int]) -> Any:
        codes = self._check_key(key)
        with self._store.operation():
            cell = self._cell_of(codes)
            self._charge_block_read(cell)
            region = self._region_at(cell)
            if region.ptr is None:
                raise KeyNotFoundError(f"key {codes} not found")
            return self._store.read(region.ptr).get(codes)

    def insert(self, key: Sequence[int], value: Any = None) -> None:
        codes = self._check_key(key)
        with self._store.operation():
            while True:
                cell = self._cell_of(codes)
                self._charge_block_read(cell)
                region = self._region_at(cell)
                if region.ptr is None:
                    region.ptr = self._store.allocate(
                        DataPage(self._page_capacity)
                    )
                    self._data_pages += 1
                    self._touch_region_blocks(region)
                page = self._store.read(region.ptr)
                if codes in page:
                    raise DuplicateKeyError(f"key {codes} already present")
                if not page.is_full:
                    page.put(codes, value)
                    self._store.write(region.ptr, page)
                    self._num_keys += 1
                    return
                self._split_region(region, page)

    def delete(self, key: Sequence[int]) -> Any:
        codes = self._check_key(key)
        with self._store.operation():
            cell = self._cell_of(codes)
            self._charge_block_read(cell)
            region = self._region_at(cell)
            if region.ptr is None:
                raise KeyNotFoundError(f"key {codes} not found")
            page = self._store.read(region.ptr)
            value = page.remove(codes)
            self._num_keys -= 1
            if len(page) == 0:
                self._store.free(region.ptr)
                self._data_pages -= 1
                region.ptr = None
                self._touch_region_blocks(region)
            else:
                self._store.write(region.ptr, page)
            self._try_merge(region)
            return value

    def range_search(
        self, lows: Sequence[int], highs: Sequence[int]
    ) -> Iterator[Record]:
        lows = self._check_key(lows)
        highs = self._check_key(highs)
        if any(lo > hi for lo, hi in zip(lows, highs)):
            return
        with self._store.operation():
            spans = [
                range(self._interval(j, lows[j]),
                      self._interval(j, highs[j]) + 1)
                for j in range(self._dims)
            ]
            seen: set[int] = set()
            for cell in itertools.product(*spans):
                self._charge_block_read(cell)
                region = self._region_at(cell)
                if id(region) in seen or region.ptr is None:
                    seen.add(id(region))
                    continue
                seen.add(id(region))
                for codes, value in self._store.read(region.ptr).items():
                    if all(
                        lows[j] <= codes[j] <= highs[j]
                        for j in range(self._dims)
                    ):
                        yield codes, value

    def items(self) -> Iterator[Record]:
        with self._store.operation():
            for region in self._regions():
                if region.ptr is not None:
                    yield from self._store.read(region.ptr).items()

    # -- splitting -----------------------------------------------------------

    def _split_region(self, region: _Region, page: DataPage) -> None:
        """Cut the region's box at its dyadic midpoint on the next axis."""
        total_depths = [
            self._widths[j]
            - (region.highs[j] - region.lows[j] + 1).bit_length() + 1
            for j in range(self._dims)
        ]
        m = self._next_split_dim(region.m, total_depths)
        midpoint = (region.lows[m] + region.highs[m] + 1) // 2
        self._ensure_boundary(m, midpoint)
        sibling = self._split_page(page, m, total_depths[m] + 1)
        left_ptr: int | None = region.ptr
        right_ptr: int | None = None
        if len(page) == 0:
            self._store.free(left_ptr)
            self._data_pages -= 1
            left_ptr = None
        else:
            self._store.write(left_ptr, page)
        if len(sibling) > 0:
            right_ptr = self._store.allocate(sibling)
            self._data_pages += 1
        left = _Region(region.lows, tuple(
            midpoint - 1 if j == m else region.highs[j]
            for j in range(self._dims)
        ), m, left_ptr)
        right = _Region(tuple(
            midpoint if j == m else region.lows[j]
            for j in range(self._dims)
        ), region.highs, m, right_ptr)
        for blocks, target in ((self._blocks_of(left), left),
                               (self._blocks_of(right), right)):
            for cell in blocks:
                address = self._block_address(cell)
                self._grid[address] = target
                self._charge_block_write(address)

    def _ensure_boundary(self, dim: int, boundary: int) -> None:
        """Insert a boundary into a scale, duplicating the grid slab."""
        scale = self._scales[dim]
        position = bisect.bisect_left(scale, boundary)
        if position < len(scale) and scale[position] == boundary:
            return
        scale.insert(position, boundary)
        old_shape = list(self._shape)
        self._shape[dim] += 1
        new_grid: list[_Region] = [None] * self.directory_size  # type: ignore
        for cell in itertools.product(*(range(e) for e in old_shape)):
            region = self._grid[_address_in(old_shape, cell)]
            images = [list(cell)]
            if cell[dim] == position:
                duplicated = list(cell)
                duplicated[dim] += 1
                images.append(duplicated)
            elif cell[dim] > position:
                images[0][dim] += 1
            for image in images:
                address = self._block_address(image)
                new_grid[address] = region
                self._charge_block_write(address)
        self._grid = new_grid

    def _blocks_of(self, region: _Region) -> Iterator[tuple[int, ...]]:
        spans = [
            range(self._interval(j, region.lows[j]),
                  self._interval(j, region.highs[j]) + 1)
            for j in range(self._dims)
        ]
        return itertools.product(*spans)

    def _touch_region_blocks(self, region: _Region) -> None:
        for cell in self._blocks_of(region):
            self._charge_block_write(self._block_address(cell))

    # -- merging ---------------------------------------------------------------

    def _try_merge(self, region: _Region) -> None:
        """Buddy merging: reunite a region with its dyadic buddy while
        the surviving records fit one page.  Scales keep their
        boundaries (the classic grid file does not shrink scales; the
        deadlock-free merge the paper contrasts in §4.2)."""
        while True:
            m = region.m
            span = region.highs[m] - region.lows[m] + 1
            if span > low_mask(self._widths[m]):
                return
            buddy_low = list(region.lows)
            buddy_is_upper = (region.lows[m] // span) % 2 == 1
            buddy_low[m] = (
                region.lows[m] - span if buddy_is_upper
                else region.lows[m] + span
            )
            if not 0 <= buddy_low[m] <= low_mask(self._widths[m]):
                return
            buddy = self._region_at(self._cell_of(tuple(buddy_low)))
            if (
                buddy is region
                or buddy.m != region.m
                or buddy.highs[m] - buddy.lows[m] + 1 != span
                or any(
                    buddy.lows[j] != region.lows[j]
                    or buddy.highs[j] != region.highs[j]
                    for j in range(self._dims)
                    if j != m
                )
            ):
                return
            load = sum(
                len(self._store.peek(ptr))
                for ptr in (region.ptr, buddy.ptr)
                if ptr is not None
            )
            if load > self._page_capacity:
                return
            keep = region.ptr
            if keep is None:
                keep = buddy.ptr
            elif buddy.ptr is not None:
                merged_page = self._store.read(keep)
                for record in self._store.read(buddy.ptr).items():
                    merged_page.put(*record)
                self._store.write(keep, merged_page)
                self._store.free(buddy.ptr)
                self._data_pages -= 1
            lower, upper = (buddy, region) if buddy_is_upper else (region, buddy)
            merged = _Region(
                lower.lows, upper.highs, (m - 1) % self._dims, keep
            )
            for cell in self._blocks_of(merged):
                address = self._block_address(cell)
                self._grid[address] = merged
                self._charge_block_write(address)
            region = merged

    # -- introspection -----------------------------------------------------------

    def _regions(self) -> Iterator[_Region]:
        seen: set[int] = set()
        for region in self._grid:
            if id(region) not in seen:
                seen.add(id(region))
                yield region

    def leaf_regions(self) -> Iterator[LeafRegion]:
        for region in self._regions():
            prefixes = []
            depths = []
            for j in range(self._dims):
                span = region.highs[j] - region.lows[j] + 1
                depth = self._widths[j] - (span.bit_length() - 1)
                depths.append(depth)
                prefixes.append(region.lows[j] >> (self._widths[j] - depth))
            yield LeafRegion(tuple(prefixes), tuple(depths), region.ptr)

    def check_invariants(self) -> None:
        key_total = 0
        pages_seen: dict[int, int] = {}
        for region in self._regions():
            for j in range(self._dims):
                span = region.highs[j] - region.lows[j] + 1
                assert span & (span - 1) == 0, "region box is not dyadic"
                assert region.lows[j] % span == 0, "region box misaligned"
            # Every block of the region's box must map back to it.
            for cell in self._blocks_of(region):
                assert self._region_at(cell) is region, (
                    f"grid block {cell} inconsistent with its region"
                )
            if region.ptr is None:
                continue
            owner = pages_seen.setdefault(region.ptr, id(region))
            assert owner == id(region), "page shared by two regions"
            page = self._store.peek(region.ptr)
            assert 0 < len(page) <= self._page_capacity
            key_total += len(page)
            for codes in page.keys():
                assert region.contains(codes), (
                    f"key {codes} outside its region box"
                )
        assert key_total == self._num_keys
        assert len(pages_seen) == self._data_pages
        for dim, scale in enumerate(self._scales):
            assert scale == sorted(set(scale)), f"scale {dim} corrupt"
            assert len(scale) + 1 == self._shape[dim]


def _address_in(shape: Sequence[int], cell: Sequence[int]) -> int:
    address = 0
    for extent, coordinate in zip(shape, cell):
        address = address * extent + coordinate
    return address
