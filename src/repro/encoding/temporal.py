"""Datetime attribute encoder."""

from __future__ import annotations

from datetime import datetime, timezone

from repro.encoding.base import Encoder
from repro.errors import EncodingError

_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)


class DatetimeEncoder(Encoder):
    """Timestamps as whole seconds since an epoch, offset to stay unsigned.

    Covers 1901..2038 within 32 bits (the classic Unix window); pass a
    larger ``width`` for wider ranges.  Naive datetimes are interpreted as
    UTC.  Sub-second precision is truncated — adjacent codes therefore
    still order correctly.
    """

    def __init__(self, width: int = 32) -> None:
        super().__init__(width)
        self._bias = 1 << (width - 1)

    def encode(self, value: datetime) -> int:
        if not isinstance(value, datetime):
            raise EncodingError(f"expected a datetime, got {value!r}")
        if value.tzinfo is None:
            value = value.replace(tzinfo=timezone.utc)
        seconds = int((value - _EPOCH).total_seconds())
        code = seconds + self._bias
        if not 0 <= code <= self.max_code:
            raise EncodingError(f"{value} outside the {self.width}-bit window")
        return code

    def decode(self, code: int) -> datetime:
        from datetime import timedelta

        self._check_code(code)
        return _EPOCH + timedelta(seconds=code - self._bias)
