"""Encoder interface shared by all attribute encoders."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.bits import low_mask
from repro.errors import EncodingError


class Encoder(ABC):
    """Maps attribute values to ``width``-bit order-preserving codes.

    Subclasses must guarantee that for any two encodable values
    ``a <= b  =>  encode(a) <= encode(b)`` — the ψ property the paper
    requires for range searching.
    """

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise EncodingError("encoder width must be positive")
        self._width = width

    @property
    def width(self) -> int:
        """Number of pseudo-key bits this encoder produces."""
        return self._width

    @property
    def max_code(self) -> int:
        """Largest code this encoder can emit (all-ones)."""
        return low_mask(self._width)

    @abstractmethod
    def encode(self, value: Any) -> int:
        """Return the pseudo-key code for ``value``.

        Raises:
            EncodingError: if ``value`` is outside the encodable domain.
        """

    @abstractmethod
    def decode(self, code: int) -> Any:
        """Invert :meth:`encode` (exactly, or to the nearest domain value
        for lossy encoders such as truncating string encoders)."""

    def _check_code(self, code: int) -> int:
        if not 0 <= code <= self.max_code:
            raise EncodingError(f"code {code} outside [0, {self.max_code}]")
        return code


class IdentityEncoder(Encoder):
    """Pass-through for values that already are ``width``-bit codes.

    This is the encoder the paper's own experiments use: keys are drawn
    directly as pseudo-random integers in ``[0, 2^31 - 1]``.
    """

    def encode(self, value: Any) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise EncodingError(f"identity encoder needs an int, got {value!r}")
        return self._check_code(value)

    def decode(self, code: int) -> int:
        return self._check_code(code)
