"""Numeric attribute encoders: unsigned, signed, IEEE-754 and scaled."""

from __future__ import annotations

import math
import struct

from repro.bits import low_mask
from repro.encoding.base import Encoder
from repro.errors import EncodingError


class UIntEncoder(Encoder):
    """Unsigned integers in ``[0, 2^width)`` map to themselves."""

    def encode(self, value: int) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise EncodingError(f"expected an int, got {value!r}")
        if value < 0:
            raise EncodingError(f"unsigned encoder cannot encode {value}")
        return self._check_code(value)

    def decode(self, code: int) -> int:
        return self._check_code(code)


class IntEncoder(Encoder):
    """Signed integers via offset-binary (excess-``2^(width-1)``) coding.

    Adding the bias makes the usual two's-complement wraparound disappear,
    so integer order and code order coincide.
    """

    def __init__(self, width: int = 32) -> None:
        super().__init__(width)
        self._bias = 1 << (width - 1)

    def encode(self, value: int) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise EncodingError(f"expected an int, got {value!r}")
        code = value + self._bias
        if not 0 <= code <= self.max_code:
            raise EncodingError(f"{value} outside signed {self.width}-bit range")
        return code

    def decode(self, code: int) -> int:
        return self._check_code(code) - self._bias


class FloatEncoder(Encoder):
    """IEEE-754 doubles in total order, 64 pseudo-key bits.

    The classic trick: reinterpret the double as a 64-bit integer; flip the
    sign bit for non-negatives, flip *all* bits for negatives.  The result
    orders exactly like the floats (NaN is rejected, -0.0 == +0.0 holds
    only in float comparison — their codes differ but stay adjacent, which
    preserves the ψ inequality).
    """

    def __init__(self) -> None:
        super().__init__(64)

    def encode(self, value: float) -> int:
        value = float(value)
        if math.isnan(value):
            raise EncodingError("NaN has no position in a total order")
        (raw,) = struct.unpack("<Q", struct.pack("<d", value))
        if raw & (1 << 63):
            code = raw ^ low_mask(64)
        else:
            code = raw | (1 << 63)
        return code

    def decode(self, code: int) -> float:
        self._check_code(code)
        if code & (1 << 63):
            raw = code ^ (1 << 63)
        else:
            raw = code ^ low_mask(64)
        (value,) = struct.unpack("<d", struct.pack("<Q", raw))
        return value


class ScaledFloatEncoder(Encoder):
    """Bounded reals linearly scaled into ``[0, 2^width)``.

    The natural encoder for coordinates with a known domain (longitude,
    latitude, sensor ranges): the attribute space really is the unit
    hypercube the paper describes, and uniform data stays uniform in code
    space.  Decoding returns the lower edge of the code's bucket.
    """

    def __init__(self, low: float, high: float, width: int = 32) -> None:
        super().__init__(width)
        if not low < high:
            raise EncodingError(f"empty domain [{low}, {high}]")
        self._low = float(low)
        self._high = float(high)
        self._buckets = 1 << width

    def encode(self, value: float) -> int:
        value = float(value)
        if math.isnan(value) or not self._low <= value <= self._high:
            raise EncodingError(f"{value} outside [{self._low}, {self._high}]")
        fraction = (value - self._low) / (self._high - self._low)
        return min(int(fraction * self._buckets), self.max_code)

    def decode(self, code: int) -> float:
        self._check_code(code)
        span = self._high - self._low
        return self._low + span * (code / self._buckets)
