"""Order-preserving pseudo-key encoders (the paper's functions ψ_j).

The multidimensional hashing schemes address records by fixed-width binary
pseudo-keys.  To support range and partial-range queries the encoding of
every attribute must be *order preserving*: ``k1 <= k2`` implies
``psi(k1) <= psi(k2)`` (paper, §1).  This subpackage supplies encoders for
the common attribute types and a :class:`KeyCodec` that bundles one encoder
per dimension into a composite-key codec.
"""

from repro.encoding.base import Encoder, IdentityEncoder
from repro.encoding.numeric import (
    UIntEncoder,
    IntEncoder,
    FloatEncoder,
    ScaledFloatEncoder,
)
from repro.encoding.string import StringEncoder
from repro.encoding.temporal import DatetimeEncoder
from repro.encoding.vector import KeyCodec

__all__ = [
    "Encoder",
    "IdentityEncoder",
    "UIntEncoder",
    "IntEncoder",
    "FloatEncoder",
    "ScaledFloatEncoder",
    "StringEncoder",
    "DatetimeEncoder",
    "KeyCodec",
]
