"""Composite-key codec: one encoder per dimension."""

from __future__ import annotations

from typing import Any, Sequence

from repro.encoding.base import Encoder
from repro.errors import EncodingError, KeyDimensionError


class KeyCodec:
    """Bundles ``d`` attribute encoders into a d-dimensional key codec.

    The indexes operate purely on tuples of pseudo-key integers; a codec
    sits at the API boundary translating application values (floats,
    strings, datetimes, ...) into those tuples and back.
    """

    def __init__(self, encoders: Sequence[Encoder]) -> None:
        if not encoders:
            raise EncodingError("a key codec needs at least one encoder")
        self._encoders = tuple(encoders)

    @property
    def dimensions(self) -> int:
        return len(self._encoders)

    @property
    def widths(self) -> tuple[int, ...]:
        """Pseudo-key width per dimension (the paper's ``w_j``)."""
        return tuple(e.width for e in self._encoders)

    @property
    def encoders(self) -> tuple[Encoder, ...]:
        return self._encoders

    def encode(self, values: Sequence[Any]) -> tuple[int, ...]:
        """Encode one application key vector into pseudo-key codes."""
        if len(values) != len(self._encoders):
            raise KeyDimensionError(
                f"key has {len(values)} components, codec expects "
                f"{len(self._encoders)}"
            )
        return tuple(e.encode(v) for e, v in zip(self._encoders, values))

    def decode(self, codes: Sequence[int]) -> tuple[Any, ...]:
        """Best-effort inverse of :meth:`encode` (lossy encoders round)."""
        if len(codes) != len(self._encoders):
            raise KeyDimensionError(
                f"code vector has {len(codes)} components, codec expects "
                f"{len(self._encoders)}"
            )
        return tuple(e.decode(c) for e, c in zip(self._encoders, codes))

    def encode_range(
        self, lows: Sequence[Any | None], highs: Sequence[Any | None]
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Encode a partial-range predicate into code-space bounds.

        ``None`` on either side leaves that dimension unconstrained: the
        paper substitutes the all-zeros / all-ones bit strings, which is
        exactly ``0`` / ``max_code`` here.
        """
        if len(lows) != len(self._encoders) or len(highs) != len(self._encoders):
            raise KeyDimensionError("range bounds must match codec dimensions")
        lo_codes = tuple(
            0 if lo is None else e.encode(lo)
            for e, lo in zip(self._encoders, lows)
        )
        hi_codes = tuple(
            e.max_code if hi is None else e.encode(hi)
            for e, hi in zip(self._encoders, highs)
        )
        return lo_codes, hi_codes
