"""Order-preserving string encoder (byte-prefix truncation)."""

from __future__ import annotations

from repro.encoding.base import Encoder
from repro.errors import EncodingError


class StringEncoder(Encoder):
    """Encode strings by their first ``width // 8`` UTF-8 bytes.

    UTF-8 byte order equals code-point order, so prefix truncation is an
    order-preserving (but lossy) ψ: distinct strings sharing a long prefix
    may collide, exactly the collision case the splitting schemes must cap
    at depth ``w`` (see ``repro.errors.CapacityError``).
    """

    def __init__(self, width: int = 64) -> None:
        if width % 8:
            raise EncodingError("string encoder width must be a multiple of 8")
        super().__init__(width)
        self._nbytes = width // 8

    def encode(self, value: str) -> int:
        if not isinstance(value, str):
            raise EncodingError(f"expected a str, got {value!r}")
        raw = value.encode("utf-8")[: self._nbytes]
        raw = raw.ljust(self._nbytes, b"\x00")
        return int.from_bytes(raw, "big")

    def decode(self, code: int) -> str:
        self._check_code(code)
        raw = code.to_bytes(self._nbytes, "big").rstrip(b"\x00")
        return raw.decode("utf-8", errors="replace")
