"""Z-order (bit-interleaved) single-attribute indexing.

The paper's reference [13] (Orenstein and Merrett, PODS 1984): shuffle
the key components into one binary string and store it in an ordinary
one-dimensional order-preserving structure — here the §2.1 extendible
hash file.  Exact matches cost the 1-d structure's two accesses; range
queries decompose the box into dyadic z-intervals.  Every z-prefix is a
rectangular box, so this scheme, too, induces a rectilinear partition
and plugs into the shared analysis tooling.
"""

from repro.zorder.zindex import ZOrderIndex

__all__ = ["ZOrderIndex"]
