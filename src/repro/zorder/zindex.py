"""A multidimensional index as a z-ordered 1-d extendible hash file.

Keys are bit-interleaved (``repro.bits.interleave``) and stored in the
order-preserving one-dimensional file of §2.1.  The interleaving order
matches the multidimensional split rule (round-robin over the
dimensions, exhausted axes dropping out), so a z-prefix of any length is
a dyadic *box* and the 1-d directory's regions map one-to-one onto a
rectilinear partition of the attribute space.

Range queries decompose the query box into z-intervals by recursive
quadrant refinement: a quadrant fully inside the box contributes one
contiguous z-interval; a partially covered quadrant is refined, down to
a depth cap past which the interval is scanned and filtered.  This is
the classic trade-off of the z-order approach — a box can shatter into
many intervals — and exactly the comparison point against the native
multidimensional directories.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.bits import deinterleave, interleave, low_mask
from repro.storage import PageStore
from repro.core.ehash import ExtendibleHashFile
from repro.core.interface import (
    KeyCodes,
    LeafRegion,
    MultidimensionalIndex,
    Record,
)


class ZOrderIndex(MultidimensionalIndex):
    """Orenstein-Merrett style z-order indexing over §2.1's hash file.

    Args:
        refinement_cap: maximum quadrant-refinement depth (in interleaved
            bits) used by the range-query decomposition before falling
            back to scan-and-filter.
    """

    def __init__(
        self,
        dims: int,
        page_capacity: int,
        widths: Sequence[int] | int = 32,
        store: PageStore | None = None,
        refinement_cap: int = 20,
    ) -> None:
        super().__init__(dims, page_capacity, widths, store)
        self._total_width = sum(self._widths)
        if self._total_width > 64:
            raise ValueError("interleaved width must fit 64 bits")
        if refinement_cap < 1:
            raise ValueError("refinement cap must be positive")
        self._cap = refinement_cap
        self._file = ExtendibleHashFile(
            page_capacity, width=self._total_width, store=self._store
        )
        # Interleave slot order: which dimension owns each z bit.
        self._slots: list[int] = []
        for position in range(1, max(self._widths) + 1):
            for j, width in enumerate(self._widths):
                if position <= width:
                    self._slots.append(j)

    # -- state ---------------------------------------------------------------

    @property
    def directory_size(self) -> int:
        return self._file.directory_size

    @property
    def data_page_count(self) -> int:
        return self._file.data_page_count

    @property
    def file(self) -> ExtendibleHashFile:
        """The underlying one-dimensional hash file."""
        return self._file

    def _z(self, codes: KeyCodes) -> int:
        return interleave(codes, self._widths)

    # -- operations ----------------------------------------------------------

    def insert(self, key: Sequence[int], value: Any = None) -> None:
        codes = self._check_key(key)
        self._file.insert(self._z(codes), value)
        self._num_keys += 1

    def search(self, key: Sequence[int]) -> Any:
        codes = self._check_key(key)
        return self._file.search(self._z(codes))

    def delete(self, key: Sequence[int]) -> Any:
        codes = self._check_key(key)
        value = self._file.delete(self._z(codes))
        self._num_keys -= 1
        return value

    def range_search(
        self, lows: Sequence[int], highs: Sequence[int]
    ) -> Iterator[Record]:
        lows = self._check_key(lows)
        highs = self._check_key(highs)
        if any(lo > hi for lo, hi in zip(lows, highs)):
            return
        with self._store.operation():
            for z_low, z_high, exact in self.z_intervals(lows, highs):
                for z_value, value in self._file.scan_range(z_low, z_high):
                    codes = deinterleave(z_value, self._widths)
                    if exact or all(
                        lows[j] <= codes[j] <= highs[j]
                        for j in range(self._dims)
                    ):
                        yield codes, value

    def z_intervals(
        self, lows: KeyCodes, highs: KeyCodes
    ) -> Iterator[tuple[int, int, bool]]:
        """Decompose a box into z-intervals ``(low, high, exact)``.

        ``exact`` intervals lie fully inside the box; inexact ones (cut
        off by the refinement cap) need per-record filtering.
        """
        yield from self._refine(0, 0, lows, highs)

    def _refine(
        self, prefix: int, depth: int, lows: KeyCodes, highs: KeyCodes
    ) -> Iterator[tuple[int, int, bool]]:
        rest = self._total_width - depth
        z_low = prefix << rest
        z_high = z_low | low_mask(rest)
        box_low = deinterleave(z_low, self._widths)
        box_high = deinterleave(z_high, self._widths)
        if any(
            box_high[j] < lows[j] or box_low[j] > highs[j]
            for j in range(self._dims)
        ):
            return
        inside = all(
            lows[j] <= box_low[j] and box_high[j] <= highs[j]
            for j in range(self._dims)
        )
        if inside:
            yield z_low, z_high, True
            return
        if depth >= min(self._cap, self._total_width):
            yield z_low, z_high, False
            return
        yield from self._refine(prefix << 1, depth + 1, lows, highs)
        yield from self._refine((prefix << 1) | 1, depth + 1, lows, highs)

    def items(self) -> Iterator[Record]:
        for (z_value,), value in self._file.items():
            yield deinterleave(z_value, self._widths), value

    # -- introspection -----------------------------------------------------------

    def leaf_regions(self) -> Iterator[LeafRegion]:
        """Map the 1-d file's prefix regions onto attribute-space boxes:
        a z-prefix of length L assigns its bits round-robin to the
        dimensions, so each region is a dyadic box."""
        for region in self._file.leaf_regions():
            z_prefix = region.prefixes[0]
            length = region.depths[0]
            per_dim = [0] * self._dims
            codes = [0] * self._dims
            for i in range(length):
                dim = self._slots[i]
                bit = (z_prefix >> (length - 1 - i)) & 1
                codes[dim] = (codes[dim] << 1) | bit
                per_dim[dim] += 1
            yield LeafRegion(tuple(codes), tuple(per_dim), region.page)

    def check_invariants(self) -> None:
        self._file.check_invariants()
        assert len(self._file) == self._num_keys
        # Round-trip: every stored z-value de-interleaves into a key
        # whose re-interleaving is itself.
        for region in self._file.leaf_regions():
            if region.page is None:
                continue
            for (z_value,) in self._file.store.peek(region.page).keys():
                codes = deinterleave(z_value, self._widths)
                assert self._z(codes) == z_value
