"""The ``sharded`` benchmark cell: 1-shard vs N-shard served throughput.

One cell runs the same seeded served workload twice — through a
1-shard cluster and through an ``N``-shard cluster (default 4), both
fronted by a real :class:`~repro.server.router.ShardRouter` over real
TCP with one worker process per shard — and gates the scaling claim of
the sharding layer.

**What is gated, and why it is not wall clock.**  Every wall-clock
number in this suite is machine noise and is recorded ungated; the
sharded cell keeps that discipline.  On a many-core host the served
wall time of an N-shard cluster approaches the busiest shard's share of
the work; on the single-core CI runner all N workers time-slice one
core and wall time cannot improve at all.  The *deterministic* quantity
underneath both is the *critical path*: the CPU seconds consumed by the
busiest shard worker (each worker reports ``time.process_time()``
through ``STATS``).  Splitting a workload over N balanced shards must
divide the per-worker CPU near-linearly — that ratio

    ``scaling = busiest-shard CPU at 1 shard / busiest-shard CPU at N``

is the served-throughput speedup an N-core machine realises, measured
without needing the N cores.  The gate
(:func:`sharded_scaling_failures`) requires ``scaling >= 2.5`` at four
shards for both the write and the read phase, per the balanced-cut
argument of the MapReduce k-d construction: quantile boundaries put
~n/N keys on each shard, so the busiest shard does ~1/N of the work.

The per-shard group-commit claim survives sharding untouched: each
worker owns a WAL and its own write aggregator, and the cell gates
**< 1 WAL commit per acknowledged write on every shard** — scatter must
not de-coalesce the windows.  Read-back and scatter-gathered range
results are checked against the oracle; mismatches gate at zero.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Mapping, Sequence

from repro.bench.harness import _split_stream
from repro.bench.served import _PIPELINE_CHUNK, _drive_reads, _drive_writes

#: Shard counts for the two arms: the baseline and the scaled cluster.
DEFAULT_SHARD_ARMS = (1, 4)
#: Concurrent router clients (matches the served cell's bar).
DEFAULT_CONCURRENCY = 8
#: Minimum busiest-shard CPU speedup required of the scaled arm, for
#: both the write and the read phase.
SCALING_FLOOR = 2.5
#: The floor applied below :data:`SCALING_FULL_N` keys.  Per-phase fixed
#: CPU (aggregator window timers, STATS serving) stops being negligible
#: once the binary fast path cut the per-op cost, so a smoke-sized cell
#: only has to prove the partition balances at all; the full 2.5x claim
#: is gated at the committed n=2000 scale.
SCALING_SMOKE_FLOOR = 1.2
SCALING_FULL_N = 1000
#: Pseudo-key bits per dimension (the served cell's convention).
_WIDTH = 31


def _per_shard(stats: Mapping, field_path: Sequence[str]) -> list[float]:
    """Extract one numeric field from every live shard's stats entry."""
    values: list[float] = []
    for entry in stats.get("shards", []):
        node: Any = entry
        for name in field_path:
            if not isinstance(node, Mapping) or name not in node:
                node = None
                break
            node = node[name]
        if isinstance(node, (int, float)):
            values.append(float(node))
    return values


async def _drive_arm(
    router: Any,
    keys: Sequence[tuple],
    values: dict,
    dims: int,
    concurrency: int,
) -> dict[str, Any]:
    """Drive the full write + read workload through one router."""
    from repro.server import QueryClient

    host, port = router.address
    shares = [keys[i::concurrency] for i in range(concurrency)]
    clients = [
        await QueryClient.connect(host, port, negotiate=True)
        for _ in range(concurrency)
    ]
    try:
        stats0 = await clients[0].stats()
        started = time.perf_counter()
        await _drive_writes(clients, shares, values)
        write_wall = time.perf_counter() - started
        stats1 = await clients[0].stats()

        started = time.perf_counter()
        mismatches = await _drive_reads(clients, shares, values)
        # One scatter-gathered range query over the lower-left quadrant,
        # checked against the oracle subset (order-insensitively here;
        # the equivalence suite pins the z-ascending merge order).
        half = 1 << (_WIDTH - 1)
        expected = sorted(
            [list(key), value]
            for key, value in values.items()
            if all(code < half for code in key)
        )
        ranged = await clients[0].range_search(
            tuple(0 for _ in range(dims)),
            tuple(half - 1 for _ in range(dims)),
        )
        read_wall = time.perf_counter() - started
        if sorted([list(key), value] for key, value in ranged) != expected:
            mismatches += 1
        stats2 = await clients[0].stats()
    finally:
        for client in clients:
            await client.close()

    def cpu_delta(before: Mapping, after: Mapping) -> list[float]:
        b = _per_shard(before, ("process", "cpu_seconds"))
        a = _per_shard(after, ("process", "cpu_seconds"))
        return [max(x - y, 0.0) for x, y in zip(a, b)]

    commits = _per_shard(stats2, ("wal", "commits"))
    acked = _per_shard(stats2, ("server", "mutations_applied"))
    return {
        "write_wall": write_wall,
        "read_wall": read_wall,
        "mismatches": mismatches,
        "keys": stats2.get("keys", 0),
        "write_cpu_per_shard": cpu_delta(stats0, stats1),
        "read_cpu_per_shard": cpu_delta(stats1, stats2),
        "commits_per_shard": commits,
        "acked_per_shard": acked,
    }


def _run_arm(
    shards: int,
    workdir: str,
    experiment: Any,
    cell: Any,
    keys: Sequence[tuple],
    values: dict,
    concurrency: int,
) -> dict[str, Any]:
    """One cluster arm: fork workers, route the workload, drain."""
    from repro.server.router import ShardRouter
    from repro.server.shard import ShardManager

    # Quantile boundaries sampled from the workload itself — the
    # median-cut balancing argument needs the real distribution.
    manager = ShardManager(
        shards,
        dims=experiment.dims,
        widths=_WIDTH,
        page_capacity=cell.page_capacity,
        workdir=workdir,
        sample_keys=keys,
    )
    manager.start()
    try:

        async def drive() -> dict[str, Any]:
            async with ShardRouter(
                manager, max_inflight=concurrency * _PIPELINE_CHUNK
            ) as router:
                return await _drive_arm(
                    router, keys, values, experiment.dims, concurrency
                )

        return asyncio.run(drive())
    finally:
        manager.stop()


def run_sharded_cell(
    cell: Any,
    experiment: Any,
    workdir_factory,
    n: int,
    concurrency: int = DEFAULT_CONCURRENCY,
    shard_arms: Sequence[int] = DEFAULT_SHARD_ARMS,
) -> dict:
    """Measure 1-shard vs N-shard served scaling end to end."""
    inserted, _probes = _split_stream(experiment, n)
    keys = [tuple(key) for key in inserted]
    values = {key: i for i, key in enumerate(keys)}

    arms: dict[int, dict[str, Any]] = {}
    for shards in shard_arms:
        arms[shards] = _run_arm(
            shards,
            workdir_factory(),
            experiment,
            cell,
            keys,
            values,
            concurrency,
        )

    base_arm, scaled_arm = shard_arms[0], shard_arms[-1]
    base, scaled = arms[base_arm], arms[scaled_arm]

    def busiest(arm: Mapping, phase: str) -> float:
        return max(arm[f"{phase}_cpu_per_shard"], default=0.0)

    def scaling(phase: str) -> float:
        top = busiest(base, phase)
        bottom = busiest(scaled, phase)
        return round(top / bottom, 4) if bottom > 0 else 0.0

    commit_ratios = [
        commits / acked
        for commits, acked in zip(
            scaled["commits_per_shard"], scaled["acked_per_shard"]
        )
        if acked > 0
    ]
    mismatches = base["mismatches"] + scaled["mismatches"]
    writes = len(keys)
    reads = writes + 1  # per-key read-back plus one scattered range query
    metrics = {
        "sharded_writes": writes,
        "sharded_write_scaling": scaling("write"),
        "sharded_read_scaling": scaling("read"),
        "sharded_mismatches": mismatches,
        "sharded_commits_per_write_max": round(
            max(commit_ratios, default=0.0), 6
        ),
        "sharded_base_write_cpu": round(busiest(base, "write"), 4),
        "sharded_scaled_write_cpu": round(busiest(scaled, "write"), 4),
        "sharded_base_read_cpu": round(busiest(base, "read"), 4),
        "sharded_scaled_read_cpu": round(busiest(scaled, "read"), 4),
        # Wall-clock ops/s: recorded, never gated (machine noise — on a
        # single-core runner all workers share the one core).
        "sharded_base_write_ops_per_s": round(
            writes / max(base["write_wall"], 1e-9), 1
        ),
        "sharded_scaled_write_ops_per_s": round(
            writes / max(scaled["write_wall"], 1e-9), 1
        ),
        "sharded_base_read_ops_per_s": round(
            reads / max(base["read_wall"], 1e-9), 1
        ),
        "sharded_scaled_read_ops_per_s": round(
            reads / max(scaled["read_wall"], 1e-9), 1
        ),
    }
    return {
        "experiment": cell.experiment,
        "scheme": cell.scheme,
        "b": cell.page_capacity,
        "backend": cell.backend,
        "mode": "sharded",
        "kind": "sharded",
        "n": writes,
        "parallelism": concurrency,
        "shard_arms": list(shard_arms),
        "wall_seconds": round(
            sum(a["write_wall"] + a["read_wall"] for a in arms.values()), 4
        ),
        "arm_wall_seconds": {
            str(shards): round(a["write_wall"] + a["read_wall"], 4)
            for shards, a in arms.items()
        },
        "metrics": metrics,
    }


def sharded_scaling_failures(results: Sequence[Mapping]) -> list[str]:
    """The sharding layer's gated claims.

    For every ``mode == "sharded"`` cell: the busiest-shard CPU speedup
    of the scaled arm must reach :data:`SCALING_FLOOR` for both phases
    (near-linear range-partition scaling; smoke-sized cells below
    :data:`SCALING_FULL_N` keys only have to clear
    :data:`SCALING_SMOKE_FLOOR`), every shard must keep its group
    commit coalesced (< 1 WAL commit per acknowledged write), and
    reads must observe exactly what was acknowledged.
    """
    failures = []
    for result in results:
        if result.get("mode") != "sharded":
            continue
        label = (
            f"{result['experiment']}/{result['scheme']}/b={result['b']}"
            f"/{result['backend']}/sharded"
        )
        m = result["metrics"]
        arms = result.get("shard_arms", DEFAULT_SHARD_ARMS)
        floor = (
            SCALING_FLOOR
            if result.get("n", SCALING_FULL_N) >= SCALING_FULL_N
            else SCALING_SMOKE_FLOOR
        )
        for phase in ("write", "read"):
            value = m.get(f"sharded_{phase}_scaling")
            if value is not None and value < floor:
                failures.append(
                    f"{label}: {phase} critical-path speedup {value}x at "
                    f"{arms[-1]} shards is below the {floor}x "
                    "floor — the partition is not balancing the work"
                )
        ratio = m.get("sharded_commits_per_write_max")
        if ratio is not None and ratio >= 1.0:
            failures.append(
                f"{label}: a shard produced {ratio} WAL commits per "
                "acknowledged write — scatter de-coalesced the "
                "group-commit windows"
            )
        if m.get("sharded_mismatches"):
            failures.append(
                f"{label}: {m['sharded_mismatches']} routed reads "
                "disagreed with acknowledged writes"
            )
    return failures
