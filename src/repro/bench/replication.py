"""The ``replication`` benchmark cell: read fan-out across followers
and MVCC snapshot scans under a write storm.

One cell runs the same seeded served workload through a 1-shard
cluster twice — once with one read replica, once with three (default
arms), each follower a real forked process bootstrapped over the wire
from the primary's checkpoint stream and tailing its committed WAL
batches — and gates the replication layer's three claims:

**Read fan-out scales (CPU basis, not wall clock).**  The router
round-robins idempotent reads across the follower pool, so the hottest
read-serving process of the 3-replica arm must burn ~1/3 the CPU of
the 1-replica arm's sole follower.  As with the sharded cell, wall
clock is machine noise on a time-sliced CI core; the deterministic
quantity is the busiest process's ``time.process_time()`` delta over
the read phase, reported through ``STATS``.  The gate
(:func:`replication_scaling_failures`) requires

    ``scaling = busiest read CPU at 1 replica / busiest at 3 >= 1.8``

at the committed n=2000 scale (smoke-sized cells clear a reduced
floor — fixed per-process overhead stops being negligible there).

**Reads never lie.**  Every acknowledged write reads back with its
acked value through the replica fan-out (after the tails catch up —
replica reads are bounded-lag, not read-your-writes), a ranged oracle
scan matches exactly, and every record surfaced by a snapshot scan
during the storm carries the value it was written with.  Mismatches
gate at zero, absolutely.

**Writers never time a snapshot scan out.**  While ``concurrency``
clients storm the primary with inserts, full-range snapshot scans are
issued directly against the primary (the node taking the storm).  The
MVCC read path pins a version epoch and scans latch-free, so the
``latch_timeouts`` counter across every process must not move — the
write storm cannot starve a scan, and the scan cannot block the write
aggregator.  Gated at zero.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Mapping, Sequence

from repro.bench.harness import _split_stream
from repro.bench.served import _PIPELINE_CHUNK, _drive_reads, _drive_writes

#: Follower counts for the two arms: baseline and scaled fan-out.
DEFAULT_REPLICA_ARMS = (1, 3)
#: Concurrent router clients (matches the served cell's bar).
DEFAULT_CONCURRENCY = 8
#: Read passes over the key stream (more signal per process-time tick).
READ_ROUNDS = 2
#: Minimum busiest-process read-CPU speedup of the 3-replica arm.
READ_SCALING_FLOOR = 1.8
#: The floor below :data:`READ_SCALING_FULL_N` keys: a smoke cell only
#: proves the fan-out spreads at all; the 1.8x claim is gated at the
#: committed n=2000 scale.
READ_SCALING_SMOKE_FLOOR = 1.1
READ_SCALING_FULL_N = 2000
#: Full-range snapshot scans issued against the primary mid-storm.
STORM_SCANS = 8
#: Pseudo-key bits per dimension (the served/sharded convention).
_WIDTH = 31


async def _replica_cpus(specs: Sequence[Any]) -> list[float]:
    """Each follower's ``process.cpu_seconds``, by direct connection."""
    from repro.server import QueryClient

    cpus: list[float] = []
    for spec in specs:
        client = await QueryClient.connect(
            spec.host, spec.port, negotiate=True
        )
        try:
            stats = await client.stats()
        finally:
            await client.close()
        cpus.append(float(stats["process"]["cpu_seconds"]))
    return cpus


async def _primary_cpu(client: Any) -> tuple[float, int]:
    """The primary worker's CPU seconds and latch-timeout count, read
    through the router's STATS scatter (which prefers the primary)."""
    stats = await client.stats()
    entry = stats["shards"][0]
    return (
        float(entry["process"]["cpu_seconds"]),
        int(entry["server"]["latch_timeouts"]),
    )


async def _wait_caught_up(specs: Sequence[Any], deadline: float = 60.0):
    """Block until every follower reports zero lag twice in a row (a
    single zero can predate the burst: lag is relative to the
    follower's *last-known* primary LSN)."""
    from repro.server import QueryClient

    loop = asyncio.get_running_loop()
    end = loop.time() + deadline
    for spec in specs:
        zeros = 0
        while zeros < 2:
            client = await QueryClient.connect(
                spec.host, spec.port, negotiate=True
            )
            try:
                stats = await client.stats()
            finally:
                await client.close()
            lag = stats["replica"]["lag"]
            zeros = zeros + 1 if lag <= 0 else 0
            if loop.time() > end:
                raise RuntimeError(
                    f"replica {spec.replica} stuck at lag {lag}"
                )
            await asyncio.sleep(0.05)


def _storm_keys(n: int, taken: Mapping, dims: int) -> list[tuple]:
    """``n`` fresh unique keys disjoint from the already-inserted set."""
    rng = random.Random(0x5704)
    keys: list[tuple] = []
    seen = set(taken)
    while len(keys) < n:
        key = tuple(rng.randrange(1 << _WIDTH) for _ in range(dims))
        if key not in seen:
            seen.add(key)
            keys.append(key)
    return keys


async def _storm_with_scans(
    clients: Sequence[Any],
    scan_client: Any,
    storm: Sequence[tuple],
    oracle: dict,
    dims: int,
) -> tuple[int, int]:
    """Insert ``storm`` keys through ``clients`` while ``scan_client``
    (connected straight to the primary) runs full-range snapshot scans.

    Returns ``(scan_count, mismatches)``.  A scanned record whose value
    differs from what was written is a mismatch (a torn or misapplied
    write surfacing through the snapshot), as is a scan that fails to
    cover every pre-storm key.  Latch timeouts are not counted here —
    they surface in the primary's own counter, which the caller diffs.
    """
    storm_set = set(storm)
    pre_storm = {
        key: value
        for key, value in oracle.items()
        if key not in storm_set
    }
    written: dict[tuple, Any] = {}
    shares = [storm[i::len(clients)] for i in range(len(clients))]

    async def one_client(client: Any, share: Sequence) -> None:
        pending = iter(share)

        async def worker() -> None:
            for key in pending:
                value = oracle[key]
                written[key] = value
                await client.insert(key, value)

        await asyncio.gather(*(worker() for _ in range(_PIPELINE_CHUNK)))

    async def scanner() -> tuple[int, int]:
        scans = 0
        wrong = 0
        top = (1 << _WIDTH) - 1
        while scans < STORM_SCANS:
            ranged = await scan_client.range_search(
                tuple(0 for _ in range(dims)),
                tuple(top for _ in range(dims)),
            )
            scans += 1
            got = {tuple(key): value for key, value in ranged}
            if len(got) != len(ranged):
                wrong += 1  # a record surfaced twice
            for key, value in got.items():
                expected = pre_storm.get(key, written.get(key, value))
                if value != expected:
                    wrong += 1
            missing = [key for key in pre_storm if key not in got]
            if missing:
                wrong += 1
            await asyncio.sleep(0)
        return scans, wrong

    results = await asyncio.gather(
        scanner(),
        *(one_client(c, s) for c, s in zip(clients, shares)),
    )
    return results[0]


def _run_arm(
    replica_count: int,
    workdir: str,
    experiment: Any,
    cell: Any,
    keys: Sequence[tuple],
    values: dict,
    storm: Sequence[tuple],
    concurrency: int,
) -> dict[str, Any]:
    """One arm: primary + N followers, write, fan-out reads, storm."""
    from repro.server import QueryClient
    from repro.server.replica import ReplicaManager
    from repro.server.router import ShardRouter
    from repro.server.shard import ShardManager

    manager = ShardManager(
        1,
        dims=experiment.dims,
        widths=_WIDTH,
        page_capacity=cell.page_capacity,
        workdir=workdir,
    )
    manager.start()
    replicas = ReplicaManager(manager, replica_count, poll_interval=0.01)
    replicas.start()
    try:

        async def drive() -> dict[str, Any]:
            async with ShardRouter(
                manager,
                replicas=replicas,
                max_inflight=concurrency * _PIPELINE_CHUNK,
            ) as router:
                host, port = router.address
                specs = replicas.specs_for(0)
                shares = [keys[i::concurrency] for i in range(concurrency)]
                clients = [
                    await QueryClient.connect(host, port, negotiate=True)
                    for _ in range(concurrency)
                ]
                primary_spec = manager.specs[0]
                scan_client = await QueryClient.connect(
                    primary_spec.host, primary_spec.port, negotiate=True
                )
                try:
                    started = time.perf_counter()
                    await _drive_writes(clients, shares, values)
                    write_wall = time.perf_counter() - started
                    await _wait_caught_up(specs)

                    cpu0 = await _replica_cpus(specs)
                    primary_cpu0, timeouts0 = await _primary_cpu(clients[0])
                    started = time.perf_counter()
                    mismatches = 0
                    for _ in range(READ_ROUNDS):
                        mismatches += await _drive_reads(
                            clients, shares, values
                        )
                    read_wall = time.perf_counter() - started
                    cpu1 = await _replica_cpus(specs)
                    primary_cpu1, _ = await _primary_cpu(clients[0])

                    # the ranged oracle: the scatter (served replica-
                    # first) must return exactly the acked state
                    top = (1 << _WIDTH) - 1
                    expected = sorted(
                        [list(key), value] for key, value in values.items()
                    )
                    ranged = await clients[0].range_search(
                        tuple(0 for _ in range(experiment.dims)),
                        tuple(top for _ in range(experiment.dims)),
                    )
                    if (
                        sorted([list(key), value] for key, value in ranged)
                        != expected
                    ):
                        mismatches += 1

                    oracle = dict(values)
                    for i, key in enumerate(storm):
                        oracle[key] = len(values) + i
                    started = time.perf_counter()
                    scans, storm_wrong = await _storm_with_scans(
                        clients, scan_client, storm, oracle,
                        experiment.dims,
                    )
                    storm_wall = time.perf_counter() - started
                    mismatches += storm_wrong
                    _, timeouts1 = await _primary_cpu(clients[0])
                    latch_timeouts = timeouts1 - timeouts0
                    for spec in specs:
                        rc = await QueryClient.connect(
                            spec.host, spec.port, negotiate=True
                        )
                        try:
                            stats = await rc.stats()
                        finally:
                            await rc.close()
                        latch_timeouts += int(
                            stats["server"]["latch_timeouts"]
                        )
                    return {
                        "write_wall": write_wall,
                        "read_wall": read_wall,
                        "storm_wall": storm_wall,
                        "mismatches": mismatches,
                        "scans": scans,
                        "latch_timeouts": latch_timeouts,
                        "read_cpu": [
                            max(a - b, 0.0) for a, b in zip(cpu1, cpu0)
                        ] + [max(primary_cpu1 - primary_cpu0, 0.0)],
                        "replica_reads": router.metrics.replica_reads,
                        "replica_fallbacks": (
                            router.metrics.replica_fallbacks
                        ),
                        "read_retries": router.metrics.read_retries,
                    }
                finally:
                    await scan_client.close()
                    for client in clients:
                        await client.close()

        return asyncio.run(drive())
    finally:
        replicas.stop()
        manager.stop()


def run_replication_cell(
    cell: Any,
    experiment: Any,
    workdir_factory,
    n: int,
    concurrency: int = DEFAULT_CONCURRENCY,
    replica_arms: Sequence[int] = DEFAULT_REPLICA_ARMS,
) -> dict:
    """Measure read fan-out scaling and storm-proof snapshot scans."""
    inserted, _probes = _split_stream(experiment, n)
    keys = [tuple(key) for key in inserted]
    base_values = {key: i for i, key in enumerate(keys)}
    storm = _storm_keys(
        max(64, len(keys) // 4), base_values, experiment.dims
    )

    arms: dict[int, dict[str, Any]] = {}
    for count in replica_arms:
        arms[count] = _run_arm(
            count,
            workdir_factory(),
            experiment,
            cell,
            keys,
            dict(base_values),
            storm,
            concurrency,
        )

    base_arm, scaled_arm = replica_arms[0], replica_arms[-1]
    base, scaled = arms[base_arm], arms[scaled_arm]

    def busiest(arm: Mapping) -> float:
        return max(arm["read_cpu"], default=0.0)

    bottom = busiest(scaled)
    scaling = round(busiest(base) / bottom, 4) if bottom > 0 else 0.0
    reads = len(keys) * READ_ROUNDS + 1
    metrics = {
        "replication_writes": len(keys),
        "replication_read_scaling": scaling,
        "replication_mismatches": (
            base["mismatches"] + scaled["mismatches"]
        ),
        "replication_latch_timeouts": (
            base["latch_timeouts"] + scaled["latch_timeouts"]
        ),
        "replication_storm_scans": base["scans"] + scaled["scans"],
        "replication_storm_writes": len(storm),
        "replication_base_read_cpu": round(busiest(base), 4),
        "replication_scaled_read_cpu": round(busiest(scaled), 4),
        "replication_base_replica_reads": base["replica_reads"],
        "replication_scaled_replica_reads": scaled["replica_reads"],
        "replication_fallbacks": (
            base["replica_fallbacks"] + scaled["replica_fallbacks"]
        ),
        "replication_read_retries": (
            base["read_retries"] + scaled["read_retries"]
        ),
        # Wall clocks: recorded, never gated.
        "replication_base_read_ops_per_s": round(
            reads / max(base["read_wall"], 1e-9), 1
        ),
        "replication_scaled_read_ops_per_s": round(
            reads / max(scaled["read_wall"], 1e-9), 1
        ),
        "replication_storm_seconds": round(
            base["storm_wall"] + scaled["storm_wall"], 4
        ),
    }
    return {
        "experiment": cell.experiment,
        "scheme": cell.scheme,
        "b": cell.page_capacity,
        "backend": cell.backend,
        "mode": "replication",
        "kind": "replication",
        "n": len(keys),
        "parallelism": concurrency,
        "replica_arms": list(replica_arms),
        "wall_seconds": round(
            sum(
                a["write_wall"] + a["read_wall"] + a["storm_wall"]
                for a in arms.values()
            ),
            4,
        ),
        "arm_wall_seconds": {
            str(count): round(
                a["write_wall"] + a["read_wall"] + a["storm_wall"], 4
            )
            for count, a in arms.items()
        },
        "metrics": metrics,
    }


def replication_scaling_failures(results: Sequence[Mapping]) -> list[str]:
    """The replication layer's gated claims — absolute, never diff-gated.

    For every ``mode == "replication"`` cell: the busiest read-serving
    process of the scaled arm must burn :data:`READ_SCALING_FLOOR` less
    CPU than the baseline's (the fan-out claim; smoke cells below
    :data:`READ_SCALING_FULL_N` keys clear
    :data:`READ_SCALING_SMOKE_FLOOR`), reads must observe exactly what
    was acknowledged (zero oracle mismatches, including every snapshot
    scan taken mid-storm), the write storm must not produce a single
    latch timeout on the snapshot scans, and the replicas must actually
    have served reads — a cell that routed everything at the primary
    must not pass its own gate.
    """
    failures = []
    for result in results:
        if result.get("mode") != "replication":
            continue
        label = (
            f"{result['experiment']}/{result['scheme']}/b={result['b']}"
            f"/{result['backend']}/replication"
        )
        m = result["metrics"]
        arms = result.get("replica_arms", DEFAULT_REPLICA_ARMS)
        floor = (
            READ_SCALING_FLOOR
            if result.get("n", READ_SCALING_FULL_N) >= READ_SCALING_FULL_N
            else READ_SCALING_SMOKE_FLOOR
        )
        value = m.get("replication_read_scaling")
        if value is not None and value < floor:
            failures.append(
                f"{label}: read fan-out speedup {value}x from "
                f"{arms[0]} to {arms[-1]} replicas is below the "
                f"{floor}x floor — the router is not spreading reads"
            )
        if m.get("replication_mismatches"):
            failures.append(
                f"{label}: {m['replication_mismatches']} read(s) "
                "disagreed with acknowledged writes across the replica "
                "fan-out or the mid-storm snapshot scans"
            )
        if m.get("replication_latch_timeouts"):
            failures.append(
                f"{label}: {m['replication_latch_timeouts']} latch "
                "timeout(s) under the write storm — snapshot scans "
                "must be latch-free"
            )
        for arm in ("base", "scaled"):
            if not m.get(f"replication_{arm}_replica_reads"):
                failures.append(
                    f"{label}: the {arm} arm served no reads from its "
                    "replicas — the fan-out never engaged"
                )
    return failures
