"""The ``served`` benchmark cell: client-visible cost of the query server.

One cell starts a real :class:`~repro.server.server.QueryServer` on an
ephemeral TCP port, connects ``concurrency`` pipelining clients, and
drives the experiment's seeded key stream through the wire protocol:

* **write phase** — the keys are partitioned round-robin across the
  clients, each of which pipelines its share in admission-sized chunks;
  the cell records the WAL commit delta, so ``served_commits_per_write``
  measures exactly what the aggregator claims to amortize: at
  concurrency >= 8 the coalesced windows must produce *strictly fewer*
  than one COMMIT record per acknowledged mutation
  (:func:`served_coalescing_failures`);
* **read phase** — every client reads back its own keys and one client
  runs a full-box range query; any value that differs from what was
  acknowledged counts as a ``served_mismatch``, gated at exactly zero.

Throughput (ops/s) and wall times are recorded but never gated — like
every wall-clock number in this suite they are machine noise; the gated
claims (coalescing ratio, zero mismatches) are behavioural.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Mapping, Sequence

from repro.bench.batched import _wal_commits
from repro.bench.harness import _split_stream, make_index
from repro.core.facade import MultiKeyFile
from repro.encoding import KeyCodec, UIntEncoder
from repro.storage import PageStore

#: Concurrent client connections (the acceptance criterion's bar is
#: coalescing at concurrency >= 8).
DEFAULT_CONCURRENCY = 8
#: Requests each client keeps in flight (within the server's default
#: per-session pipelining limit).
_PIPELINE_CHUNK = 16


async def _drive_writes(
    clients: Sequence[Any], shares: Sequence[Sequence], values: dict
) -> None:
    """Each client keeps a sliding window of inserts in flight;
    ``values`` records what each key was acknowledged with.

    A window, not chunked gathers: chunking drains the whole pipeline
    at every chunk boundary, so the server sees bursts separated by
    idle gaps and the cell under-measures both throughput and
    coalescing.  Here each of ``_PIPELINE_CHUNK`` workers per client
    always has one request in flight, so the connection's pipeline
    depth stays at the admission limit for the whole arm.
    """

    async def one_client(client: Any, share: Sequence) -> None:
        pending = iter(share)

        async def worker() -> None:
            for key in pending:
                await client.insert(key, values[key])

        await asyncio.gather(*(worker() for _ in range(_PIPELINE_CHUNK)))

    await asyncio.gather(
        *(one_client(c, s) for c, s in zip(clients, shares))
    )


async def _drive_reads(
    clients: Sequence[Any], shares: Sequence[Sequence], values: dict
) -> int:
    """Each client reads back its own keys through the same sliding
    window; returns the mismatch count."""

    async def one_client(client: Any, share: Sequence) -> int:
        pending = iter(share)
        wrong = 0

        async def worker() -> None:
            nonlocal wrong
            for key in pending:
                if await client.search(key) != values[key]:
                    wrong += 1

        await asyncio.gather(*(worker() for _ in range(_PIPELINE_CHUNK)))
        return wrong

    return sum(
        await asyncio.gather(
            *(one_client(c, s) for c, s in zip(clients, shares))
        )
    )


def run_served_cell(
    cell: Any,
    experiment: Any,
    make_store,
    n: int,
    concurrency: int = DEFAULT_CONCURRENCY,
) -> dict:
    """Measure one served cell end to end over real TCP."""
    from repro.server import QueryClient, QueryServer

    inserted, _probes = _split_stream(experiment, n)
    keys = [tuple(key) for key in inserted]
    values = {key: i for i, key in enumerate(keys)}
    shares = [keys[i::concurrency] for i in range(concurrency)]
    store: PageStore = make_store()
    outcome: dict[str, Any] = {}
    try:
        index = make_index(
            cell.scheme, experiment.dims, cell.page_capacity, store=store
        )
        codec = KeyCodec([UIntEncoder(31) for _ in range(experiment.dims)])
        file = MultiKeyFile.from_index(codec, index)

        async def drive() -> None:
            # Admission sized to the offered load: the cell measures
            # coalescing, not backpressure (the stress tests cover that).
            async with QueryServer(
                file,
                max_inflight=concurrency * _PIPELINE_CHUNK,
                session_pipeline=_PIPELINE_CHUNK,
            ) as server:
                host, port = server.address
                clients = [
                    await QueryClient.connect(host, port, negotiate=True)
                    for _ in range(concurrency)
                ]
                try:
                    commits0 = _wal_commits(store) or 0
                    started = time.perf_counter()
                    await _drive_writes(clients, shares, values)
                    write_wall = time.perf_counter() - started
                    commits = (_wal_commits(store) or 0) - commits0

                    started = time.perf_counter()
                    mismatches = await _drive_reads(clients, shares, values)
                    # One served range query over the lower-left quadrant
                    # (a full-box reply would not fit one frame at the
                    # default scale), checked against the oracle subset.
                    half = 1 << 30
                    expected = sorted(
                        [list(key), value]
                        for key, value in values.items()
                        if all(code < half for code in key)
                    )
                    ranged = await clients[0].range_search(
                        tuple(0 for _ in range(experiment.dims)),
                        tuple(half - 1 for _ in range(experiment.dims)),
                        parallelism=2,
                    )
                    read_wall = time.perf_counter() - started
                    if sorted(
                        [list(key), value] for key, value in ranged
                    ) != expected:
                        mismatches += 1
                    stats = await clients[0].stats()
                finally:
                    for client in clients:
                        await client.close()
                outcome["write_wall"] = write_wall
                outcome["read_wall"] = read_wall
                outcome["commits"] = commits
                outcome["mismatches"] = mismatches
                outcome["groups"] = stats["server"]["groups_committed"]
                outcome["largest_group"] = stats["server"]["largest_group"]
                outcome["keys"] = stats["keys"]

        asyncio.run(drive())
        index.check_invariants()
    finally:
        store.close()
    writes = len(keys)
    reads = writes + 1  # the per-key read-back plus one range query
    metrics = {
        "served_writes": writes,
        "served_commits": outcome["commits"],
        "served_commits_per_write": round(
            outcome["commits"] / max(writes, 1), 6
        ),
        "served_mismatches": outcome["mismatches"],
        "served_groups": outcome["groups"],
        "served_largest_group": outcome["largest_group"],
        "served_write_ops_per_s": round(
            writes / max(outcome["write_wall"], 1e-9), 1
        ),
        "served_read_ops_per_s": round(
            reads / max(outcome["read_wall"], 1e-9), 1
        ),
    }
    return {
        "experiment": cell.experiment,
        "scheme": cell.scheme,
        "b": cell.page_capacity,
        "backend": cell.backend,
        "mode": "served",
        "kind": "served",
        "n": writes,
        "parallelism": concurrency,
        "wall_seconds": round(
            outcome["write_wall"] + outcome["read_wall"], 4
        ),
        "arm_wall_seconds": {
            "writes": round(outcome["write_wall"], 4),
            "reads": round(outcome["read_wall"], 4),
        },
        "metrics": metrics,
    }


def served_coalescing_failures(results: Sequence[Mapping]) -> list[str]:
    """The service layer's gated claims.

    For every ``mode == "served"`` cell: on a WAL backend the coalesced
    windows must produce strictly fewer than one COMMIT record per
    acknowledged mutation at concurrency >= 8 (otherwise the aggregator
    is inert and every op pays its own durability flush), and the read
    phase must observe exactly what was acknowledged — zero mismatches.
    """
    failures = []
    for result in results:
        if result.get("mode") != "served":
            continue
        label = (
            f"{result['experiment']}/{result['scheme']}/b={result['b']}"
            f"/{result['backend']}/served"
        )
        m = result["metrics"]
        concurrency = result.get("parallelism", 0)
        ratio = m.get("served_commits_per_write")
        if (
            result["backend"] == "file+wal"
            and concurrency >= 8
            and ratio is not None
            and ratio >= 1.0
        ):
            failures.append(
                f"{label}: {m['served_commits']} WAL commits for "
                f"{m['served_writes']} served mutations "
                f"(ratio {ratio}) — write coalescing is inert"
            )
        if m.get("served_mismatches"):
            failures.append(
                f"{label}: {m['served_mismatches']} served reads "
                "disagreed with acknowledged writes"
            )
    return failures
