"""The paper's Tables 2-4, transcribed as reference data.

Every measured benchmark row is reported next to these numbers.  We do
not expect digit-level matches — the paper's PRNG streams, VAX-era cost
accounting and the normal distribution's (unstated) parameters all differ
— but the *shape* (who wins, by what factor, where the crossovers sit) is
asserted by ``repro.bench.reporting.shape_assertions``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperCell:
    """One (scheme, b) cell of a paper table."""

    successful_search_reads: float  # λ
    unsuccessful_search_reads: float  # λ′
    insertion_accesses: float  # ρ
    load_factor: float  # α
    directory_size: int  # σ


def _table(rows: dict[str, dict[int, tuple]]) -> dict[str, dict[int, PaperCell]]:
    return {
        scheme: {b: PaperCell(*cell) for b, cell in by_b.items()}
        for scheme, by_b in rows.items()
    }


#: Table 2 — 2-dimensional uniform keys, N = 40,000.
TABLE2 = _table(
    {
        "MDEH": {
            8: (2.000, 2.000, 11.847, 0.692, 65_536),
            16: (2.000, 2.000, 6.292, 0.682, 8_192),
            32: (2.000, 2.000, 5.571, 0.658, 4_096),
            64: (2.000, 2.000, 4.955, 0.626, 1_024),
        },
        "MEHTree": {
            8: (2.756, 2.574, 6.198, 0.692, 171_264),
            16: (2.039, 2.011, 4.110, 0.682, 10_432),
            32: (2.000, 2.000, 3.503, 0.658, 4_160),
            64: (2.000, 2.000, 3.256, 0.626, 4_160),
        },
        "BMEHTree": {
            8: (3.000, 3.000, 7.213, 0.692, 17_984),
            16: (3.000, 3.000, 5.646, 0.682, 7_296),
            32: (2.000, 2.000, 3.715, 0.658, 2_560),
            64: (2.000, 2.000, 3.346, 0.626, 1_088),
        },
    }
)

#: Table 3 — 2-dimensional (bivariate) normal keys, N = 40,000.
TABLE3 = _table(
    {
        "MDEH": {
            8: (2.000, 2.000, 229.34, 0.692, 524_288),
            16: (2.000, 2.000, 11.252, 0.684, 65_536),
            32: (2.000, 2.000, 11.275, 0.682, 32_768),
            64: (2.000, 2.000, 11.359, 0.669, 16_384),
        },
        "MEHTree": {
            8: (2.924, 2.908, 6.267, 0.692, 66_368),
            16: (2.844, 2.824, 4.971, 0.684, 48_896),
            32: (2.670, 2.642, 4.241, 0.682, 30_848),
            64: (2.342, 2.303, 3.615, 0.669, 13_440),
        },
        "BMEHTree": {
            8: (4.000, 3.836, 8.415, 0.692, 20_800),
            16: (3.000, 3.000, 5.523, 0.684, 9_856),
            32: (3.000, 3.000, 4.804, 0.682, 5_248),
            64: (3.000, 3.000, 4.427, 0.669, 2_624),
        },
    }
)

#: Table 4 — 3-dimensional uniform keys, N = 40,000.
TABLE4 = _table(
    {
        "MDEH": {
            8: (2.000, 2.000, 9.394, 0.689, 32_768),
            16: (2.000, 2.000, 7.264, 0.680, 16_384),
            32: (2.000, 2.000, 5.738, 0.655, 4_096),
            64: (2.000, 2.000, 4.995, 0.621, 1_024),
        },
        "MEHTree": {
            8: (2.760, 2.586, 6.184, 0.689, 170_752),
            16: (2.052, 2.019, 4.129, 0.680, 10_688),
            32: (2.000, 2.000, 3.567, 0.655, 4_160),
            64: (2.000, 2.000, 3.253, 0.621, 4_160),
        },
        "BMEHTree": {
            8: (3.000, 3.000, 7.343, 0.689, 17_984),
            16: (3.000, 3.000, 5.771, 0.680, 8_000),
            32: (2.000, 2.000, 3.757, 0.655, 2_432),
            64: (2.000, 2.000, 3.353, 0.621, 1_088),
        },
    }
)

PAPER_TABLES: dict[str, dict[str, dict[int, PaperCell]]] = {
    "table2": TABLE2,
    "table3": TABLE3,
    "table4": TABLE4,
}

#: The paper's experimental constants.
PAPER_N = 40_000
PAPER_PHI = 6
PAGE_CAPACITIES = (8, 16, 32, 64)
