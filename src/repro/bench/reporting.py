"""Paper-vs-measured reporting and the shape assertions.

``format_table`` prints a table in the paper's layout with each measured
value next to the published one.  ``shape_assertions`` encodes what
"reproduced" means for this paper (see DESIGN.md §5): orderings,
crossovers and factors rather than absolute digits.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.metrics import GrowthSeries, RunMetrics
from repro.bench.paper_data import PAGE_CAPACITIES, PaperCell

_MEASURES = (
    ("λ  succ. search", "successful_search_reads", "{:.3f}"),
    ("λ' unsucc. search", "unsuccessful_search_reads", "{:.3f}"),
    ("ρ  per insertion", "insertion_accesses", "{:.3f}"),
    ("α  load factor", "load_factor", "{:.3f}"),
    ("σ  directory size", "directory_size", "{:d}"),
)


def format_table(
    title: str,
    measured: Mapping[tuple[str, int], RunMetrics],
    paper: Mapping[str, Mapping[int, PaperCell]],
    page_capacities: Sequence[int] = PAGE_CAPACITIES,
) -> str:
    """Render a paper table with measured-vs-paper cells."""
    schemes = list(paper)
    lines = [title, "=" * len(title), ""]
    header = f"{'measure':<19} {'scheme':<10}" + "".join(
        f"{'b=' + str(b):>22}" for b in page_capacities
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, attr, fmt in _MEASURES:
        for scheme in schemes:
            cells = []
            for b in page_capacities:
                run = measured.get((scheme, b))
                got = "  --  " if run is None else fmt.format(getattr(run, attr))
                want = fmt.format(getattr(paper[scheme][b], attr))
                cells.append(f"{got:>10}/{want:<11}")
            lines.append(f"{label:<19} {scheme:<10}" + "".join(cells))
        lines.append("")
    lines.append("cells are measured/paper")
    return "\n".join(lines)


def format_series(
    title: str, series: Sequence[GrowthSeries]
) -> str:
    """Render directory-growth curves (Figures 6/7) as aligned columns."""
    lines = [title, "=" * len(title), ""]
    header = f"{'keys inserted':>14}" + "".join(
        f"{s.scheme:>12}" for s in series
    )
    lines.append(header)
    lines.append("-" * len(header))
    checkpoints = series[0].checkpoints
    for i, n in enumerate(checkpoints):
        row = f"{n:>14}"
        for s in series:
            row += f"{s.directory_sizes[i]:>12}"
        lines.append(row)
    return "\n".join(lines)


def shape_assertions(
    table: str, measured: Mapping[tuple[str, int], RunMetrics]
) -> list[str]:
    """Check the qualitative claims of a table; returns failure strings.

    The criteria (DESIGN.md §5):

    * MDEH searches in exactly 2 reads at every b; tree schemes need
      2-4 (bounded by the tree height, root pinned);
    * all schemes share the data-page organization, so α (and page
      counts) agree across schemes at each b;
    * at b = 8 the BMEH directory is the smallest of the three;
    * under the skewed workload (table 3) the one-level directory is at
      least an order of magnitude larger than the BMEH-tree's, and its
      insertion cost ρ is the largest of the three schemes.

    The directory-size orderings are claims about *scale* — below
    ~10,000 insertions the trees' fixed 2^φ-slot node reservation can
    dominate — so they are only asserted at sufficient N (quick
    ``REPRO_N`` smoke runs still check the search-cost shapes).
    """
    failures: list[str] = []
    at_scale = any(run.keys_inserted >= 10_000 for run in measured.values())

    def get(scheme: str, b: int) -> RunMetrics | None:
        return measured.get((scheme, b))

    for b in PAGE_CAPACITIES:
        mdeh, meh, bmeh = (get(s, b) for s in ("MDEH", "MEHTree", "BMEHTree"))
        if not all((mdeh, meh, bmeh)):
            continue
        if abs(mdeh.successful_search_reads - 2.0) > 1e-9:
            failures.append(f"b={b}: MDEH λ is {mdeh.successful_search_reads}, not 2")
        for run in (meh, bmeh):
            if not 2.0 <= run.successful_search_reads <= 4.5:
                failures.append(
                    f"b={b}: {run.scheme} λ = {run.successful_search_reads} "
                    "outside the 2-4 band"
                )
        if abs(mdeh.load_factor - bmeh.load_factor) > 0.02:
            failures.append(f"b={b}: load factors diverge across schemes")
        # At large b the paper's own Table 2 has BMEH slightly above
        # MDEH (1,088 vs 1,024 at b=64): node pages reserve 2^phi slots.
        # The claim is "never much worse, much better under pressure".
        if at_scale and bmeh.directory_size > 1.25 * mdeh.directory_size:
            failures.append(
                f"b={b}: BMEH directory ({bmeh.directory_size}) is well "
                f"above MDEH's ({mdeh.directory_size})"
            )
    b8 = [get(s, 8) for s in ("MDEH", "MEHTree", "BMEHTree")]
    if all(b8) and at_scale:
        mdeh, meh, bmeh = b8
        if not bmeh.directory_size == min(r.directory_size for r in b8):
            failures.append("b=8: BMEH directory is not the smallest")
        if table == "table3":
            if mdeh.directory_size < 10 * bmeh.directory_size:
                failures.append(
                    "table3: skew did not blow the one-level directory up "
                    f"(MDEH {mdeh.directory_size} vs BMEH {bmeh.directory_size})"
                )
            if mdeh.insertion_accesses <= max(
                meh.insertion_accesses, bmeh.insertion_accesses
            ):
                failures.append(
                    "table3: MDEH ρ is not the largest under skew"
                )
    return failures
