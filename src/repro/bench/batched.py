"""Benchmark cells for the batched execution engine.

Two cell kinds beyond the classic per-operation tables:

* **batched** — the amortization claim.  An index is built to scale n,
  then the *same* sorted probe batch is applied two ways on identical
  structures: one-at-a-time (each insert its own operation and, on a WAL
  backend, its own durability flush) and through ``insert_many`` (shared
  prefix descent + one group commit).  The cell records both ledgers'
  deltas; the gate demands the batch cost strictly fewer logical reads
  and — on the WAL backend — exactly one commit record.
* **rangepar** — the parallel-scanner consistency claim.  The same
  query boxes run through the serial ``range_search`` and through
  :func:`~repro.core.rangequery.scan_parallel`; the cell records both
  results' identity, the task fan-out and both wall times.  The gate is
  exact equality — parallelism must be invisible except in wall time.

Both use the same seeded workload streams as the classic cells, so every
number is deterministic.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Sequence

from repro.bench.harness import _split_stream, make_index
from repro.core.rangequery import scan_parallel
from repro.storage import PageStore, WALBackend

#: Keys per measured batch (the acceptance criterion's 64-key batch).
DEFAULT_BATCH_SIZE = 64
#: Thread-pool width for the rangepar cells.
DEFAULT_PARALLELISM = 4

#: Query boxes for the rangepar cells, as per-dimension (lo, hi) shares
#: of the 31-bit code domain: a quarter-space box, a thin slab and a
#: near-full box — small, medium and large task fan-outs.
_RANGE_BOXES = (
    (0.25, 0.50),
    (0.40, 0.45),
    (0.05, 0.95),
)


def _wal_commits(store: PageStore) -> int | None:
    backend = store.backend
    if isinstance(backend, WALBackend):
        return backend.checkpoints
    return None


def _build_index(
    cell: Any,
    experiment: Any,
    store: PageStore,
    inserted: Sequence,
):
    """Build the measured structure: scale-n one-at-a-time inserts."""
    index = make_index(
        cell.scheme, experiment.dims, cell.page_capacity, store=store
    )
    for key in inserted:
        index.insert(key, None)
    store.flush()
    return index


def _apply_singles(index, store: PageStore, batch: Sequence) -> None:
    """The op-at-a-time arm: per-insert durability, no shared state."""
    for i, key in enumerate(batch):
        index.insert(key, i)
        store.flush()


def _apply_batched(index, batch: Sequence) -> None:
    """The batched arm: one ``insert_many`` call (its group commit
    flushes at exit, so no extra ``store.flush()`` here)."""
    index.insert_many([(key, i) for i, key in enumerate(batch)])


def run_batched_cell(
    cell: Any,
    experiment: Any,
    make_store,
    n: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> dict:
    """Measure one batched-vs-single cell.

    ``make_store`` is a zero-argument store factory — each arm gets a
    fresh, identically-configured store so the two structures are
    byte-equivalent before the measured batch lands.
    """
    inserted, probes = _split_stream(experiment, n)
    if len(probes) < batch_size:
        raise ValueError(
            f"probe pool of {len(probes)} cannot supply a "
            f"{batch_size}-key batch"
        )
    arms: dict[str, dict] = {}
    batch: list | None = None
    for arm in ("single", "batched"):
        store = make_store()
        try:
            index = _build_index(cell, experiment, store, inserted)
            if batch is None:
                # The same sorted batch for both arms: the acceptance
                # criterion measures a *sorted* 64-key batch, and
                # insert_many sorts internally anyway.
                batch = sorted(
                    probes[:batch_size], key=index._zorder_key
                )
            reads0 = store.stats.snapshot()
            backend0 = store.backend_stats.snapshot()
            commits0 = _wal_commits(store)
            started = time.perf_counter()
            if arm == "single":
                _apply_singles(index, store, batch)
            else:
                _apply_batched(index, batch)
            wall = time.perf_counter() - started
            logical = store.stats.delta(reads0)
            physical = store.backend_stats.delta(backend0)
            commits = _wal_commits(store)
            arms[arm] = {
                "logical": logical.as_dict(),
                "physical": physical.as_dict(),
                "wal_commits": (
                    None if commits is None else commits - commits0
                ),
                "wall_seconds": round(wall, 4),
            }
            index.check_invariants()
        finally:
            store.close()
    single, batched = arms["single"], arms["batched"]
    metrics = {
        "single_logical_reads": single["logical"]["reads"],
        "single_logical_writes": single["logical"]["writes"],
        "single_wal_commits": single["wal_commits"],
        "batched_logical_reads": batched["logical"]["reads"],
        "batched_logical_writes": batched["logical"]["writes"],
        "batched_backend_reads": batched["physical"]["reads"],
        "batched_backend_writes": batched["physical"]["writes"],
        "batched_wal_commits": batched["wal_commits"],
        # λ columns: logical reads per batch operation, both arms.
        "lambda_single_op": round(
            single["logical"]["reads"] / batch_size, 4
        ),
        "lambda_batched_op": round(
            batched["logical"]["reads"] / batch_size, 4
        ),
        "read_saving": round(
            1.0
            - batched["logical"]["reads"]
            / max(single["logical"]["reads"], 1),
            4,
        ),
    }
    return {
        "experiment": cell.experiment,
        "scheme": cell.scheme,
        "b": cell.page_capacity,
        "backend": cell.backend,
        "mode": "batched",
        "kind": "batched",
        "n": len(inserted),
        "batch_size": batch_size,
        "wall_seconds": single["wall_seconds"] + batched["wall_seconds"],
        "arm_wall_seconds": {
            "single": single["wall_seconds"],
            "batched": batched["wall_seconds"],
        },
        "metrics": metrics,
    }


def run_parallel_range_cell(
    cell: Any,
    experiment: Any,
    make_store,
    n: int,
    parallelism: int = DEFAULT_PARALLELISM,
) -> dict:
    """Measure one serial-vs-parallel range-scan cell."""
    inserted, _probes = _split_stream(experiment, n)
    store = make_store()
    try:
        index = _build_index(cell, experiment, store, inserted)
        widths = index.widths
        boxes = [
            (
                tuple(int((1 << w) * lo_frac) for w in widths),
                tuple(int((1 << w) * hi_frac) - 1 for w in widths),
            )
            for lo_frac, hi_frac in _RANGE_BOXES
        ]
        tasks_total = 0
        records_total = 0
        mismatches = 0
        serial_logical = 0
        parallel_logical = 0
        serial_wall = 0.0
        parallel_wall = 0.0
        parallel_physical = 0
        for lows, highs in boxes:
            with store.operation():
                tasks_total += sum(
                    1 for _ in index._leaf_tasks(lows, highs)
                )
            snap = store.stats.snapshot()
            started = time.perf_counter()
            serial = list(index.range_search(lows, highs))
            serial_wall += time.perf_counter() - started
            serial_logical += store.stats.delta(snap).reads
            snap = store.stats.snapshot()
            physical0 = store.backend_stats.snapshot()
            started = time.perf_counter()
            parallel = scan_parallel(index, lows, highs, parallelism)
            parallel_wall += time.perf_counter() - started
            parallel_logical += store.stats.delta(snap).reads
            parallel_physical += store.backend_stats.delta(physical0).reads
            records_total += len(serial)
            if parallel != serial:
                mismatches += 1
        metrics = {
            "rangepar_tasks": tasks_total,
            "rangepar_records": records_total,
            "rangepar_mismatches": mismatches,
            "serial_logical_reads": serial_logical,
            "parallel_logical_reads": parallel_logical,
            "parallel_backend_reads": parallel_physical,
        }
        return {
            "experiment": cell.experiment,
            "scheme": cell.scheme,
            "b": cell.page_capacity,
            "backend": cell.backend,
            "mode": "rangepar",
            "kind": "rangepar",
            "n": len(inserted),
            "parallelism": parallelism,
            "wall_seconds": round(serial_wall + parallel_wall, 4),
            "arm_wall_seconds": {
                "serial": round(serial_wall, 4),
                "parallel": round(parallel_wall, 4),
            },
            "metrics": metrics,
        }
    finally:
        store.close()


#: Amortization bar for the multi-level tree schemes: a sorted batch must
#: save at least 30% of the one-at-a-time logical reads (shared-prefix
#: descent skips most directory re-reads).  The one-level MDEH directory
#: has less prefix to share — its bar is *strictly fewer*.
_TREE_AMORTIZE_FRACTION = 0.7
_TREE_SCHEMES = ("BMEHTree", "MEHTree")


def batched_efficiency_failures(results: Sequence[Mapping]) -> list[str]:
    """The batched executor must amortize, and group commit must group.

    For every ``mode == "batched"`` cell: the batch must cost strictly
    fewer logical reads than op-at-a-time — at most 70% for the tree
    schemes, whose shared-prefix descent carries the acceptance
    criterion's ≥ 30% saving — never more logical writes, and on a WAL
    backend exactly one commit record against one-per-op singles.
    """
    failures = []
    for result in results:
        if result.get("mode") != "batched":
            continue
        label = (
            f"{result['experiment']}/{result['scheme']}/b={result['b']}"
            f"/{result['backend']}/batched"
        )
        m = result["metrics"]
        single_reads = m["single_logical_reads"]
        batched_reads = m["batched_logical_reads"]
        if result["scheme"] in _TREE_SCHEMES:
            if batched_reads > _TREE_AMORTIZE_FRACTION * single_reads:
                failures.append(
                    f"{label}: batched logical reads {batched_reads} exceed "
                    f"70% of the {single_reads} one-at-a-time reads — the "
                    "shared-prefix descent is not amortizing"
                )
        elif batched_reads >= single_reads:
            failures.append(
                f"{label}: batched logical reads {batched_reads} are not "
                f"strictly fewer than the {single_reads} one-at-a-time "
                "reads — the held-page optimization is inert"
            )
        if m["batched_logical_writes"] > m["single_logical_writes"]:
            failures.append(
                f"{label}: batched logical writes "
                f"{m['batched_logical_writes']} exceed the "
                f"{m['single_logical_writes']} one-at-a-time writes"
            )
        commits = m.get("batched_wal_commits")
        if commits is not None:
            if commits != 1:
                failures.append(
                    f"{label}: the batch produced {commits} WAL commit "
                    "records, group commit demands exactly 1"
                )
            single_commits = m.get("single_wal_commits") or 0
            batch_size = result.get("batch_size", 0)
            if single_commits < batch_size:
                failures.append(
                    f"{label}: singles produced {single_commits} WAL "
                    f"commits for {batch_size} ops — the per-op arm is "
                    "not flushing per operation"
                )
    return failures


def parallel_consistency_failures(results: Sequence[Mapping]) -> list[str]:
    """The parallel scanner must be invisible except in wall time:
    identical records (in order) and identical logical charges."""
    failures = []
    for result in results:
        if result.get("mode") != "rangepar":
            continue
        label = (
            f"{result['experiment']}/{result['scheme']}/b={result['b']}"
            f"/{result['backend']}/rangepar"
        )
        m = result["metrics"]
        if m["rangepar_mismatches"]:
            failures.append(
                f"{label}: {m['rangepar_mismatches']} query boxes "
                "returned different records under the parallel scanner"
            )
        if m["parallel_logical_reads"] != m["serial_logical_reads"]:
            failures.append(
                f"{label}: parallel scan charged "
                f"{m['parallel_logical_reads']} logical reads, serial "
                f"charged {m['serial_logical_reads']} — the decomposition "
                "must preserve the paper's accounting"
            )
    return failures
