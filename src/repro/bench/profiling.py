"""The ``repro profile`` harness: cProfile over bench cells.

Performance work in this repo is profile-driven: rather than guessing
at hot loops, run the same workloads the regression bench measures
under :mod:`cProfile` and read the cumulative-time report.  The report
committed as ``PROFILE_pr9.txt`` is the artifact behind PR 9's hot-loop
changes (struct page codecs, table-driven Morton, the aggregator's
adaptive window, buffered session replies) — regenerate it with::

    repro profile --n 2000 --out PROFILE.txt

and diff the top entries before and after a change.

Profiling instrumentation costs real time (every Python call is
intercepted), so the numbers here are for *ranking* work, never for
reporting throughput — the uninstrumented ``repro bench`` owns that.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Callable, Sequence

from repro.bench.regression import BenchCell, run_cell

__all__ = ["DEFAULT_PROFILE_CELLS", "profile_cells"]

#: The cells worth profiling: the embedded single-op path (descent and
#: page codecs), the batched path (Morton interleave and the batch
#: executors), and the served path (wire codecs, session dispatch and
#: the aggregator window).  Multi-process modes are excluded — the
#: profiler only sees the parent.
DEFAULT_PROFILE_CELLS: "tuple[BenchCell, ...]" = (
    BenchCell("table2", "BMEHTree", 8, "memory", "single"),
    BenchCell("table2", "BMEHTree", 8, "file+wal", "single"),
    BenchCell("table2", "BMEHTree", 8, "memory", "batched"),
    BenchCell("table2", "BMEHTree", 8, "file+wal", "served"),
)


def profile_cells(
    cells: Sequence[BenchCell],
    n: int,
    *,
    top: int = 25,
    pool_capacity: int = 256,
    page_size: int = 8192,
    sort: str = "cumulative",
    progress: "Callable[[str], None] | None" = None,
) -> str:
    """Run each cell under cProfile; return the concatenated reports.

    Each section is the cell's label followed by the top ``top``
    functions by ``sort`` order (``cumulative`` ranks by inclusive
    time, which is what points at the loop *owning* the cost;
    ``tottime`` ranks by self time, which points at the body to
    rewrite).
    """
    sections = []
    for cell in cells:
        if progress is not None:
            progress(cell.label)
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            run_cell(
                cell,
                n=n,
                pool_capacity=pool_capacity,
                page_size=page_size,
            )
        finally:
            profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats(sort).print_stats(top)
        sections.append(f"== {cell.label} (n={n}, sort={sort}) ==\n"
                        f"{stream.getvalue()}")
    return "\n".join(sections)
