"""Benchmark baselines and the regression gate behind ``repro bench``.

One *cell* is a fully-specified measurement: (experiment, scheme, b,
backend).  Backends cover the storage configurations the paper's model
assumes and the ones this library adds:

* ``memory``     — :class:`MemoryBackend`, the paper's simulator setting;
* ``file``       — :class:`FileBackend`, every access encodes/decodes a
  byte image;
* ``file+pool``  — :class:`FileBackend` behind a write-back
  :class:`BufferPool`: the buffer-managed fast path;
* ``file+wal``   — :class:`WALBackend` around the page file: the
  crash-safe path, measuring the durability tax in physical I/O.

The ``file+wal`` cell is doubly gated: its physical traffic is bounded
like any other cell, and its *logical* metrics must be byte-identical to
the plain ``file`` cell — the WAL must be transparent to the paper's
accounting (:func:`wal_transparency_failures`).

Each cell records the paper's measures (λ, λ′, ρ, α, σ), both I/O
ledgers (logical accesses under the paper's accounting and physical
backend calls), the pool hit rate, the λ′ probe mix, and wall time.
``write_baseline`` persists the results as ``BENCH_<label>.json``;
``compare_with_baseline`` re-runs a baseline's cells at its recorded
scale and flags regressions beyond a relative tolerance.  Wall time is
reported but never gated — it is machine noise; the gated metrics are
deterministic given the seeded workloads.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from typing import Any, Mapping, Sequence

from repro.bench.harness import (
    FIGURE_EXPERIMENTS,
    TABLE_EXPERIMENTS,
    _split_stream,
    experiment_scale,
    make_index,
)
from repro.analysis.metrics import measure_run
from repro.bench.batched import (
    batched_efficiency_failures,
    parallel_consistency_failures,
    run_batched_cell,
    run_parallel_range_cell,
)
from repro.bench.served import (
    run_served_cell,
    served_coalescing_failures,
)
from repro.bench.sharded import (
    run_sharded_cell,
    sharded_scaling_failures,
)
from repro.bench.migration import (
    migration_loss_failures,
    run_migration_cell,
)
from repro.bench.replication import (
    replication_scaling_failures,
    run_replication_cell,
)
from repro.storage import BufferPool, FileBackend, PageStore, WALBackend

BASELINE_VERSION = 1
BACKENDS = ("memory", "file", "file+pool", "file+wal")
MODES = (
    "single",
    "batched",
    "rangepar",
    "served",
    "sharded",
    "migration",
    "replication",
)

#: Gated metrics where a *larger* current value is a regression.
_WORSE_IF_HIGHER = (
    "lambda",
    "lambda_prime",
    "rho",
    "sigma",
    "logical_reads",
    "logical_writes",
    "backend_reads",
    "backend_writes",
    # batched cells
    "single_logical_reads",
    "single_logical_writes",
    "batched_logical_reads",
    "batched_logical_writes",
    "batched_backend_reads",
    "batched_backend_writes",
    "batched_wal_commits",
    "lambda_single_op",
    "lambda_batched_op",
    # rangepar cells
    "serial_logical_reads",
    "parallel_logical_reads",
    "parallel_backend_reads",
    "rangepar_mismatches",
    # served cells (wall-clock served metrics are never diff-gated; the
    # coalescing ratio is timing-dependent and has its own absolute gate)
    "served_mismatches",
    # sharded cells (the CPU scaling ratios and the per-shard coalescing
    # ratio are scheduling-dependent, so they are never diff-gated — the
    # absolute floors in ``sharded_scaling_failures`` gate them instead)
    "sharded_mismatches",
    # migration cells (the loss count has its own absolute zero gate in
    # ``migration_loss_failures``; diffing it as well costs nothing)
    "migration_loss",
    "migration_write_failures",
    # replication cells (the fan-out scaling ratio and latch-timeout
    # count are scheduling-dependent / absolute-gated in
    # ``replication_scaling_failures``; the oracle count diffs for free)
    "replication_mismatches",
    "replication_latch_timeouts",
)
#: Gated metrics where a *smaller* current value is a regression.
_WORSE_IF_LOWER = ("alpha", "hit_rate", "read_saving", "rangepar_records")


@dataclasses.dataclass(frozen=True)
class BenchCell:
    """One benchmark configuration.

    ``mode`` selects the measurement protocol: ``single`` is the classic
    op-at-a-time table/figure cell; ``batched`` measures the same
    workload's probe batch through ``insert_many`` against op-at-a-time
    singles; ``rangepar`` measures the parallel range scanner against the
    serial one.
    """

    experiment: str
    scheme: str
    page_capacity: int = 8
    backend: str = "memory"
    mode: str = "single"

    @property
    def kind(self) -> str:
        if self.mode != "single":
            return self.mode
        return "figure" if self.experiment in FIGURE_EXPERIMENTS else "table"

    @property
    def label(self) -> str:
        base = (
            f"{self.experiment}/{self.scheme}/"
            f"b={self.page_capacity}/{self.backend}"
        )
        return base if self.mode == "single" else f"{base}/{self.mode}"


#: The committed-baseline suite: the paper's table2 workload across all
#: three schemes, plus the same workload driven through the byte backend
#: with and without the buffer pool (the pool's physical-I/O win is a
#: gated claim), plus one growth curve ending at the terminal checkpoint.
DEFAULT_CELLS = (
    BenchCell("table2", "MDEH"),
    BenchCell("table2", "MEHTree"),
    BenchCell("table2", "BMEHTree"),
    BenchCell("table2", "BMEHTree", backend="file"),
    BenchCell("table2", "BMEHTree", backend="file+pool"),
    BenchCell("table2", "BMEHTree", backend="file+wal"),
    BenchCell("fig6", "BMEHTree"),
    # The batched execution engine's gated claims: shared-prefix descent
    # amortization (memory + MDEH), group commit on the WAL backend, and
    # parallel-scan consistency over the buffer-managed file.
    BenchCell("table2", "BMEHTree", mode="batched"),
    BenchCell("table2", "BMEHTree", backend="file+wal", mode="batched"),
    BenchCell("table2", "MDEH", mode="batched"),
    BenchCell("table2", "BMEHTree", backend="file+pool", mode="rangepar"),
    # The service layer's gated claim: N concurrent clients' mutations
    # coalesce into strictly fewer than one WAL commit per write.
    BenchCell("table2", "BMEHTree", backend="file+wal", mode="served"),
    # The sharding layer's gated claim: the busiest shard of a 4-shard
    # cluster burns >= 2.5x less CPU than the single shard, with every
    # shard's group commit still coalescing.
    BenchCell("table2", "BMEHTree", backend="file+wal", mode="sharded"),
    # The rebalance layer's gated claim: an online split + merge under
    # live concurrent writers loses zero acked writes.
    BenchCell("table2", "BMEHTree", backend="file+wal", mode="migration"),
    # The replication layer's gated claims: reads fan out across
    # followers (>= 1.8x busiest-process CPU from 1 to 3 replicas at
    # full scale), every read matches its acked write, and a write
    # storm cannot latch-time-out an MVCC snapshot scan.
    BenchCell("table2", "BMEHTree", backend="file+wal", mode="replication"),
)


def _experiment(name: str):
    try:
        return {**TABLE_EXPERIMENTS, **FIGURE_EXPERIMENTS}[name]
    except KeyError:
        raise ValueError(f"unknown experiment {name!r}") from None


def _make_store(
    backend: str, workdir: str, page_size: int, pool_capacity: int
) -> PageStore:
    if backend == "memory":
        return PageStore()
    path = os.path.join(workdir, "bench_pages.db")
    if backend == "file":
        return PageStore(FileBackend(path, page_size=page_size))
    if backend == "file+pool":
        return PageStore(
            FileBackend(path, page_size=page_size),
            pool=BufferPool(pool_capacity),
        )
    if backend == "file+wal":
        # The crash-safe path runs behind the pool too: group commit
        # flushes buffered write-backs before the COMMIT record, so
        # durability is unchanged while reads stop paying a decode per
        # access.  Logical metrics stay byte-identical to plain "file"
        # (the WAL-transparency gate), only the physical ledger shrinks.
        return PageStore(
            WALBackend(path, page_size=page_size, checkpoint_every=1024),
            pool=BufferPool(pool_capacity),
        )
    raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")


def run_cell(
    cell: BenchCell,
    n: int | None = None,
    pool_capacity: int = 256,
    page_size: int = 8192,
    growth_checkpoints: int = 16,
    batch_size: int | None = None,
    parallelism: int | None = None,
) -> dict:
    """Measure one cell; returns a JSON-ready result record."""
    experiment = _experiment(cell.experiment)
    n = n or experiment_scale()
    if cell.mode != "single":
        from repro.bench.batched import (
            DEFAULT_BATCH_SIZE,
            DEFAULT_PARALLELISM,
        )
        from repro.bench.served import DEFAULT_CONCURRENCY

        with tempfile.TemporaryDirectory(prefix="repro-bench-") as workdir:
            counter = iter(range(1_000_000))

            def make_store() -> PageStore:
                # Fresh subdirectory per store: the batched cell builds
                # two identically-configured structures in one workdir.
                sub = os.path.join(workdir, f"arm{next(counter)}")
                os.makedirs(sub, exist_ok=True)
                return _make_store(cell.backend, sub, page_size, pool_capacity)

            def make_workdir() -> str:
                # Fresh cluster directory per arm: each shard worker
                # puts its own WAL under it.
                sub = os.path.join(workdir, f"cluster{next(counter)}")
                os.makedirs(sub, exist_ok=True)
                return sub

            if cell.mode == "batched":
                return run_batched_cell(
                    cell,
                    experiment,
                    make_store,
                    n,
                    batch_size=batch_size or DEFAULT_BATCH_SIZE,
                )
            if cell.mode == "rangepar":
                return run_parallel_range_cell(
                    cell,
                    experiment,
                    make_store,
                    n,
                    parallelism=parallelism or DEFAULT_PARALLELISM,
                )
            if cell.mode == "served":
                return run_served_cell(
                    cell,
                    experiment,
                    make_store,
                    n,
                    concurrency=parallelism or DEFAULT_CONCURRENCY,
                )
            if cell.mode == "sharded":
                return run_sharded_cell(
                    cell,
                    experiment,
                    make_workdir,
                    n,
                    concurrency=parallelism or DEFAULT_CONCURRENCY,
                )
            if cell.mode == "migration":
                return run_migration_cell(
                    cell,
                    experiment,
                    make_workdir,
                    n,
                    concurrency=parallelism or DEFAULT_CONCURRENCY,
                )
            if cell.mode == "replication":
                return run_replication_cell(
                    cell,
                    experiment,
                    make_workdir,
                    n,
                    concurrency=parallelism or DEFAULT_CONCURRENCY,
                )
            raise ValueError(
                f"unknown bench mode {cell.mode!r}; choose from {MODES}"
            )
    inserted, probes = _split_stream(experiment, n)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as workdir:
        store = _make_store(cell.backend, workdir, page_size, pool_capacity)
        try:
            index = make_index(
                cell.scheme, experiment.dims, cell.page_capacity, store=store
            )
            started = time.perf_counter()
            metrics, series = measure_run(
                index,
                inserted,
                growth_checkpoints=(
                    growth_checkpoints if cell.kind == "figure" else 0
                ),
                absent_candidates=probes,
            )
            # Push buffered write-backs out so the physical ledger covers
            # the full cost of persisting the run.
            store.flush()
            wall_seconds = time.perf_counter() - started
            pool = store.pool
            result = {
                "experiment": cell.experiment,
                "scheme": cell.scheme,
                "b": cell.page_capacity,
                "backend": cell.backend,
                "mode": cell.mode,
                "kind": cell.kind,
                "n": len(inserted),
                "wall_seconds": round(wall_seconds, 4),
                "probe_mix": metrics.extra.get("absent_probe_mix", {}),
                "metrics": {
                    "lambda": metrics.successful_search_reads,
                    "lambda_prime": metrics.unsuccessful_search_reads,
                    "rho": metrics.insertion_accesses,
                    "alpha": metrics.load_factor,
                    "sigma": metrics.directory_size,
                    "data_pages": metrics.data_pages,
                    "logical_reads": store.stats.reads,
                    "logical_writes": store.stats.writes,
                    "backend_reads": store.backend_stats.reads,
                    "backend_writes": store.backend_stats.writes,
                    "hit_rate": round(pool.hit_rate, 6) if pool else None,
                },
            }
            if cell.kind == "figure":
                result["series"] = {
                    "checkpoints": series.checkpoints,
                    "sigma": series.directory_sizes,
                }
            return result
        finally:
            store.close()


def run_cells(
    cells: Sequence[BenchCell],
    n: int | None = None,
    pool_capacity: int = 256,
    page_size: int = 8192,
    progress=None,
    batch_size: int | None = None,
    parallelism: int | None = None,
) -> list[dict]:
    """Measure every cell (``progress`` is called with each label)."""
    results = []
    for cell in cells:
        if progress is not None:
            progress(cell.label)
        results.append(
            run_cell(
                cell,
                n=n,
                pool_capacity=pool_capacity,
                page_size=page_size,
                batch_size=batch_size,
                parallelism=parallelism,
            )
        )
    return results


def pool_efficiency_failures(results: Sequence[Mapping]) -> list[str]:
    """The buffer-managed fast path must beat the raw byte backend.

    For every (experiment, scheme, b) measured under both ``file`` and
    ``file+pool``, the pooled run must make *strictly fewer* physical
    backend calls; equal-or-more means the pool is incoherent or inert.
    """
    by_key: dict[tuple, dict[str, Mapping]] = {}
    for result in results:
        if result.get("mode", "single") != "single":
            continue  # batched/rangepar cells have their own gates
        key = (result["experiment"], result["scheme"], result["b"])
        by_key.setdefault(key, {})[result["backend"]] = result
    failures = []
    for key, variants in by_key.items():
        if "file" not in variants or "file+pool" not in variants:
            continue
        raw = variants["file"]["metrics"]
        pooled = variants["file+pool"]["metrics"]
        raw_io = raw["backend_reads"] + raw["backend_writes"]
        pooled_io = pooled["backend_reads"] + pooled["backend_writes"]
        if pooled_io >= raw_io:
            failures.append(
                f"{'/'.join(map(str, key))}: file+pool made {pooled_io} "
                f"backend calls, file alone made {raw_io} — the pool "
                "shows no physical I/O win"
            )
    return failures


def wal_transparency_failures(results: Sequence[Mapping]) -> list[str]:
    """The WAL must be invisible to the paper's accounting.

    For every (experiment, scheme, b) measured under both ``file`` and
    ``file+wal``, every *logical* metric — λ, λ′, ρ, α, σ, logical
    reads/writes — must be byte-identical: durability changes where the
    bytes land, never how many pages the algorithms touch.  Any drift
    means the WAL wrapper leaked into index behaviour.
    """
    logical = (
        "lambda",
        "lambda_prime",
        "rho",
        "alpha",
        "sigma",
        "data_pages",
        "logical_reads",
        "logical_writes",
    )
    by_key: dict[tuple, dict[str, Mapping]] = {}
    for result in results:
        if result.get("mode", "single") != "single":
            continue  # batched/rangepar cells have their own gates
        key = (result["experiment"], result["scheme"], result["b"])
        by_key.setdefault(key, {})[result["backend"]] = result
    failures = []
    for key, variants in by_key.items():
        if "file" not in variants or "file+wal" not in variants:
            continue
        raw = variants["file"]["metrics"]
        walled = variants["file+wal"]["metrics"]
        for name in logical:
            if raw.get(name) != walled.get(name):
                failures.append(
                    f"{'/'.join(map(str, key))}: logical metric {name} "
                    f"differs under WAL ({raw.get(name)} vs "
                    f"{walled.get(name)}) — the WAL must be transparent "
                    "to the paper's accounting"
                )
    return failures


def write_baseline(
    path: str,
    results: Sequence[Mapping],
    n: int,
    pool_capacity: int = 256,
    page_size: int = 8192,
) -> None:
    """Persist a bench run as a ``BENCH_*.json`` baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "n": n,
        "pool_capacity": pool_capacity,
        "page_size": page_size,
        "results": list(results),
    }
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as out:
        json.dump(payload, out, indent=1, sort_keys=True)
        out.write("\n")


def load_baseline(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as inp:
        payload = json.load(inp)
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {payload.get('version')!r}"
        )
    return payload


def _cell_of(result: Mapping) -> BenchCell:
    return BenchCell(
        experiment=result["experiment"],
        scheme=result["scheme"],
        page_capacity=result["b"],
        backend=result["backend"],
        mode=result.get("mode", "single"),
    )


def _compare_metric(
    label: str, name: str, base: Any, current: Any, tolerance: float
) -> str | None:
    if base is None or current is None:
        return None
    if name in _WORSE_IF_HIGHER:
        limit = base * (1.0 + tolerance) if base else tolerance
        if current > limit:
            return (
                f"{label}: {name} regressed {base} -> {current} "
                f"(+{_relative(base, current):.1%}, tolerance "
                f"{tolerance:.1%})"
            )
    elif name in _WORSE_IF_LOWER:
        limit = base * (1.0 - tolerance)
        if current < limit:
            return (
                f"{label}: {name} regressed {base} -> {current} "
                f"(-{_relative(base, current):.1%}, tolerance "
                f"{tolerance:.1%})"
            )
    return None


def _relative(base: float, current: float) -> float:
    return abs(current - base) / base if base else float("inf")


def compare_with_baseline(
    baseline: Mapping,
    tolerance: float = 0.05,
    progress=None,
) -> tuple[list[str], list[dict]]:
    """Re-run a baseline's cells at its recorded scale and diff.

    Returns ``(failures, current_results)``.  A failure is a gated
    metric that moved in its *worse* direction by more than
    ``tolerance`` (relative), a growth series that no longer ends at the
    terminal ``(n, σ)`` point, or a pooled run that lost its physical
    I/O advantage.  Improvements never fail the gate.
    """
    failures: list[str] = []
    current_results: list[dict] = []
    for base in baseline["results"]:
        cell = _cell_of(base)
        if progress is not None:
            progress(cell.label)
        current = run_cell(
            cell,
            n=base["n"],
            pool_capacity=baseline.get("pool_capacity", 256),
            page_size=baseline.get("page_size", 8192),
            batch_size=base.get("batch_size"),
            parallelism=base.get("parallelism"),
        )
        current_results.append(current)
        for name in (*_WORSE_IF_HIGHER, *_WORSE_IF_LOWER):
            issue = _compare_metric(
                cell.label,
                name,
                base["metrics"].get(name),
                current["metrics"].get(name),
                tolerance,
            )
            if issue:
                failures.append(issue)
        base_series = base.get("series")
        if base_series:
            series = current.get("series", {})
            checkpoints = series.get("checkpoints", [])
            if not checkpoints or checkpoints[-1] != base["n"]:
                failures.append(
                    f"{cell.label}: growth series ends at "
                    f"{checkpoints[-1] if checkpoints else 'nothing'}, "
                    f"must end at the terminal checkpoint n={base['n']}"
                )
            terminal = series.get("sigma", [0])[-1]
            base_terminal = base_series["sigma"][-1]
            if base_terminal and terminal > base_terminal * (1 + tolerance):
                failures.append(
                    f"{cell.label}: terminal σ regressed "
                    f"{base_terminal} -> {terminal}"
                )
    failures.extend(pool_efficiency_failures(current_results))
    failures.extend(wal_transparency_failures(current_results))
    failures.extend(batched_efficiency_failures(current_results))
    failures.extend(parallel_consistency_failures(current_results))
    failures.extend(served_coalescing_failures(current_results))
    failures.extend(sharded_scaling_failures(current_results))
    failures.extend(migration_loss_failures(current_results))
    failures.extend(replication_scaling_failures(current_results))
    return failures, current_results


def binary_speedup_failures(
    results: Sequence[Mapping],
    reference: Mapping,
    min_ratio: float = 5.0,
) -> list[str]:
    """The binary fast path's headline gate.

    Every served cell present in both the current run and the
    ``reference`` baseline (matched on cell + ``n``) must beat the
    reference throughput by ``min_ratio`` in *both* directions — acked
    writes and verifying reads.  The reference is a frozen pre-binary
    baseline (``BENCH_pr5.json``: JSON payloads, pickle-framed pages),
    so unlike the ±tolerance diff gate this is an absolute claim about
    the struct codecs + v3 payloads + hot-loop work, not "no worse
    than yesterday".  Matching no cell at all is itself a failure — a
    renamed cell must not silently disable the gate.
    """
    by_cell = {
        (_cell_of(base).label, base["n"]): base
        for base in reference["results"]
        if base.get("mode") == "served"
    }
    failures: list[str] = []
    matched = False
    for result in results:
        if result.get("mode") != "served":
            continue
        base = by_cell.get((_cell_of(result).label, result["n"]))
        if base is None:
            continue
        matched = True
        label = f"{_cell_of(result).label}/n={result['n']}"
        for name in ("served_write_ops_per_s", "served_read_ops_per_s"):
            old = base["metrics"].get(name)
            new = result["metrics"].get(name)
            if not old or new is None:
                continue
            if new < min_ratio * old:
                failures.append(
                    f"{label}: {name} {new} is only {new / old:.2f}x the "
                    f"pre-binary baseline's {old} — the binary fast path "
                    f"must hold >= {min_ratio}x"
                )
    if not matched:
        failures.append(
            "binary speedup gate matched no served cell between the "
            "current run and the reference baseline"
        )
    return failures


def format_results(results: Sequence[Mapping]) -> str:
    """Render bench cells as aligned summary tables (one per mode)."""
    singles = [r for r in results if r.get("mode", "single") == "single"]
    batched = [r for r in results if r.get("mode") == "batched"]
    rangepar = [r for r in results if r.get("mode") == "rangepar"]
    served = [r for r in results if r.get("mode") == "served"]
    sharded = [r for r in results if r.get("mode") == "sharded"]
    migration = [r for r in results if r.get("mode") == "migration"]
    replication = [r for r in results if r.get("mode") == "replication"]
    sections: list[str] = []
    if singles:
        header = (
            f"{'cell':<38}{'λ':>7}{'λ′':>7}{'ρ':>8}{'σ':>9}"
            f"{'log R/W':>14}{'phys R/W':>14}{'hit':>7}{'wall s':>9}"
        )
        lines = [header, "-" * len(header)]
        for result in singles:
            m = result["metrics"]
            label = (
                f"{result['experiment']}/{result['scheme']}"
                f"/b={result['b']}/{result['backend']}"
            )
            hit = (
                f"{m['hit_rate']:.1%}" if m["hit_rate"] is not None else "--"
            )
            lines.append(
                f"{label:<38}"
                f"{m['lambda']:>7.3f}{m['lambda_prime']:>7.3f}{m['rho']:>8.3f}"
                f"{m['sigma']:>9d}"
                f"{m['logical_reads']:>7d}/{m['logical_writes']:<6d}"
                f"{m['backend_reads']:>7d}/{m['backend_writes']:<6d}"
                f"{hit:>7}{result['wall_seconds']:>9.3f}"
            )
        sections.append("\n".join(lines))
    if batched:
        header = (
            f"{'batched cell':<44}{'λ 1-at-a-time':>14}{'λ batched':>11}"
            f"{'saving':>8}{'commits 1/b':>13}{'phys R/W':>12}"
        )
        lines = [header, "-" * len(header)]
        for result in batched:
            m = result["metrics"]
            label = (
                f"{result['experiment']}/{result['scheme']}"
                f"/b={result['b']}/{result['backend']}"
                f"/batch={result['batch_size']}"
            )
            commits = (
                f"{m['single_wal_commits']}/{m['batched_wal_commits']}"
                if m["batched_wal_commits"] is not None
                else "--"
            )
            lines.append(
                f"{label:<44}"
                f"{m['lambda_single_op']:>14.3f}"
                f"{m['lambda_batched_op']:>11.3f}"
                f"{m['read_saving']:>8.1%}"
                f"{commits:>13}"
                f"{m['batched_backend_reads']:>6d}/"
                f"{m['batched_backend_writes']:<5d}"
            )
        sections.append("\n".join(lines))
    if rangepar:
        header = (
            f"{'parallel-range cell':<44}{'tasks':>7}{'records':>9}"
            f"{'log serial/par':>16}{'phys R':>8}{'match':>7}"
            f"{'wall s/p':>14}"
        )
        lines = [header, "-" * len(header)]
        for result in rangepar:
            m = result["metrics"]
            label = (
                f"{result['experiment']}/{result['scheme']}"
                f"/b={result['b']}/{result['backend']}"
                f"/p={result['parallelism']}"
            )
            walls = result["arm_wall_seconds"]
            lines.append(
                f"{label:<44}"
                f"{m['rangepar_tasks']:>7d}{m['rangepar_records']:>9d}"
                f"{m['serial_logical_reads']:>8d}/"
                f"{m['parallel_logical_reads']:<7d}"
                f"{m['parallel_backend_reads']:>8d}"
                f"{'yes' if not m['rangepar_mismatches'] else 'NO':>7}"
                f"{walls['serial']:>7.3f}/{walls['parallel']:<6.3f}"
            )
        sections.append("\n".join(lines))
    if served:
        header = (
            f"{'served cell':<44}{'writes':>8}{'commits':>9}"
            f"{'ratio':>9}{'wr/s':>9}{'rd/s':>9}{'match':>7}"
        )
        lines = [header, "-" * len(header)]
        for result in served:
            m = result["metrics"]
            label = (
                f"{result['experiment']}/{result['scheme']}"
                f"/b={result['b']}/{result['backend']}"
                f"/c={result['parallelism']}"
            )
            commits = m["served_commits"]
            lines.append(
                f"{label:<44}"
                f"{m['served_writes']:>8d}"
                f"{commits if commits is not None else '--':>9}"
                f"{m['served_commits_per_write']:>9.4f}"
                f"{m['served_write_ops_per_s']:>9.0f}"
                f"{m['served_read_ops_per_s']:>9.0f}"
                f"{'yes' if not m['served_mismatches'] else 'NO':>7}"
            )
        sections.append("\n".join(lines))
    if sharded:
        header = (
            f"{'sharded cell':<44}{'writes':>8}{'wr ×':>7}{'rd ×':>7}"
            f"{'commit/wr':>11}{'wr/s 1→N':>15}{'match':>7}"
        )
        lines = [header, "-" * len(header)]
        for result in sharded:
            m = result["metrics"]
            arms = result.get("shard_arms", [1, 4])
            label = (
                f"{result['experiment']}/{result['scheme']}"
                f"/b={result['b']}/{result['backend']}"
                f"/shards={arms[0]}v{arms[-1]}"
            )
            lines.append(
                f"{label:<44}"
                f"{m['sharded_writes']:>8d}"
                f"{m['sharded_write_scaling']:>7.2f}"
                f"{m['sharded_read_scaling']:>7.2f}"
                f"{m['sharded_commits_per_write_max']:>11.4f}"
                f"{m['sharded_base_write_ops_per_s']:>7.0f}→"
                f"{m['sharded_scaled_write_ops_per_s']:<7.0f}"
                f"{'yes' if not m['sharded_mismatches'] else 'NO':>7}"
            )
        sections.append("\n".join(lines))
    if migration:
        header = (
            f"{'migration cell':<44}{'writes':>8}{'moved':>8}{'loss':>6}"
            f"{'stale→retry':>13}{'split/merge s':>15}{'epochs':>8}"
        )
        lines = [header, "-" * len(header)]
        for result in migration:
            m = result["metrics"]
            label = (
                f"{result['experiment']}/{result['scheme']}"
                f"/b={result['b']}/{result['backend']}"
                f"/c={result['parallelism']}"
            )
            lines.append(
                f"{label:<44}"
                f"{m['migration_writes']:>8d}"
                f"{m['migration_moved_keys']:>8d}"
                f"{m['migration_loss']:>6d}"
                f"{m['migration_stale_retries']:>13d}"
                f"{m['migration_split_seconds']:>7.3f}/"
                f"{m['migration_merge_seconds']:<7.3f}"
                f"{m['migration_epoch_bumps']:>8d}"
            )
        sections.append("\n".join(lines))
    if replication:
        header = (
            f"{'replication cell':<44}{'writes':>8}{'scaling':>9}"
            f"{'miss':>6}{'latch-TO':>10}{'repl reads 1/3':>16}"
            f"{'scans':>7}"
        )
        lines = [header, "-" * len(header)]
        for result in replication:
            m = result["metrics"]
            label = (
                f"{result['experiment']}/{result['scheme']}"
                f"/b={result['b']}/{result['backend']}"
                f"/c={result['parallelism']}"
            )
            fanout = (
                f"{m['replication_base_replica_reads']}/"
                f"{m['replication_scaled_replica_reads']}"
            )
            lines.append(
                f"{label:<44}"
                f"{m['replication_writes']:>8d}"
                f"{m['replication_read_scaling']:>8.2f}x"
                f"{m['replication_mismatches']:>6d}"
                f"{m['replication_latch_timeouts']:>10d}"
                f"{fanout:>16}"
                f"{m['replication_storm_scans']:>7d}"
            )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
