"""Experiment harness behind the `benchmarks/` suite."""

from repro.bench.paper_data import PAPER_TABLES, PaperCell
from repro.bench.harness import (
    TableExperiment,
    run_table_cell,
    growth_series,
    experiment_scale,
)
from repro.bench.reporting import (
    format_table,
    format_series,
    shape_assertions,
)
from repro.bench.regression import (
    BenchCell,
    DEFAULT_CELLS,
    compare_with_baseline,
    format_results,
    load_baseline,
    pool_efficiency_failures,
    run_cell,
    run_cells,
    write_baseline,
)

__all__ = [
    "PAPER_TABLES",
    "PaperCell",
    "TableExperiment",
    "run_table_cell",
    "growth_series",
    "experiment_scale",
    "format_table",
    "format_series",
    "shape_assertions",
    "BenchCell",
    "DEFAULT_CELLS",
    "compare_with_baseline",
    "format_results",
    "load_baseline",
    "pool_efficiency_failures",
    "run_cell",
    "run_cells",
    "write_baseline",
]
