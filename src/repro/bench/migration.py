"""The ``migration`` benchmark cell: online rebalance under live load.

One cell starts a durable 2-shard cluster behind a real
:class:`~repro.server.router.ShardRouter`, drives the experiment's
seeded key stream through ``concurrency`` v2 clients, and — while the
writers are still running — splits the hottest shard online and then
merges a shard back (:class:`~repro.server.migrate.ShardMigrator`).
The epoch bumps mid-traffic, so the in-flight clients absorb
``stale-topology`` rejections through their transparent re-stamp retry.

**What is gated.**  One thing, absolutely and at zero: *acked-write
loss*.  Every insert the router acknowledged is read back after both
migrations settle (per-key searches plus one scatter-gathered range
query against the oracle); a key that is missing, has the wrong value,
or shows up twice counts as ``migration_loss``.  The gate
(:func:`migration_loss_failures`) also requires that the migrations
actually happened — a split and a merge completed and the epoch
advanced — so the cell cannot pass by quietly skipping the rebalance.
Unlike the diff-gated metrics this is an **absolute** gate: it holds on
every fresh ``repro bench`` run, baseline or not, which is why CI runs
this cell fresh instead of through ``--compare``.

Wall times and rebalance durations are recorded, never gated.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Mapping, Sequence

from repro.bench.harness import _split_stream
from repro.bench.served import _PIPELINE_CHUNK

#: Concurrent router clients writing while the shard moves.
DEFAULT_CONCURRENCY = 8
#: Shards the cluster boots with (the split takes it to three, the
#: merge back to two).
BOOT_SHARDS = 2
#: Pseudo-key bits per dimension (the served/sharded convention).
_WIDTH = 31


async def _drive_live_writes(
    clients: Sequence[Any],
    shares: Sequence[Sequence],
    values: dict,
    progress: list[int],
) -> int:
    """Pipelined inserts that count acked writes as they land.

    ``progress[0]`` advances with every acknowledgement so the
    migration task can trigger mid-stream; returns the number of
    inserts that errored (excluded from the oracle by the caller).
    """
    failed = 0

    async def one_client(client: Any, share: Sequence) -> int:
        wrong = 0
        for start in range(0, len(share), _PIPELINE_CHUNK):
            chunk = share[start:start + _PIPELINE_CHUNK]
            outcome = await asyncio.gather(
                *(client.insert(key, values[key]) for key in chunk),
                return_exceptions=True,
            )
            for key, result in zip(chunk, outcome):
                if isinstance(result, BaseException):
                    wrong += 1
                    values.pop(key, None)
                else:
                    progress[0] += 1
        return wrong

    for wrong in await asyncio.gather(
        *(one_client(c, s) for c, s in zip(clients, shares))
    ):
        failed += wrong
    return failed


async def _readback_loss(
    clients: Sequence[Any],
    shares: Sequence[Sequence],
    values: dict,
    dims: int,
) -> int:
    """Acked-write loss: per-key searches plus one ranged oracle check."""
    loss = 0

    async def one_client(client: Any, share: Sequence) -> int:
        wrong = 0
        for start in range(0, len(share), _PIPELINE_CHUNK):
            chunk = [key for key in share[start:start + _PIPELINE_CHUNK]
                     if key in values]
            got = await asyncio.gather(
                *(client.search(key) for key in chunk),
                return_exceptions=True,
            )
            for key, value in zip(chunk, got):
                if isinstance(value, BaseException) or value != values[key]:
                    wrong += 1
        return wrong

    for wrong in await asyncio.gather(
        *(one_client(c, s) for c, s in zip(clients, shares))
    ):
        loss += wrong
    # A scatter-gathered range over the lower-left quadrant: catches
    # double-returns (an unevicted orphan leaking past the ownership
    # filter) that per-key searches cannot see.
    half = 1 << (_WIDTH - 1)
    expected = sorted(
        [list(key), value]
        for key, value in values.items()
        if all(code < half for code in key)
    )
    ranged = await clients[0].range_search(
        tuple(0 for _ in range(dims)),
        tuple(half - 1 for _ in range(dims)),
    )
    if sorted([list(key), value] for key, value in ranged) != expected:
        loss += 1
    return loss


def run_migration_cell(
    cell: Any,
    experiment: Any,
    workdir_factory,
    n: int,
    concurrency: int = DEFAULT_CONCURRENCY,
) -> dict:
    """Measure one live split + merge under concurrent writers."""
    from repro.server import QueryClient
    from repro.server.router import ShardRouter
    from repro.server.shard import ShardManager

    inserted, _probes = _split_stream(experiment, n)
    keys = [tuple(key) for key in inserted]
    values = {key: i for i, key in enumerate(keys)}
    shares = [keys[i::concurrency] for i in range(concurrency)]

    manager = ShardManager(
        BOOT_SHARDS,
        dims=experiment.dims,
        widths=_WIDTH,
        page_capacity=cell.page_capacity,
        workdir=workdir_factory(),
        sample_keys=keys,
    )
    manager.start()
    outcome: dict[str, Any] = {}
    try:

        async def drive() -> None:
            async with ShardRouter(
                manager, max_inflight=concurrency * _PIPELINE_CHUNK
            ) as router:
                host, port = router.address
                clients = [
                    await QueryClient.connect(host, port, negotiate=True)
                    for _ in range(concurrency)
                ]
                try:
                    progress = [0]
                    epoch0 = router.epoch

                    async def rebalance() -> dict[str, Any]:
                        # Split once a quarter of the stream is acked,
                        # merge once half is — both mid-traffic.
                        while progress[0] < len(keys) // 4:
                            await asyncio.sleep(0.01)
                        started = time.perf_counter()
                        split = await router.migrator.split()
                        split_wall = time.perf_counter() - started
                        while progress[0] < len(keys) // 2:
                            await asyncio.sleep(0.01)
                        started = time.perf_counter()
                        merge = await router.migrator.merge()
                        merge_wall = time.perf_counter() - started
                        return {
                            "split": split,
                            "merge": merge,
                            "split_wall": split_wall,
                            "merge_wall": merge_wall,
                        }

                    started = time.perf_counter()
                    failed, moves = await asyncio.gather(
                        _drive_live_writes(clients, shares, values, progress),
                        rebalance(),
                    )
                    write_wall = time.perf_counter() - started

                    started = time.perf_counter()
                    loss = await _readback_loss(
                        clients, shares, values, experiment.dims
                    )
                    read_wall = time.perf_counter() - started
                    outcome.update(
                        write_wall=write_wall,
                        read_wall=read_wall,
                        failed=failed,
                        loss=loss,
                        epoch_bumps=router.epoch - epoch0,
                        migrations=router.migrator.completed,
                        stale_retries=router.metrics.stale_rejections,
                        moved=(
                            moves["split"]["moved"] + moves["merge"]["moved"]
                        ),
                        delta_rounds=(
                            moves["split"]["delta_rounds"]
                            + moves["merge"]["delta_rounds"]
                        ),
                        split_wall=moves["split_wall"],
                        merge_wall=moves["merge_wall"],
                        shards=len(manager.specs),
                    )
                finally:
                    for client in clients:
                        await client.close()

        asyncio.run(drive())
    finally:
        manager.stop()
    writes = len(keys)
    metrics = {
        "migration_writes": writes,
        "migration_write_failures": outcome["failed"],
        "migration_loss": outcome["loss"],
        "migration_count": outcome["migrations"],
        "migration_epoch_bumps": outcome["epoch_bumps"],
        "migration_stale_retries": outcome["stale_retries"],
        "migration_moved_keys": outcome["moved"],
        "migration_delta_rounds": outcome["delta_rounds"],
        # Wall clocks: recorded, never gated.
        "migration_write_ops_per_s": round(
            writes / max(outcome["write_wall"], 1e-9), 1
        ),
        "migration_split_seconds": round(outcome["split_wall"], 4),
        "migration_merge_seconds": round(outcome["merge_wall"], 4),
    }
    return {
        "experiment": cell.experiment,
        "scheme": cell.scheme,
        "b": cell.page_capacity,
        "backend": cell.backend,
        "mode": "migration",
        "kind": "migration",
        "n": writes,
        "parallelism": concurrency,
        "shards": outcome["shards"],
        "wall_seconds": round(
            outcome["write_wall"] + outcome["read_wall"], 4
        ),
        "arm_wall_seconds": {
            "writes": round(outcome["write_wall"], 4),
            "reads": round(outcome["read_wall"], 4),
        },
        "metrics": metrics,
    }


def migration_loss_failures(results: Sequence[Mapping]) -> list[str]:
    """The rebalance layer's gated claims — absolute, never diff-gated.

    For every ``mode == "migration"`` cell: zero acked-write loss
    (every insert the router acknowledged before, during or after the
    cutover reads back with its acked value, and no orphan leaks into a
    scattered range), at least one split *and* one merge actually
    completed, and the topology epoch advanced — a run that skipped the
    rebalance must not pass its own gate.
    """
    failures = []
    for result in results:
        if result.get("mode") != "migration":
            continue
        label = (
            f"{result['experiment']}/{result['scheme']}/b={result['b']}"
            f"/{result['backend']}/migration"
        )
        m = result["metrics"]
        if m.get("migration_loss"):
            failures.append(
                f"{label}: {m['migration_loss']} acked write(s) lost or "
                "corrupted across the online split/merge — the rebalance "
                "broke the durability promise"
            )
        if m.get("migration_count", 0) < 2:
            failures.append(
                f"{label}: only {m.get('migration_count', 0)} migration(s) "
                "completed; the cell must drive one split and one merge"
            )
        if m.get("migration_epoch_bumps", 0) < 2:
            failures.append(
                f"{label}: the topology epoch advanced "
                f"{m.get('migration_epoch_bumps', 0)} time(s); each "
                "migration must fence and re-stamp the cluster"
            )
        if m.get("migration_write_failures"):
            failures.append(
                f"{label}: {m['migration_write_failures']} write(s) failed "
                "outright during the rebalance — cutover must be "
                "transparent to v2 clients"
            )
    return failures
