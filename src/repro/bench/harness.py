"""Experiment definitions: one object per paper table / figure.

``REPRO_N`` in the environment scales every experiment's insertion count
(default: the paper's 40,000).  Key streams are cached per (workload,
dims, N) so the twelve cells of one table reuse one stream — the paper
runs all schemes over the same insertions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Sequence, Type

from repro.core import BMEHTree, MDEH, MEHTree, MultidimensionalIndex
from repro.analysis.metrics import GrowthSeries, RunMetrics, measure_run
from repro.workloads import normal_keys, uniform_keys, unique
from repro.bench.paper_data import PAPER_N

SCHEMES: dict[str, Type[MultidimensionalIndex]] = {
    "MDEH": MDEH,
    "MEHTree": MEHTree,
    "BMEHTree": BMEHTree,
}

_KEY_CACHE: dict[tuple, list] = {}


def experiment_scale() -> int:
    """Keys per run: the paper's 40,000 unless ``REPRO_N`` overrides."""
    return int(os.environ.get("REPRO_N", PAPER_N))


def _keys(workload: str, dims: int, n: int, seed: int = 1986) -> list:
    cached = _KEY_CACHE.get((workload, dims, n, seed))
    if cached is not None:
        return cached
    if workload == "uniform":
        keys = unique(uniform_keys(n, dims, seed=seed))
    elif workload == "normal":
        keys = unique(normal_keys(n, dims, seed=seed))
    else:
        raise ValueError(f"unknown workload {workload!r}")
    _KEY_CACHE[(workload, dims, n, seed)] = keys
    return keys


@dataclass(frozen=True)
class TableExperiment:
    """One of the paper's §5 tables."""

    name: str  # "table2" / "table3" / "table4"
    workload: str  # "uniform" / "normal"
    dims: int

    def keys(self, n: int | None = None) -> list:
        return _keys(self.workload, self.dims, n or experiment_scale())


TABLE_EXPERIMENTS = {
    "table2": TableExperiment("table2", "uniform", 2),
    "table3": TableExperiment("table3", "normal", 2),
    "table4": TableExperiment("table4", "uniform", 3),
}

FIGURE_EXPERIMENTS = {
    # Figures 6 and 7 plot directory growth for b = 8 under the two
    # 2-dimensional workloads.
    "fig6": TableExperiment("fig6", "uniform", 2),
    "fig7": TableExperiment("fig7", "normal", 2),
}


def make_index(
    scheme: str,
    dims: int,
    page_capacity: int,
    **options,
) -> MultidimensionalIndex:
    """Instantiate a scheme with the paper's parameters.

    Pseudo-key width is 31 bits: the paper's keys are "pseudo random
    integers in [0, 2^31 - 1]", so bit 31 is the deepest *informative*
    bit.  Indexing the 31-bit domain with 32-bit codes would make every
    component's leading bit a constant 0 — each region would waste its
    first split per dimension separating keys from an empty half, and
    every directory would come out exactly one doubling per dimension
    larger than the paper's.
    """
    cls = SCHEMES[scheme]
    return cls(dims=dims, page_capacity=page_capacity, widths=31, **options)


_ABSENT_PROBE_POOL = 3000


def _split_stream(experiment: TableExperiment, n: int | None) -> tuple[list, list]:
    """One workload stream: the first ``n`` keys are inserted, the rest
    serve as distribution-faithful unsuccessful-search probes."""
    n = n or experiment_scale()
    stream = experiment.keys(n + _ABSENT_PROBE_POOL)
    return stream[:n], stream[n:]


def run_table_cell(
    experiment: TableExperiment,
    scheme: str,
    page_capacity: int,
    n: int | None = None,
    **options,
) -> RunMetrics:
    """Measure one (scheme, b) cell of a table experiment."""
    index = make_index(scheme, experiment.dims, page_capacity, **options)
    inserted, probes = _split_stream(experiment, n)
    metrics, _ = measure_run(index, inserted, absent_candidates=probes)
    return metrics


def growth_series(
    experiment: TableExperiment,
    scheme: str,
    page_capacity: int = 8,
    checkpoints: int = 20,
    n: int | None = None,
    **options,
) -> tuple[RunMetrics, GrowthSeries]:
    """Directory-size-vs-insertions series for the figure experiments."""
    index = make_index(scheme, experiment.dims, page_capacity, **options)
    inserted, probes = _split_stream(experiment, n)
    return measure_run(
        index,
        inserted,
        growth_checkpoints=checkpoints,
        absent_candidates=probes,
    )
