"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  The split between key-level errors (duplicate keys,
unencodable values) and structural errors (page-store misuse, exhausted
split depth) mirrors the two failure surfaces of the paper's algorithms:
``BMEH_Insert`` reports duplicate keys, and every splitting scheme has a
hard floor once all ``w`` pseudo-key bits are consumed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class EncodingError(ReproError):
    """A value cannot be mapped to an order-preserving pseudo-key."""


class KeyDimensionError(ReproError):
    """A key vector's arity does not match the index's dimensionality."""


class DuplicateKeyError(ReproError):
    """An exact duplicate key was inserted.

    The paper's insertion algorithm prints an error message and returns
    when the target page already contains the key; we raise instead.
    """


class KeyNotFoundError(ReproError):
    """A delete or update referenced a key that is not in the index."""


class CapacityError(ReproError):
    """Splitting cannot separate the colliding keys any further.

    Raised when a region already at the maximal depth ``w`` on every
    dimension still overflows, i.e. more than ``b`` keys share all
    ``w``-bit pseudo-key components.  The paper assumes distinct 32-bit
    keys and never hits this case.
    """


class StorageError(ReproError):
    """Page-store misuse: bad page id, freed-page access, size overflow."""


class LatchTimeout(ReproError):
    """A latch acquisition gave up after its timeout elapsed.

    Raised by :meth:`repro.storage.latch.ReadWriteLatch.acquire_read` /
    ``acquire_write`` when called with ``timeout=``.  The service layer
    maps it to a 503-style backpressure reply: a stuck writer becomes a
    clean retryable error at the client instead of a hung server.
    """


class ProtocolError(ReproError):
    """A malformed, oversized or version-mismatched wire-protocol frame.

    Carries ``code``, the structured error identifier sent back to the
    client (``bad-frame``, ``bad-version``, ``bad-payload``, ...).
    """

    def __init__(self, message: str, *, code: str = "bad-frame") -> None:
        self.code = code
        super().__init__(message)


class ShardDownError(ReproError):
    """A shard worker is unreachable and a routed request cannot proceed.

    Raised by the :class:`~repro.server.router.ShardRouter` when the
    upstream connection for the shard owning a key is dead and one
    reconnect attempt failed.  Carries ``code = "shard-down"`` so the
    wire layer reports it structurally instead of hanging the client;
    the other shards keep serving (graceful degradation, not cluster
    failure).

    Attributes:
        shard: index of the unreachable shard, if known.
    """

    code = "shard-down"

    def __init__(self, message: str, *, shard: int | None = None) -> None:
        self.shard = shard
        super().__init__(message)


class StaleTopologyError(ReproError):
    """A request asserted a topology epoch the router has moved past.

    Carries ``code = "stale-topology"``.  The reply header already holds
    the current epoch, so a v2 client refreshes and retries transparently
    — callers only ever see this if retries are exhausted.
    """

    code = "stale-topology"

    def __init__(self, message: str, *, epoch: int = 0) -> None:
        self.epoch = epoch
        super().__init__(message)


class MigrationError(ReproError):
    """An online shard split/merge could not be completed.

    Carries ``code = "migration-failed"``.  Raised by the
    :class:`~repro.server.migrate.ShardMigrator` when a rebalance step
    fails *before* its commit point (the atomic topology replace): the
    cluster is left exactly as it was — the target worker is killed, the
    tap released, and no epoch is bumped — so the caller may simply
    retry.  A failure after the commit point never raises this; the
    new topology is live and only cleanup (orphan eviction) remains.
    """

    code = "migration-failed"


class CrashError(StorageError):
    """A simulated power failure raised by the fault-injection harness.

    Once raised, every further operation on the injected files raises it
    again — the "machine" is down.  Durable state is materialized to the
    real filesystem at the crash point, so a fresh backend can reopen the
    files and exercise recovery.
    """


class InvariantViolation(ReproError):
    """A structural invariant does not hold (raised by ``repro.sanitize``).

    Unlike a bare ``AssertionError`` the violation is structured: it names
    the broken invariant, the index scheme, and the path from the root to
    the failing node, so a corrupted split deep in a tree is reported as
    an addressable location rather than a stack trace.

    Attributes:
        invariant: short identifier of the broken invariant
            (e.g. ``"balance"``, ``"depth-arithmetic"``).
        scheme: class name of the index under check.
        path: root-to-failure location steps, e.g.
            ``("node 4", "cell (1, 0)", "page 17")``.
    """

    def __init__(
        self,
        message: str,
        *,
        invariant: str = "invariant",
        scheme: str | None = None,
        path: tuple[str, ...] | list[str] = (),
    ) -> None:
        self.invariant = invariant
        self.scheme = scheme
        self.path = tuple(path)
        where = " -> ".join(self.path) if self.path else "<root>"
        prefix = f"{scheme}: " if scheme else ""
        super().__init__(f"{prefix}[{invariant}] at {where}: {message}")


class SerializationError(StorageError):
    """A page image cannot be encoded into / decoded from its byte form."""
