"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  The split between key-level errors (duplicate keys,
unencodable values) and structural errors (page-store misuse, exhausted
split depth) mirrors the two failure surfaces of the paper's algorithms:
``BMEH_Insert`` reports duplicate keys, and every splitting scheme has a
hard floor once all ``w`` pseudo-key bits are consumed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class EncodingError(ReproError):
    """A value cannot be mapped to an order-preserving pseudo-key."""


class KeyDimensionError(ReproError):
    """A key vector's arity does not match the index's dimensionality."""


class DuplicateKeyError(ReproError):
    """An exact duplicate key was inserted.

    The paper's insertion algorithm prints an error message and returns
    when the target page already contains the key; we raise instead.
    """


class KeyNotFoundError(ReproError):
    """A delete or update referenced a key that is not in the index."""


class CapacityError(ReproError):
    """Splitting cannot separate the colliding keys any further.

    Raised when a region already at the maximal depth ``w`` on every
    dimension still overflows, i.e. more than ``b`` keys share all
    ``w``-bit pseudo-key components.  The paper assumes distinct 32-bit
    keys and never hits this case.
    """


class StorageError(ReproError):
    """Page-store misuse: bad page id, freed-page access, size overflow."""


class SerializationError(StorageError):
    """A page image cannot be encoded into / decoded from its byte form."""
