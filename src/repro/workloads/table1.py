"""The paper's Table 1: the 22 binary-encoded example keys.

Used by §4.3's worked example (Figures 4 and 5): 2-dimensional keys with
a 4-bit first component and a 3-bit second component, inserted into a
BMEH-tree with ξ = (2, 2) and page capacity b = 2.
"""

from __future__ import annotations

from repro.bits import from_bitstring

# (first component, second component) exactly as printed in Table 1.
_TABLE1_BITSTRINGS: tuple[tuple[str, str], ...] = (
    ("1110", "010"),  # K1
    ("1011", "101"),  # K2
    ("0101", "101"),  # K3
    ("1100", "101"),  # K4
    ("0001", "111"),  # K5
    ("0010", "100"),  # K6
    ("0100", "010"),  # K7
    ("0111", "100"),  # K8
    ("0001", "001"),  # K9
    ("0110", "010"),  # K10
    ("1000", "110"),  # K11
    ("0111", "001"),  # K12
    ("0011", "000"),  # K13
    ("1100", "000"),  # K14
    ("1001", "011"),  # K15
    ("1101", "001"),  # K16
    ("0011", "100"),  # K17
    ("1110", "011"),  # K18
    ("0111", "011"),  # K19
    ("0001", "010"),  # K20
    ("1001", "001"),  # K21
    ("0110", "011"),  # K22
)

#: The example's pseudo-key widths: 4 bits and 3 bits.
TABLE1_WIDTHS: tuple[int, int] = (4, 3)

#: The paper's example parameters: ξ = (2, 2), b = 2.
TABLE1_XI: tuple[int, int] = (2, 2)
TABLE1_PAGE_CAPACITY: int = 2

#: Table 1 as labelled bit strings, in insertion order.
TABLE1_KEYS: tuple[tuple[str, str], ...] = _TABLE1_BITSTRINGS


def table1_codes() -> list[tuple[int, ...]]:
    """Table 1 as integer pseudo-key tuples, in insertion order."""
    codes = []
    for first, second in _TABLE1_BITSTRINGS:
        v1, w1 = from_bitstring(first)
        v2, w2 = from_bitstring(second)
        if (w1, w2) != TABLE1_WIDTHS:
            raise AssertionError("Table 1 entry with unexpected width")
        codes.append((v1, v2))
    return codes
