"""Operation traces: record, persist, and replay index workloads.

A trace is a list of operations — ``("insert", key, value)``,
``("delete", key)``, ``("search", key)`` — stored as JSON lines.  Traces
make experiments portable (ship the exact operation stream, not the
generator), and the replay helper doubles as a differential-testing
harness: replaying one trace against two schemes must produce identical
answers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import KeyNotFoundError, ReproError

Operation = tuple  # ("insert", key, value) | ("delete", key) | ("search", key)


class TraceError(ReproError):
    """A trace file is malformed or an operation is unknown."""


@dataclass
class ReplayReport:
    """What happened during one replay."""

    inserts: int = 0
    deletes: int = 0
    searches: int = 0
    misses: int = 0  # searches/deletes of absent keys
    answers: list = field(default_factory=list)  # search results in order

    @property
    def operations(self) -> int:
        return self.inserts + self.deletes + self.searches


def save_trace(operations: Iterable[Operation], path: str) -> int:
    """Write operations as JSON lines; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as out:
        for operation in operations:
            out.write(json.dumps(list(operation)) + "\n")
            count += 1
    return count


def load_trace(path: str) -> list[Operation]:
    """Read a JSON-lines trace; keys come back as tuples."""
    operations: list[Operation] = []
    with open(path, "r", encoding="utf-8") as inp:
        for line_number, line in enumerate(inp, 1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"line {line_number}: {exc}") from exc
            if not row or row[0] not in ("insert", "delete", "search"):
                raise TraceError(f"line {line_number}: unknown operation")
            kind = row[0]
            key = tuple(row[1])
            if kind == "insert":
                value = row[2] if len(row) > 2 else None
                operations.append((kind, key, value))
            else:
                operations.append((kind, key))
    return operations


def replay(index: Any, operations: Iterable[Operation]) -> ReplayReport:
    """Apply a trace to an index; absent-key deletes/searches count as
    misses rather than failures (traces may be replayed onto indexes
    with different starting contents)."""
    report = ReplayReport()
    for operation in operations:
        kind = operation[0]
        if kind == "insert":
            index.insert(operation[1], operation[2])
            report.inserts += 1
        elif kind == "delete":
            try:
                index.delete(operation[1])
            except KeyNotFoundError:
                report.misses += 1
            else:
                report.deletes += 1
        elif kind == "search":
            try:
                report.answers.append(index.search(operation[1]))
            except KeyNotFoundError:
                report.answers.append(KeyNotFoundError)
                report.misses += 1
            report.searches += 1
        else:  # pragma: no cover - load_trace validates kinds
            raise TraceError(f"unknown operation {kind!r}")
    return report


def churn_trace(
    n_operations: int,
    dims: int = 2,
    domain: int = 256,
    insert_bias: float = 0.6,
    search_share: float = 0.2,
    seed: int = 1986,
) -> list[Operation]:
    """A synthetic mixed read/write trace with a live-set model.

    ``insert_bias`` steers the insert/delete mix among writes;
    ``search_share`` of the operations are point lookups (half aimed at
    live keys, half at random ones).
    """
    if not 0.0 <= insert_bias <= 1.0 or not 0.0 <= search_share < 1.0:
        raise ValueError("bias parameters out of range")
    rng = np.random.default_rng(seed)
    live: list[tuple[int, ...]] = []
    live_set: set[tuple[int, ...]] = set()
    operations: list[Operation] = []
    serial = 0
    while len(operations) < n_operations:
        roll = rng.random()
        if roll < search_share:
            if live and rng.random() < 0.5:
                key = live[int(rng.integers(len(live)))]
            else:
                key = tuple(int(rng.integers(domain)) for _ in range(dims))
            operations.append(("search", key))
        elif rng.random() < insert_bias or not live:
            key = tuple(int(rng.integers(domain)) for _ in range(dims))
            if key in live_set:
                continue
            operations.append(("insert", key, serial))
            serial += 1
            live.append(key)
            live_set.add(key)
        else:
            position = int(rng.integers(len(live)))
            key = live[position]
            live[position] = live[-1]
            live.pop()
            live_set.discard(key)
            operations.append(("delete", key))
    return operations
