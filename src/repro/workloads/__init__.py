"""Key-stream generators for the paper's experiments (§5) and beyond."""

from repro.workloads.generators import (
    uniform_keys,
    normal_keys,
    clustered_keys,
    noise_burst_keys,
    zipf_grid_keys,
    adversarial_common_prefix_keys,
    unique,
    DOMAIN_MAX,
)
from repro.workloads.table1 import TABLE1_KEYS, table1_codes
from repro.workloads.trace import (
    churn_trace,
    load_trace,
    replay,
    save_trace,
    ReplayReport,
    TraceError,
)

__all__ = [
    "churn_trace",
    "load_trace",
    "replay",
    "save_trace",
    "ReplayReport",
    "TraceError",
    "uniform_keys",
    "normal_keys",
    "clustered_keys",
    "noise_burst_keys",
    "zipf_grid_keys",
    "adversarial_common_prefix_keys",
    "unique",
    "DOMAIN_MAX",
    "TABLE1_KEYS",
    "table1_codes",
]
