"""Synthetic key streams.

The paper's two experimental distributions (§5):

1. *uniform* — every key component a pseudo-random integer in
   ``[0, 2^31 - 1]`` (d = 2 and d = 3);
2. *(bivariate) normal* — every component a truncated discretized normal
   over the same domain.  The paper gives no (μ, σ); we use
   μ = 2^30, σ = 2^31/12 — calibrated so the one-level directory for
   b = 8 lands exactly on the paper's reported 524,288 elements and the
   BMEH-tree within 2% of its 20,800 (see EXPERIMENTS.md for the
   sensitivity note).

Plus the motivating pathologies: clustered data, the paper's §3 "noise"
bursts (runs of keys differing only in low-order bits), a Zipf-weighted
grid, and the adversarial common-prefix stream that realizes Theorem 2's
worst case.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

DOMAIN_MAX = 2**31  # keys live in [0, 2^31 - 1], the paper's domain

KeyTuple = tuple[int, ...]


def _as_tuples(array: np.ndarray) -> list[KeyTuple]:
    return [tuple(int(x) for x in row) for row in array]


def unique(keys: Iterable[KeyTuple]) -> list[KeyTuple]:
    """Drop duplicate key vectors, keeping first occurrence order.

    The paper's insert rejects exact duplicates, so experiment streams
    are deduplicated up front.
    """
    return list(dict.fromkeys(keys))


def uniform_keys(
    n: int, dims: int = 2, seed: int = 1986, domain: int = DOMAIN_MAX
) -> list[KeyTuple]:
    """``n`` keys with independent uniform components in ``[0, domain)``."""
    rng = np.random.default_rng(seed)
    return _as_tuples(rng.integers(0, domain, size=(n, dims), dtype=np.int64))


def normal_keys(
    n: int,
    dims: int = 2,
    seed: int = 1986,
    domain: int = DOMAIN_MAX,
    mean: float | None = None,
    spread: float | None = None,
) -> list[KeyTuple]:
    """``n`` truncated discretized normal keys (the paper's skewed load).

    Out-of-domain draws are rejected and redrawn (truncation), then
    floored to integers (discretization).
    """
    rng = np.random.default_rng(seed)
    mu = domain / 2 if mean is None else mean
    sd = domain / 12 if spread is None else spread
    rows = np.empty((0, dims))
    while len(rows) < n:
        sample = rng.normal(mu, sd, size=(n, dims))
        sample = sample[((sample >= 0) & (sample < domain)).all(axis=1)]
        rows = np.vstack([rows, sample])
    return _as_tuples(rows[:n].astype(np.int64))


def clustered_keys(
    n: int,
    dims: int = 2,
    clusters: int = 12,
    cluster_radius: float = DOMAIN_MAX / 256,
    seed: int = 1986,
    domain: int = DOMAIN_MAX,
) -> list[KeyTuple]:
    """Keys concentrated around a few uniformly placed cluster centres —
    the geographic / pictorial workload shape the introduction motivates."""
    rng = np.random.default_rng(seed)
    centres = rng.uniform(0, domain, size=(clusters, dims))
    picks = rng.integers(0, clusters, size=n)
    rows = centres[picks] + rng.normal(0, cluster_radius, size=(n, dims))
    rows = np.clip(rows, 0, domain - 1)
    return _as_tuples(rows.astype(np.int64))


def noise_burst_keys(
    n: int,
    dims: int = 2,
    burst: int = 32,
    low_bits: int = 12,
    seed: int = 1986,
    domain: int = DOMAIN_MAX,
) -> list[KeyTuple]:
    """The paper's §3 "noise effect": bursts of consecutive keys that
    agree on everything except their low-order bits, the pattern that
    drives repeated splitting of one directory region."""
    rng = np.random.default_rng(seed)
    keys: list[KeyTuple] = []
    while len(keys) < n:
        base = rng.integers(0, domain, size=dims, dtype=np.int64)
        base &= ~np.int64((1 << low_bits) - 1)
        jitter = rng.integers(0, 1 << low_bits, size=(burst, dims), dtype=np.int64)
        block = np.minimum(base + jitter, domain - 1)
        keys.extend(_as_tuples(block))
    return keys[:n]


def zipf_grid_keys(
    n: int,
    dims: int = 2,
    grid_bits: int = 8,
    exponent: float = 1.2,
    seed: int = 1986,
    domain: int = DOMAIN_MAX,
) -> list[KeyTuple]:
    """Zipf-weighted coarse grid cells with uniform fill inside each cell
    — heavier skew than the normal load, used by the ablations."""
    rng = np.random.default_rng(seed)
    cells = 1 << grid_bits
    weights = 1.0 / np.arange(1, cells + 1) ** exponent
    weights /= weights.sum()
    cell_width = domain // cells
    rows = np.empty((n, dims), dtype=np.int64)
    for j in range(dims):
        ranked = rng.permutation(cells)  # which cell gets which rank
        picks = ranked[rng.choice(cells, size=n, p=weights)]
        rows[:, j] = picks * cell_width + rng.integers(
            0, cell_width, size=n, dtype=np.int64
        )
    return _as_tuples(rows)


def adversarial_common_prefix_keys(
    count: int, dims: int = 2, width: int = 32, seed: int = 1986
) -> list[KeyTuple]:
    """Keys agreeing on all but their lowest bits — Theorem 2's worst
    case, which forces the deepest possible split cascade."""
    rng = np.random.default_rng(seed)
    base = [int(rng.integers(0, 1 << width)) & ~1 for _ in range(dims)]
    tail_bits = max((count - 1).bit_length(), 1)
    keys = []
    for i in range(count):
        key = []
        for j in range(dims):
            prefix = base[j] >> tail_bits << tail_bits
            key.append(prefix | (i & ((1 << tail_bits) - 1)))
        keys.append(tuple(key))
    return unique(keys)


def interleave(*streams: Iterable[KeyTuple]) -> Iterator[KeyTuple]:
    """Round-robin merge of key streams (mixed workloads)."""
    iterators = [iter(s) for s in streams]
    while iterators:
        alive = []
        for it in iterators:
            try:
                yield next(it)
                alive.append(it)
            except StopIteration:
                pass
        iterators = alive
