"""Bit-level pseudo-key machinery.

The paper treats every key component as an (effectively infinite) sequence
of 0/1 bits consumed most-significant-bit first: a directory with global
depth ``H`` addresses a component by its first ``H`` bits via

    i = g(K, H) = sum_{1<=r<=H} x_r * 2^(H-r)

and descending through a directory entry *strips* the entry's local-depth
bits off the front (the paper's ``Left_Shift``).  We represent a component
as an unsigned integer of a known bit ``width`` (MSB first), so both
operations are plain shifts.

All functions here are pure and operate on ``(value, width)`` pairs; the
index implementations keep the pair in parallel variables for speed.  The
:class:`BitView` convenience wrapper bundles the pair for tests, examples
and debugging output.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "g",
    "prefix",
    "strip",
    "bit_at",
    "low_mask",
    "to_bitstring",
    "from_bitstring",
    "interleave",
    "deinterleave",
    "BitView",
]


def low_mask(n: int) -> int:
    """Return an ``n``-bit mask of ones (``n >= 0``)."""
    return (1 << n) - 1


def g(value: int, width: int, depth: int) -> int:
    """The paper's address function ``g(K, H)``: the top ``depth`` bits.

    ``value`` is a ``width``-bit unsigned integer read MSB first.  With
    ``depth == 0`` the result is 0 (a directory of a single element).

    Raises:
        ValueError: if ``depth`` exceeds ``width`` (the key has run out of
            addressing bits) or any argument is negative.
    """
    if depth < 0 or width < 0:
        raise ValueError("width and depth must be non-negative")
    if depth > width:
        raise ValueError(f"cannot take {depth} prefix bits of a {width}-bit value")
    return value >> (width - depth)


# ``prefix`` is the natural name for g outside the paper's notation.
prefix = g


def strip(value: int, width: int, n: int) -> tuple[int, int]:
    """Remove the first ``n`` bits of a ``width``-bit value.

    Returns the remaining ``(value, width)`` pair.  This is the paper's
    ``Left_Shift(v, n)`` applied to a finite-width register: the consumed
    prefix disappears and the remaining suffix keeps its MSB-first reading.
    """
    if n < 0:
        raise ValueError("cannot strip a negative number of bits")
    if n > width:
        raise ValueError(f"cannot strip {n} bits from a {width}-bit value")
    remaining = width - n
    return value & low_mask(remaining), remaining


def bit_at(value: int, width: int, position: int) -> int:
    """Return bit number ``position`` (1-indexed from the MSB).

    ``bit_at(v, w, 1)`` is the most significant bit.  Splitting a page on
    "the h-th bit" of a component uses exactly this accessor.
    """
    if not 1 <= position <= width:
        raise ValueError(f"bit position {position} outside 1..{width}")
    return (value >> (width - position)) & 1


def to_bitstring(value: int, width: int) -> str:
    """Render a ``width``-bit value as an MSB-first '0'/'1' string."""
    if width < 0:
        raise ValueError("width must be non-negative")
    if value < 0 or value > low_mask(width):
        raise ValueError(f"{value} does not fit in {width} bits")
    return format(value, f"0{width}b") if width else ""


def from_bitstring(bits: str) -> tuple[int, int]:
    """Parse an MSB-first '0'/'1' string into a ``(value, width)`` pair.

    This is how the paper's literal examples (e.g. the keys of Table 1,
    given as strings like ``"1110"``) enter the library.
    """
    if bits and set(bits) - {"0", "1"}:
        raise ValueError(f"not a bit string: {bits!r}")
    return (int(bits, 2) if bits else 0), len(bits)


#: Widest dimensionality served by the table-driven Morton fast path.
#: Each distinct d costs one 256-entry spread table plus a d x 256
#: gather wheel, built lazily on first use; past this bound a key is
#: exotic enough that the generic bit loop is acceptable and the table
#: memory is not.
_TABLE_DIMS = 64
_SPREAD_TABLES: "dict[int, tuple[int, ...]]" = {}
_GATHER_TABLES: "dict[int, tuple[tuple[int, ...], ...]]" = {}


def _spread_table(dims: int) -> "tuple[int, ...]":
    """256-entry table mapping a byte to its bits spread ``dims`` apart
    (bit ``i`` of the byte lands at bit ``dims * i``), built lazily."""
    table = _SPREAD_TABLES.get(dims)
    if table is None:
        table = tuple(
            sum(((byte >> i) & 1) << (dims * i) for i in range(8))
            for byte in range(256)
        )
        _SPREAD_TABLES[dims] = table
    return table


def _gather_tables(dims: int) -> "tuple[tuple[int, ...], ...]":
    """Per-offset compaction tables inverting :func:`_spread_table`.

    ``tables[off][byte]`` collects the bits of ``byte`` at positions
    ``off, off + dims, ...`` into a contiguous value.  The offset wheel
    is needed because 8 is not generally a multiple of ``dims``: the
    wanted-bit phase shifts from one byte of the input to the next.
    """
    tables = _GATHER_TABLES.get(dims)
    if tables is None:
        tables = tuple(
            tuple(
                sum(
                    ((byte >> pos) & 1) << t
                    for t, pos in enumerate(range(off, 8, dims))
                )
                for byte in range(256)
            )
            for off in range(dims)
        )
        _GATHER_TABLES[dims] = tables
    return tables


def _interleave_bytes(codes: "tuple[int, ...]", dims: int) -> int:
    """Equal-width Morton interleave, one table lookup per input byte."""
    table = _spread_table(dims)
    step = 8 * dims
    result = 0
    for j, code in enumerate(codes):
        spread = 0
        shift = 0
        while code:
            spread |= table[code & 0xFF] << shift
            code >>= 8
            shift += step
        result |= spread << (dims - 1 - j)
    return result


def _deinterleave_bytes(value: int, dims: int, width: int) -> "tuple[int, ...]":
    """Invert :func:`_interleave_bytes` via the per-offset gather wheel."""
    tables = _gather_tables(dims)
    codes = []
    for j in range(dims):
        lane = value >> (dims - 1 - j)
        code = 0
        k = 0
        while lane:
            off = (-8 * k) % dims
            code |= tables[off][lane & 0xFF] << ((8 * k + dims - 1) // dims)
            lane >>= 8
            k += 1
        codes.append(code & low_mask(width))
    return tuple(codes)


def _interleave_segments(
    codes: "tuple[int, ...]", widths: "tuple[int, ...]"
) -> int:
    """Unequal-width interleave as a cascade of equal-width segments.

    For the first ``m = min(live widths)`` rounds every live dimension
    contributes a bit, which is exactly an equal-width interleave of
    each dimension's top ``m`` bits — one table pass.  Dimensions whose
    width is exhausted then drop out of the rotation (the split rule's
    exhausted-axis skipping) and the remaining suffixes recurse.  The
    cascade runs at most ``len(set(widths))`` table passes instead of
    one Python-loop iteration per bit.
    """
    live = [(code, width) for code, width in zip(codes, widths) if width > 0]
    result = 0
    while live:
        if len(live) == 1:
            code, width = live[0]
            return (result << width) | code
        m = min(width for _, width in live)
        heads = tuple(code >> (width - m) for code, width in live)
        result = (result << (m * len(live))) | _interleave_bytes(
            heads, len(live)
        )
        live = [
            (code & low_mask(width - m), width - m)
            for code, width in live
            if width > m
        ]
    return result


def _deinterleave_segments(
    value: int, widths: "tuple[int, ...]"
) -> "tuple[int, ...]":
    """Invert :func:`_interleave_segments` segment by segment."""
    codes = [0] * len(widths)
    remaining = list(widths)
    live = [j for j, width in enumerate(widths) if width > 0]
    total = sum(widths)
    consumed = 0
    while live:
        m = min(remaining[j] for j in live)
        dims = len(live)
        consumed += m * dims
        segment = (value >> (total - consumed)) & low_mask(m * dims)
        heads = (
            (segment,) if dims == 1
            else _deinterleave_bytes(segment, dims, m)
        )
        for j, head in zip(live, heads):
            codes[j] = (codes[j] << m) | head
            remaining[j] -= m
        live = [j for j in live if remaining[j] > 0]
    return tuple(codes)


def interleave(codes: "tuple[int, ...]", widths: "tuple[int, ...]") -> int:
    """Bit-interleave key components into one z-order value.

    The shuffle order follows the multidimensional splitting sequence:
    bit 1 of dimension 1, bit 1 of dimension 2, ..., bit 2 of dimension
    1, ... (dimensions whose width is exhausted drop out, mirroring the
    exhausted-axis skipping of the split rule).  Records sorted by this
    value visit the index's regions in contiguous runs — the locality
    order of Orenstein and Merrett, which the paper cites — making it
    the natural input order for streaming loads (and the batch order of
    the ``*_many`` executors).

    Keys of up to :data:`_TABLE_DIMS` dimensions take byte-at-a-time
    paths over precomputed spread tables — directly for equal widths,
    as a cascade of equal-width segments for unequal ones (exhausted
    axes drop out of the rotation at segment boundaries).  The generic
    bit loop remains as the reference and the exotic-``d`` fallback.
    """
    if len(codes) != len(widths):
        raise ValueError("one code per width required")
    dims = len(widths)
    if 1 <= dims <= _TABLE_DIMS:
        if min(widths) == max(widths):
            return _interleave_bytes(codes, dims)
        return _interleave_segments(codes, widths)
    result = 0
    for position in range(1, max(widths) + 1):
        for code, width in zip(codes, widths):
            if position <= width:
                result = (result << 1) | bit_at(code, width, position)
    return result


def deinterleave(value: int, widths: "tuple[int, ...]") -> "tuple[int, ...]":
    """Invert :func:`interleave`."""
    dims = len(widths)
    if 1 <= dims <= _TABLE_DIMS:
        if min(widths) == max(widths):
            return _deinterleave_bytes(value, dims, widths[0])
        return _deinterleave_segments(value, widths)
    total = sum(widths)
    codes = [0] * len(widths)
    consumed = 0
    for position in range(1, max(widths) + 1):
        for j, width in enumerate(widths):
            if position <= width:
                consumed += 1
                bit = (value >> (total - consumed)) & 1
                codes[j] |= bit << (width - position)
    return tuple(codes)


@dataclass(frozen=True)
class BitView:
    """An immutable ``(value, width)`` pair with the operations above.

    Used by tests, examples and pretty-printers; the hot index code paths
    use the module-level functions directly on unpacked ints.
    """

    value: int
    width: int

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ValueError("width must be non-negative")
        if not 0 <= self.value <= low_mask(self.width):
            raise ValueError(f"{self.value} does not fit in {self.width} bits")

    @classmethod
    def from_string(cls, bits: str) -> "BitView":
        return cls(*from_bitstring(bits))

    def g(self, depth: int) -> int:
        return g(self.value, self.width, depth)

    def strip(self, n: int) -> "BitView":
        return BitView(*strip(self.value, self.width, n))

    def bit(self, position: int) -> int:
        return bit_at(self.value, self.width, position)

    def __str__(self) -> str:
        return to_bitstring(self.value, self.width)
