"""Rendering the induced attribute-space partition (the paper's Fig. 5).

Two renderers over any scheme's ``leaf_regions()``:

* :func:`ascii_partition` — a character grid for small code domains
  (used by ``examples/paper_walkthrough.py`` to reproduce Figure 5);
* :func:`svg_partition` — a standalone SVG of the rectangles, shaded by
  refinement depth, for real-sized domains.  No plotting dependencies.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.interface import MultidimensionalIndex


def ascii_partition(
    index: MultidimensionalIndex,
    mark: Sequence[tuple[int, ...]] = (),
    max_cells: int = 4096,
) -> str:
    """Render a 2-d index's partition as a letter grid.

    Each page region gets a letter; ``mark`` positions (key tuples) are
    flagged with ``*``.  Only practical for tiny domains — the worked
    examples — so the code-point count is capped.
    """
    if index.dims != 2:
        raise ValueError("ASCII rendering is two-dimensional")
    w1, w2 = index.widths
    if (1 << w1) * (1 << w2) > max_cells:
        raise ValueError(
            f"domain too large to draw ({1 << w1} x {1 << w2} points)"
        )
    grid = [[" "] * (1 << w2) for _ in range(1 << w1)]
    labels: dict[int | None, str] = {}
    for region in index.leaf_regions():
        if region.page is None:
            label = "."
        else:
            label = labels.setdefault(
                region.page, chr(ord("a") + (len(labels) % 26))
            )
        lows, highs = region.bounds(index.widths)
        for x in range(lows[0], highs[0] + 1):
            for y in range(lows[1], highs[1] + 1):
                grid[x][y] = label
    marked = set(mark)
    lines = []
    for x in range(1 << w1):
        row = []
        for y in range(1 << w2):
            flag = "*" if (x, y) in marked else " "
            row.append(grid[x][y] + flag)
        lines.append(format(x, f"0{w1}b") + "  " + " ".join(row))
    header = "      " + " ".join(
        format(y, f"0{w2}b") for y in range(1 << w2)
    )
    return header + "\n" + "\n".join(lines)


def svg_partition(
    index: MultidimensionalIndex,
    path: str,
    size: int = 640,
    axes: tuple[int, int] = (0, 1),
) -> int:
    """Write the partition as an SVG file; returns the rectangle count.

    For ``dims > 2`` the projection onto ``axes`` is drawn (overlapping
    projected regions simply stack).  Rectangles are shaded by total
    refinement depth: darker means more refined, so skew is visible as a
    dark core — the visual content of the paper's Figures 5-7 story.
    """
    ax, ay = axes
    if ax == ay or max(ax, ay) >= index.dims:
        raise ValueError(f"bad projection axes {axes}")
    wx, wy = index.widths[ax], index.widths[ay]
    span_x, span_y = float(1 << wx), float(1 << wy)
    regions = list(index.leaf_regions())
    deepest = max((sum(r.depths) for r in regions), default=1) or 1
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
    ]
    count = 0
    for region in regions:
        lows, highs = region.bounds(index.widths)
        x = lows[ax] / span_x * size
        y = lows[ay] / span_y * size
        width = (highs[ax] - lows[ax] + 1) / span_x * size
        height = (highs[ay] - lows[ay] + 1) / span_y * size
        shade = 255 - int(200 * sum(region.depths) / deepest)
        fill = (
            "none" if region.page is None
            else f"rgb({shade},{shade},255)"
        )
        parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{width:.2f}" '
            f'height="{height:.2f}" fill="{fill}" '
            'stroke="black" stroke-width="0.5"/>'
        )
        count += 1
    parts.append("</svg>")
    with open(path, "w", encoding="utf-8") as out:
        out.write("\n".join(parts))
    return count
