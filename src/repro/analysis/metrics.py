"""The paper's §5 performance measures.

Definitions, verbatim from the paper:

* λ  — average disk reads per *successful* exact-match search;
* λ′ — average disk reads per *unsuccessful* exact-match search;
* ρ  — average disk accesses (reads + writes) per key insertion,
       averaged over the last 10% of insertions (the paper: the last
       4,000 of 40,000);
* σ  — directory size in elements after all insertions (node count ×
       2^φ reserved slots for the tree schemes);
* α  — load factor: keys stored / (data pages × b).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import KeyNotFoundError
from repro.core.interface import KeyCodes, MultidimensionalIndex


@dataclasses.dataclass
class RunMetrics:
    """Measured values of one (scheme, workload, b) experiment cell."""

    scheme: str
    page_capacity: int
    keys_inserted: int
    successful_search_reads: float  # λ
    unsuccessful_search_reads: float  # λ′
    insertion_accesses: float  # ρ
    load_factor: float  # α
    directory_size: int  # σ
    data_pages: int
    insert_seconds: float = 0.0
    extra: dict = dataclasses.field(default_factory=dict)

    def as_row(self) -> dict:
        return {
            "scheme": self.scheme,
            "b": self.page_capacity,
            "lambda": self.successful_search_reads,
            "lambda_prime": self.unsuccessful_search_reads,
            "rho": self.insertion_accesses,
            "alpha": self.load_factor,
            "sigma": self.directory_size,
        }


@dataclasses.dataclass
class GrowthSeries:
    """Directory size sampled while keys stream in (Figures 6 and 7)."""

    scheme: str
    checkpoints: list[int] = dataclasses.field(default_factory=list)
    directory_sizes: list[int] = dataclasses.field(default_factory=list)

    def record(self, inserted: int, sigma: int) -> None:
        self.checkpoints.append(inserted)
        self.directory_sizes.append(sigma)


def measure_search_cost(
    index: MultidimensionalIndex, probes: Sequence[KeyCodes]
) -> float:
    """λ: mean charged reads per successful search over ``probes``."""
    if not probes:
        return 0.0
    before = index.store.stats.snapshot()
    for key in probes:
        index.search(key)
    return index.store.stats.delta(before).reads / len(probes)


class AbsentSearchCost(float):
    """λ′ with the probe provenance attached.

    Behaves as a plain float; :attr:`probe_mix` records how many probes
    came from the workload-distributed candidate pool versus uniform
    padding, so a report can state which distribution λ′ was measured
    under.
    """

    probe_mix: dict

    def __new__(cls, value: float, probe_mix: dict) -> "AbsentSearchCost":
        cost = super().__new__(cls, value)
        cost.probe_mix = dict(probe_mix)
        return cost


def measure_unsuccessful_search_cost(
    index: MultidimensionalIndex,
    present: Iterable[KeyCodes],
    count: int = 2000,
    seed: int = 7,
    candidates: Sequence[KeyCodes] | None = None,
    pad_uniform: bool = False,
) -> AbsentSearchCost:
    """λ′: mean charged reads per search for keys known to be absent.

    With ``candidates`` the absent probes are drawn from that pool
    (e.g. extra keys from the experiment's own workload generator, so
    unsuccessful searches are distributed like the data — the natural
    reading of the paper's protocol).  Otherwise probes are uniform over
    the code domain.

    An exhausted candidate pool raises: silently topping up with uniform
    probes would skew λ′ away from the workload distribution the caller
    asked for.  Pass ``pad_uniform=True`` to accept mixed provenance —
    the returned cost's ``probe_mix`` records the exact split either way.
    """
    rng = np.random.default_rng(seed)
    present_set = set(present)
    widths = index.widths
    probes: list[KeyCodes] = []
    if candidates is not None:
        for key in candidates:
            if key not in present_set:
                probes.append(key)
            if len(probes) >= count:
                break
        if len(probes) < count and not pad_uniform:
            raise ValueError(
                f"absent-probe pool exhausted: {len(probes)} of {count} "
                "requested probes available; pass pad_uniform=True to top "
                "up with uniform probes (changes the probe distribution)"
            )
    from_candidates = len(probes)
    while len(probes) < count:
        key = tuple(int(rng.integers(0, 1 << w)) for w in widths)
        if key not in present_set:
            probes.append(key)
    if not probes:
        raise ValueError("no absent probes available")
    before = index.store.stats.snapshot()
    for key in probes:
        try:
            index.search(key)
        except KeyNotFoundError:
            pass
        else:  # pragma: no cover - would indicate a probe-generation bug
            raise AssertionError("unsuccessful probe found a record")
    mix = {
        "candidates": from_candidates,
        "uniform": len(probes) - from_candidates,
    }
    return AbsentSearchCost(
        index.store.stats.delta(before).reads / len(probes), mix
    )


def measure_run(
    index: MultidimensionalIndex,
    keys: Sequence[KeyCodes],
    tail_fraction: float = 0.1,
    search_probes: int = 2000,
    growth_checkpoints: int = 0,
    values: Callable[[int], object] | None = None,
    absent_candidates: Sequence[KeyCodes] | None = None,
    absent_pad_uniform: bool = False,
) -> tuple[RunMetrics, GrowthSeries]:
    """Run the paper's experiment protocol on one index.

    Inserts ``keys`` in order, measuring ρ over the final
    ``tail_fraction`` of insertions, then probes λ and λ′ on the final
    structure.  With ``growth_checkpoints > 0`` the directory size is
    sampled that many times along the way (for Figures 6/7), and the
    terminal ``(n, σ)`` point is always recorded even when ``n`` is not
    a multiple of the sampling step — the curves must end at ``n``.
    """
    import time

    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must be in (0, 1]")
    store = index.store
    n = len(keys)
    tail_start = int(n * (1.0 - tail_fraction))
    series = GrowthSeries(type(index).__name__)
    step = max(n // growth_checkpoints, 1) if growth_checkpoints else 0
    snapshot = store.stats.snapshot()
    started = time.perf_counter()
    for i, key in enumerate(keys):
        if i == tail_start:
            snapshot = store.stats.snapshot()
        index.insert(key, values(i) if values else None)
        if step and (i + 1) % step == 0:
            series.record(i + 1, index.directory_size)
    if step and (not series.checkpoints or series.checkpoints[-1] != n):
        series.record(n, index.directory_size)
    insert_seconds = time.perf_counter() - started
    rho = store.stats.delta(snapshot).accesses / max(n - tail_start, 1)

    rng = np.random.default_rng(1234)
    sample_size = min(search_probes, n)
    picks = rng.choice(n, size=sample_size, replace=False)
    lam = measure_search_cost(index, [keys[i] for i in picks])
    lam_prime = measure_unsuccessful_search_cost(
        index,
        keys,
        count=sample_size,
        candidates=absent_candidates,
        pad_uniform=absent_pad_uniform,
    )

    extra: dict = {"absent_probe_mix": lam_prime.probe_mix}
    if hasattr(index, "height"):
        extra["height"] = index.height()
    if hasattr(index, "node_count"):
        extra["nodes"] = index.node_count
    metrics = RunMetrics(
        scheme=type(index).__name__,
        page_capacity=index.page_capacity,
        keys_inserted=n,
        successful_search_reads=lam,
        unsuccessful_search_reads=float(lam_prime),
        insertion_accesses=rho,
        load_factor=index.load_factor,
        directory_size=index.directory_size,
        data_pages=index.data_page_count,
        insert_seconds=insert_seconds,
        extra=extra,
    )
    return metrics, series
