"""Attribute-space partition analysis (the paper's Figure 5 and
Theorem 4's ``n_R``).

Every scheme rectilinearly tiles the code hypercube into leaf regions;
this module extracts the tiling, verifies it is exact (disjoint and
covering — a strong global invariant over any index state), and counts
the cells overlapping a query box.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.interface import KeyCodes, LeafRegion, MultidimensionalIndex


def partition_cells(index: MultidimensionalIndex) -> list[LeafRegion]:
    """The index's leaf regions as a list (uncharged reads)."""
    return list(index.leaf_regions())


def _dyadic_overlap(a: LeafRegion, b: LeafRegion) -> bool:
    """Exact overlap test for bit-aligned regions: on each dimension the
    intervals are dyadic, so they intersect iff the shorter prefix is a
    prefix of the longer."""
    for pa, da, pb, db in zip(a.prefixes, a.depths, b.prefixes, b.depths):
        short, long_, shift = (
            (pa, pb, db - da) if da <= db else (pb, pa, da - db)
        )
        if long_ >> shift != short:
            return False
    return True


def assert_exact_tiling(
    index: MultidimensionalIndex, pairwise_limit: int = 4000
) -> list[LeafRegion]:
    """Check the leaf regions tile the attribute space exactly.

    Coverage is verified by an exact volume argument (rectangle volumes
    must sum to the domain's point count) plus pairwise disjointness of
    the dyadic rectangles.  The quadratic disjointness pass is skipped
    above ``pairwise_limit`` cells; there the volume identity together
    with region uniqueness is the (still very strong) check.
    """
    widths = index.widths
    cells = partition_cells(index)
    domain = 1
    for width in widths:
        domain <<= width
    total = sum(cell.volume(widths) for cell in cells)
    assert total == domain, (
        f"partition volumes sum to {total}, domain has {domain} points"
    )
    seen: set[tuple] = set()
    for cell in cells:
        key = (cell.prefixes, cell.depths)
        assert key not in seen, f"duplicate region {key}"
        seen.add(key)
    if len(cells) <= pairwise_limit:
        for i, a in enumerate(cells):
            for b in cells[i + 1 :]:
                assert not _dyadic_overlap(a, b), (
                    f"regions overlap: {a} and {b}"
                )
    return cells


def covering_cells(
    index: MultidimensionalIndex,
    lows: Sequence[int],
    highs: Sequence[int],
) -> int:
    """Theorem 4's ``n_R``: leaf regions intersecting the query box."""
    widths = index.widths
    count = 0
    for cell in index.leaf_regions():
        cell_lows, cell_highs = cell.bounds(widths)
        if all(
            cell_lows[j] <= highs[j] and cell_highs[j] >= lows[j]
            for j in range(len(widths))
        ):
            count += 1
    return count


def occupancy_histogram(index: MultidimensionalIndex) -> dict[int, int]:
    """Histogram of records per data page (0 counts NIL regions), a
    quick view of the load balance behind the paper's α."""
    histogram: dict[int, int] = {}
    for cell in index.leaf_regions():
        if cell.page is None:
            histogram[0] = histogram.get(0, 0) + 1
        else:
            size = len(index.store.peek(cell.page))
            histogram[size] = histogram.get(size, 0) + 1
    return histogram
