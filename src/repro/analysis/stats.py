"""Descriptive statistics over a built index.

Complements the paper's five aggregate measures with distributions: how
deep the regions sit, how full the pages and directory nodes are, and
how region volumes spread — the raw material behind α, σ and the search
costs.  Used by the CLI's ``stats`` command and the test suite.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Any

from repro.core.interface import MultidimensionalIndex


@dataclasses.dataclass
class DirectorySummary:
    """One-stop structural summary of an index."""

    scheme: str
    keys: int
    dims: int
    page_capacity: int
    data_pages: int
    load_factor: float
    directory_size: int
    regions: int
    nil_regions: int
    height: int | None
    region_depth_min: int
    region_depth_max: int
    region_depth_mean: float

    def as_lines(self) -> list[str]:
        lines = [
            f"scheme          : {self.scheme}",
            f"keys            : {self.keys}",
            f"data pages      : {self.data_pages} (b = {self.page_capacity},"
            f" alpha = {self.load_factor:.3f})",
            f"directory size  : {self.directory_size} elements",
            f"leaf regions    : {self.regions} ({self.nil_regions} NIL)",
            f"region depth    : {self.region_depth_min}"
            f"..{self.region_depth_max}"
            f" (mean {self.region_depth_mean:.2f} bits)",
        ]
        if self.height is not None:
            lines.append(f"tree height     : {self.height}")
        return lines


def summarize(index: MultidimensionalIndex) -> DirectorySummary:
    """Collect a :class:`DirectorySummary` (uncharged reads)."""
    depths = []
    nil = 0
    for region in index.leaf_regions():
        depths.append(sum(region.depths))
        if region.page is None:
            nil += 1
    height = index.height() if hasattr(index, "height") else None
    return DirectorySummary(
        scheme=type(index).__name__,
        keys=len(index),
        dims=index.dims,
        page_capacity=index.page_capacity,
        data_pages=index.data_page_count,
        load_factor=index.load_factor,
        directory_size=index.directory_size,
        regions=len(depths),
        nil_regions=nil,
        height=height,
        region_depth_min=min(depths) if depths else 0,
        region_depth_max=max(depths) if depths else 0,
        region_depth_mean=sum(depths) / len(depths) if depths else 0.0,
    )


def region_depth_histogram(index: MultidimensionalIndex) -> dict[int, int]:
    """Regions per total depth (bits) — the refinement profile; skewed
    data shows a long deep tail here."""
    histogram: Counter[int] = Counter()
    for region in index.leaf_regions():
        histogram[sum(region.depths)] += 1
    return dict(sorted(histogram.items()))


def page_fill_histogram(index: MultidimensionalIndex) -> dict[int, int]:
    """Pages per record count; its mean/b is the paper's α."""
    histogram: Counter[int] = Counter()
    for region in index.leaf_regions():
        if region.page is not None:
            histogram[len(index.store.peek(region.page))] += 1
    return dict(sorted(histogram.items()))


def node_level_profile(tree: Any) -> dict[int, dict[str, float]]:
    """Per-level directory statistics for the tree schemes: node count,
    mean allocated cells, and mean distinct regions per node."""
    profile: dict[int, list[tuple[int, int]]] = {}

    def walk(node_id: int, depth: int) -> None:
        node = tree.store.peek(node_id)
        cells = len(node.array)
        regions = len(list(node.entries()))
        profile.setdefault(depth, []).append((cells, regions))
        for entry in node.entries():
            if entry.is_node:
                walk(entry.ptr, depth + 1)

    walk(tree.root_id, 1)
    return {
        depth: {
            "nodes": len(rows),
            "mean_cells": sum(c for c, _ in rows) / len(rows),
            "mean_regions": sum(r for _, r in rows) / len(rows),
        }
        for depth, rows in sorted(profile.items())
    }


def format_histogram(histogram: dict[int, int], width: int = 40) -> str:
    """Render a small ASCII bar chart of an int->count histogram."""
    if not histogram:
        return "(empty)"
    peak = max(histogram.values())
    lines = []
    for bucket, count in histogram.items():
        bar = "#" * max(1, round(count / peak * width))
        lines.append(f"{bucket:>4} | {bar} {count}")
    return "\n".join(lines)
