"""The paper's theorems as executable formulas.

These back the property tests and the worst-case benchmark: measured
behaviour must stay within the stated bounds.
"""

from __future__ import annotations

import math


def max_tree_levels(total_width: int, phi: int) -> int:
    """§3.1: a BMEH-tree addressing at most ``w`` bits with ``φ`` bits
    per node has at most ``ceil(w / φ)`` directory levels."""
    if total_width < 1 or phi < 1:
        raise ValueError("widths and phi must be positive")
    return -(-total_width // phi)


def theorem2_worst_case_splits(total_width: int, phi: int) -> int:
    """Theorem 2: worst-case directory node splits for one insertion.

    With ``l = ceil(w/φ)`` levels, the adversarial insertion (all keys
    agreeing on the first ``w-1`` bits) creates at most
    ``l(l-1)/2 * φ + l`` nodes' worth of splits.
    """
    levels = max_tree_levels(total_width, phi)
    return levels * (levels - 1) // 2 * phi + levels

def theorem3_access_bound(total_width: int, phi: int) -> int:
    """Theorem 3: worst-case directory node accesses per insertion is
    ``O(φ l²)``.  The concrete envelope used by the tests charges every
    worst-case split (Theorem 2) one read and one write plus one root-to-
    leaf traversal — comfortably inside the asymptotic claim."""
    levels = max_tree_levels(total_width, phi)
    return 2 * theorem2_worst_case_splits(total_width, phi) + levels


def theorem4_range_bound(covering_cells: int, total_width: int, phi: int) -> int:
    """Theorem 4: a partial-range query covered by ``n_R`` rectangular
    cells costs ``O(l * n_R)`` disk accesses."""
    if covering_cells < 0:
        raise ValueError("covering_cells must be non-negative")
    return max_tree_levels(total_width, phi) * max(covering_cells, 1)


def onelevel_directory_growth_exponent(page_capacity: int) -> float:
    """§2.1 quotes the classic analyses (Flajolet; Mendelson): the
    one-level directory grows superlinearly as ``N^(1 + 1/b)``."""
    if page_capacity < 1:
        raise ValueError("page capacity must be positive")
    return 1.0 + 1.0 / page_capacity


def expected_onelevel_directory_size(
    n: int, page_capacity: int, constant: float = 1.0
) -> float:
    """The asymptotic envelope ``C * N^(1+1/b)`` for uniform keys.

    Used as an overlay in the Figure 6/7 reports; the constant is
    workload-dependent, the exponent is the analytic content.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return constant * n ** onelevel_directory_growth_exponent(page_capacity)


def doubling_count(directory_size: int) -> int:
    """Number of directory doublings a one-level directory of the given
    element count has undergone (it is always a power of two)."""
    if directory_size < 1:
        raise ValueError("directory size must be positive")
    if directory_size & (directory_size - 1):
        raise ValueError("one-level directory sizes are powers of two")
    return int(math.log2(directory_size))
