"""Measurement, theory and attribute-space analysis for the experiments."""

from repro.analysis.metrics import (
    AbsentSearchCost,
    RunMetrics,
    GrowthSeries,
    measure_run,
    measure_search_cost,
    measure_unsuccessful_search_cost,
)
from repro.analysis.theory import (
    max_tree_levels,
    theorem2_worst_case_splits,
    theorem3_access_bound,
    theorem4_range_bound,
    onelevel_directory_growth_exponent,
    expected_onelevel_directory_size,
)
from repro.analysis.space import (
    partition_cells,
    assert_exact_tiling,
    covering_cells,
    occupancy_histogram,
)
from repro.analysis.stats import (
    DirectorySummary,
    summarize,
    region_depth_histogram,
    page_fill_histogram,
    node_level_profile,
    format_histogram,
)
from repro.analysis.visualize import ascii_partition, svg_partition

__all__ = [
    "AbsentSearchCost",
    "RunMetrics",
    "GrowthSeries",
    "measure_run",
    "measure_search_cost",
    "measure_unsuccessful_search_cost",
    "max_tree_levels",
    "theorem2_worst_case_splits",
    "theorem3_access_bound",
    "theorem4_range_bound",
    "onelevel_directory_growth_exponent",
    "expected_onelevel_directory_size",
    "partition_cells",
    "assert_exact_tiling",
    "covering_cells",
    "occupancy_histogram",
    "DirectorySummary",
    "summarize",
    "region_depth_histogram",
    "page_fill_histogram",
    "node_level_profile",
    "format_histogram",
    "ascii_partition",
    "svg_partition",
]
