"""The K-D-B-tree of Robinson (SIGMOD 1981).

The paper's acknowledged structural ancestor: "The method integrates the
concepts of MDEH and the K-D-B-tree of Robinson" (§1), and the BMEH
node-split-with-downward-cuts is exactly Robinson's region splitting.
This is the dyadic-midpoint variant — split planes bisect a region's
box — so its regions live in the same prefix algebra as every other
scheme here and the shared analysis tooling applies.
"""

from repro.kdb.kdbtree import KDBTree

__all__ = ["KDBTree"]
