"""A K-D-B-tree over pseudo-key codes (dyadic-midpoint splits).

Structure (Robinson 1981):

* **point pages** (leaves) hold up to ``b`` records;
* **region pages** (internal) hold ``(box, child)`` entries — the boxes
  tile the page's own region exactly;
* a full point page splits on a plane (here: the dyadic midpoint of its
  box on the cyclically next dimension, the same rule as the hashing
  schemes); a full region page splits the same way, and child regions
  *crossing* the plane are split downward recursively;
* only a root split adds a level, so all point pages sit at the same
  depth — the balance idea the BMEH-tree borrows.

Deletion removes the record and drops emptied point pages to NIL
entries; Robinson's full reorganization (merging region pages) is out of
scope, as in most K-D-B implementations.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Sequence

from repro.bits import bit_at, low_mask
from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.storage import DataPage, PageStore
from repro.core.interface import (
    KeyCodes,
    LeafRegion,
    MultidimensionalIndex,
    Record,
)


class _Box:
    """A dyadic axis-aligned box (inclusive bounds)."""

    __slots__ = ("lows", "highs")

    def __init__(self, lows: tuple[int, ...], highs: tuple[int, ...]):
        self.lows = lows
        self.highs = highs

    def contains(self, codes: Sequence[int]) -> bool:
        return all(
            lo <= c <= hi for lo, c, hi in zip(self.lows, codes, self.highs)
        )

    def intersects(self, lows: Sequence[int], highs: Sequence[int]) -> bool:
        return all(
            self.lows[j] <= highs[j] and self.highs[j] >= lows[j]
            for j in range(len(self.lows))
        )

    def halves(self, dim: int) -> tuple["_Box", "_Box"]:
        midpoint = (self.lows[dim] + self.highs[dim] + 1) // 2
        low_high = tuple(
            midpoint - 1 if j == dim else h for j, h in enumerate(self.highs)
        )
        high_low = tuple(
            midpoint if j == dim else lo for j, lo in enumerate(self.lows)
        )
        return _Box(self.lows, low_high), _Box(high_low, self.highs)

    def side_of(self, dim: int, midpoint: int) -> int | None:
        """0 if entirely below the plane, 1 if entirely above, None if
        the box crosses it."""
        if self.highs[dim] < midpoint:
            return 0
        if self.lows[dim] >= midpoint:
            return 1
        return None

    def span_bits(self, dim: int) -> int:
        return (self.highs[dim] - self.lows[dim] + 1).bit_length() - 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Box({self.lows}..{self.highs})"


class _Entry:
    """One (box, child) slot of a region page."""

    __slots__ = ("box", "ptr", "is_region", "m")

    def __init__(self, box: _Box, ptr: int | None, is_region: bool, m: int):
        self.box = box
        self.ptr = ptr
        self.is_region = is_region
        self.m = m


class _RegionPage:
    """An internal page: a list of box entries tiling its own box."""

    __slots__ = ("entries", "level")

    def __init__(self, level: int):
        self.entries: list[_Entry] = []
        self.level = level

    def locate(self, codes: Sequence[int]) -> _Entry:
        for entry in self.entries:
            if entry.box.contains(codes):
                return entry
        raise AssertionError(f"region page does not cover {codes}")


class RegionPageCodec:
    """Byte image for K-D-B region pages (v2, tag 0x13):
    ``u8 format-version | u8 level | u16 count | u8 dims`` then per
    entry ``dims*u64 lows | dims*u64 highs | i64 ptr | u8 is_region |
    u8 m``.  Decodes over a ``memoryview`` without copying the slot;
    the pre-version-byte tag 0x03 layout stays readable through
    :class:`LegacyRegionPageCodec`."""

    tag = 0x13
    _versioned = True
    _FORMAT_VERSION = 1

    def handles(self, obj: object) -> bool:
        return isinstance(obj, _RegionPage)

    def encode_body(self, page: "_RegionPage") -> bytes:
        import struct

        dims = len(page.entries[0].box.lows) if page.entries else 0
        parts = [
            b"\x01" if self._versioned else b"",
            struct.pack("<BHB", page.level, len(page.entries), dims),
        ]
        record = struct.Struct(f"<{dims}Q{dims}QqBB")
        for entry in page.entries:
            ptr = -1 if entry.ptr is None else entry.ptr
            parts.append(
                record.pack(
                    *entry.box.lows, *entry.box.highs,
                    ptr, int(entry.is_region), entry.m,
                )
            )
        return b"".join(parts)

    def decode_body(self, data: "bytes | memoryview") -> "_RegionPage":
        import struct

        from repro.errors import SerializationError

        try:
            offset = 0
            if self._versioned:
                if data[0] != self._FORMAT_VERSION:
                    raise SerializationError(
                        f"unsupported region page format version {data[0]}"
                    )
                offset = 1
            level, count, dims = struct.unpack_from("<BHB", data, offset)
            offset += struct.calcsize("<BHB")
            page = _RegionPage(level)
            record = struct.Struct(f"<{dims}Q{dims}QqBB")
            for _ in range(count):
                fields = record.unpack_from(data, offset)
                offset += record.size
                lows = fields[:dims]
                highs = fields[dims : 2 * dims]
                ptr, is_region, m = fields[2 * dims :]
                page.entries.append(
                    _Entry(
                        _Box(tuple(lows), tuple(highs)),
                        None if ptr < 0 else ptr,
                        bool(is_region),
                        m,
                    )
                )
            return page
        except (struct.error, IndexError) as exc:
            raise SerializationError(f"corrupt region page: {exc}") from exc


class LegacyRegionPageCodec(RegionPageCodec):
    """Decode-only support for pre-version-byte region images (tag 0x03)."""

    tag = 0x03
    _versioned = False

    def handles(self, obj: object) -> bool:
        return False  # encode always uses the current format


class KDBTree(MultidimensionalIndex):
    """Robinson's K-D-B-tree with dyadic-midpoint split planes.

    Args:
        region_capacity: entries per region page (the directory fanout;
            64 by default, the same page budget as a BMEH node).
    """

    def __init__(
        self,
        dims: int,
        page_capacity: int,
        widths: Sequence[int] | int = 32,
        store: PageStore | None = None,
        region_capacity: int = 64,
    ) -> None:
        super().__init__(dims, page_capacity, widths, store)
        if region_capacity < 2:
            raise ValueError("region pages need capacity >= 2")
        self._fanout = region_capacity
        root = _RegionPage(level=1)
        root.entries.append(
            _Entry(self._domain_box(), None, False, dims - 1)
        )
        self._root_id = self._store.allocate(root)
        self._store.pin(self._root_id)
        self._region_pages = 1
        self._data_pages = 0

    def _domain_box(self) -> _Box:
        return _Box(
            (0,) * self._dims,
            tuple(low_mask(w) for w in self._widths),
        )

    # -- state ---------------------------------------------------------------

    @property
    def region_page_count(self) -> int:
        return self._region_pages

    @property
    def fanout(self) -> int:
        return self._fanout

    @property
    def directory_size(self) -> int:
        """Reserved directory slots: region pages × fanout (comparable
        with the node-based σ of the tree hashing schemes)."""
        return self._region_pages * self._fanout

    @property
    def data_page_count(self) -> int:
        return self._data_pages

    @property
    def root_id(self) -> int:
        return self._root_id

    def height(self) -> int:
        height = 1
        page = self._store.peek(self._root_id)
        while page.entries and page.entries[0].is_region:
            height += 1
            page = self._store.peek(page.entries[0].ptr)
        return height

    # -- descent ---------------------------------------------------------------

    def _descend(self, codes: KeyCodes) -> list[tuple[int, _RegionPage, _Entry]]:
        path = []
        page_id = self._root_id
        while True:
            page = self._store.read(page_id)
            entry = page.locate(codes)
            path.append((page_id, page, entry))
            if not entry.is_region:
                return path
            page_id = entry.ptr

    # -- operations ----------------------------------------------------------

    def search(self, key: Sequence[int]) -> Any:
        codes = self._check_key(key)
        with self._store.operation():
            entry = self._descend(codes)[-1][2]
            if entry.ptr is None:
                raise KeyNotFoundError(f"key {codes} not found")
            return self._store.read(entry.ptr).get(codes)

    def insert(self, key: Sequence[int], value: Any = None) -> None:
        codes = self._check_key(key)
        with self._store.operation():
            while True:
                path = self._descend(codes)
                leaf_id, leaf, entry = path[-1]
                if entry.ptr is None:
                    entry.ptr = self._store.allocate(
                        DataPage(self._page_capacity)
                    )
                    self._data_pages += 1
                    self._store.write(leaf_id, leaf)
                page = self._store.read(entry.ptr)
                if codes in page:
                    raise DuplicateKeyError(f"key {codes} already present")
                if not page.is_full:
                    page.put(codes, value)
                    self._store.write(entry.ptr, page)
                    self._num_keys += 1
                    return
                self._split_point_entry(path)

    def _split_point_entry(self, path) -> None:
        """Split a full point page and register the halves upward."""
        leaf_id, leaf, entry = path[-1]
        total_depths = [
            self._widths[j] - entry.box.span_bits(j)
            for j in range(self._dims)
        ]
        m = self._next_split_dim(entry.m, total_depths)
        low_box, high_box = entry.box.halves(m)
        page = self._store.read(entry.ptr)
        sibling = self._split_page(page, m, total_depths[m] + 1)
        low_ptr: int | None = entry.ptr
        high_ptr: int | None = None
        if len(page) == 0:
            self._store.free(entry.ptr)
            self._data_pages -= 1
            low_ptr = None
        else:
            self._store.write(entry.ptr, page)
        if len(sibling) > 0:
            high_ptr = self._store.allocate(sibling)
            self._data_pages += 1
        replacement = [
            _Entry(low_box, low_ptr, False, m),
            _Entry(high_box, high_ptr, False, m),
        ]
        leaf.entries.remove(entry)
        leaf.entries.extend(replacement)
        self._store.write(leaf_id, leaf)
        self._overflow_chain(path)

    def _overflow_chain(self, path) -> None:
        """Split region pages bottom-up while they exceed the fanout."""
        for depth in range(len(path) - 1, -1, -1):
            page_id, page, _entry = path[depth]
            if len(page.entries) <= self._fanout:
                return
            box = self._page_box(path, depth)
            m = self._region_split_dim(page, box)
            low_box, high_box = box.halves(m)
            midpoint = high_box.lows[m]
            low = _RegionPage(page.level)
            high = _RegionPage(page.level)
            for entry in page.entries:
                side = entry.box.side_of(m, midpoint)
                if side == 0:
                    low.entries.append(entry)
                elif side == 1:
                    high.entries.append(entry)
                else:
                    self._cut_entry(entry, m, midpoint, low, high)
            self._store.write(page_id, low)
            high_id = self._store.allocate(high)
            self._region_pages += 1
            if depth == 0:
                new_root = _RegionPage(level=page.level + 1)
                new_root.entries.append(_Entry(low_box, page_id, True, m))
                new_root.entries.append(_Entry(high_box, high_id, True, m))
                new_root_id = self._store.allocate(new_root)
                self._region_pages += 1
                self._store.unpin(page_id)
                self._store.pin(new_root_id)
                self._root_id = new_root_id
                return
            parent_id, parent, _ = path[depth - 1]
            old = next(e for e in parent.entries if e.ptr == page_id)
            parent.entries.remove(old)
            parent.entries.append(_Entry(low_box, page_id, True, m))
            parent.entries.append(_Entry(high_box, high_id, True, m))
            self._store.write(parent_id, parent)

    def _page_box(self, path, depth: int) -> _Box:
        if depth == 0:
            return self._domain_box()
        return path[depth - 1][2].box

    def _region_split_dim(self, page: _RegionPage, box: _Box) -> int:
        """Cyclic split dimension for a region page, preferring an axis
        whose plane crosses the fewest child boxes."""
        best = None
        for j in range(self._dims):
            if box.span_bits(j) == 0:
                continue
            midpoint = (box.lows[j] + box.highs[j] + 1) // 2
            crossings = sum(
                1 for e in page.entries if e.box.side_of(j, midpoint) is None
            )
            if best is None or crossings < best[0]:
                best = (crossings, j)
        if best is None:
            from repro.errors import CapacityError

            raise CapacityError("region box cannot be split further")
        return best[1]

    def _cut_entry(
        self, entry: _Entry, m: int, midpoint: int,
        low: _RegionPage, high: _RegionPage,
    ) -> None:
        """Robinson's downward split of a child crossing the plane."""
        low_box, high_box = entry.box.halves(m)
        assert high_box.lows[m] == midpoint, "plane misaligned with box"
        if entry.ptr is None:
            low.entries.append(_Entry(low_box, None, False, entry.m))
            high.entries.append(_Entry(high_box, None, False, entry.m))
            return
        if not entry.is_region:
            page = self._store.read(entry.ptr)
            position = self._widths[m] - entry.box.span_bits(m) + 1
            sibling = self._split_page(page, m, position)
            low_ptr: int | None = entry.ptr
            high_ptr: int | None = None
            if len(page) == 0:
                self._store.free(entry.ptr)
                self._data_pages -= 1
                low_ptr = None
            else:
                self._store.write(entry.ptr, page)
            if len(sibling) > 0:
                high_ptr = self._store.allocate(sibling)
                self._data_pages += 1
            low.entries.append(_Entry(low_box, low_ptr, False, entry.m))
            high.entries.append(_Entry(high_box, high_ptr, False, entry.m))
            return
        child = self._store.read(entry.ptr)
        child_low = _RegionPage(child.level)
        child_high = _RegionPage(child.level)
        for sub in child.entries:
            side = sub.box.side_of(m, midpoint)
            if side == 0:
                child_low.entries.append(sub)
            elif side == 1:
                child_high.entries.append(sub)
            else:
                self._cut_entry(sub, m, midpoint, child_low, child_high)
        self._store.write(entry.ptr, child_low)
        high_id = self._store.allocate(child_high)
        self._region_pages += 1
        low.entries.append(_Entry(low_box, entry.ptr, True, entry.m))
        high.entries.append(_Entry(high_box, high_id, True, entry.m))

    def delete(self, key: Sequence[int]) -> Any:
        codes = self._check_key(key)
        with self._store.operation():
            path = self._descend(codes)
            leaf_id, leaf, entry = path[-1]
            if entry.ptr is None:
                raise KeyNotFoundError(f"key {codes} not found")
            page = self._store.read(entry.ptr)
            value = page.remove(codes)
            self._num_keys -= 1
            if len(page) == 0:
                self._store.free(entry.ptr)
                self._data_pages -= 1
                entry.ptr = None
                self._store.write(leaf_id, leaf)
            else:
                self._store.write(entry.ptr, page)
            return value

    def range_search(
        self, lows: Sequence[int], highs: Sequence[int]
    ) -> Iterator[Record]:
        lows = self._check_key(lows)
        highs = self._check_key(highs)
        if any(lo > hi for lo, hi in zip(lows, highs)):
            return
        with self._store.operation():
            yield from self._range_page(self._root_id, lows, highs)

    def _range_page(self, page_id, lows, highs) -> Iterator[Record]:
        page = self._store.read(page_id)
        for entry in page.entries:
            if entry.ptr is None or not entry.box.intersects(lows, highs):
                continue
            if entry.is_region:
                yield from self._range_page(entry.ptr, lows, highs)
            else:
                for codes, value in self._store.read(entry.ptr).items():
                    if all(
                        lows[j] <= codes[j] <= highs[j]
                        for j in range(self._dims)
                    ):
                        yield codes, value

    def items(self) -> Iterator[Record]:
        with self._store.operation():
            yield from self._items_under(self._root_id)

    def _items_under(self, page_id) -> Iterator[Record]:
        page = self._store.read(page_id)
        for entry in page.entries:
            if entry.ptr is None:
                continue
            if entry.is_region:
                yield from self._items_under(entry.ptr)
            else:
                yield from self._store.read(entry.ptr).items()

    # -- introspection -----------------------------------------------------------

    def leaf_regions(self) -> Iterator[LeafRegion]:
        yield from self._leaves_under(self._root_id)

    def _leaves_under(self, page_id) -> Iterator[LeafRegion]:
        page = self._store.peek(page_id)
        for entry in page.entries:
            if entry.is_region:
                yield from self._leaves_under(entry.ptr)
            else:
                prefixes, depths = [], []
                for j in range(self._dims):
                    depth = self._widths[j] - entry.box.span_bits(j)
                    depths.append(depth)
                    prefixes.append(
                        entry.box.lows[j] >> (self._widths[j] - depth)
                    )
                yield LeafRegion(tuple(prefixes), tuple(depths), entry.ptr)

    def check_invariants(self) -> None:
        seen_pages: dict[int, bool] = {}
        regions = [0]
        keys = [0]
        leaf_levels: set[int] = set()

        def check(page_id: int, box: _Box, depth: int) -> None:
            regions[0] += 1
            page = self._store.peek(page_id)
            volume = 0
            for entry in page.entries:
                for j in range(self._dims):
                    span = entry.box.highs[j] - entry.box.lows[j] + 1
                    assert span & (span - 1) == 0, "entry box not dyadic"
                    assert box.lows[j] <= entry.box.lows[j], "box escapes"
                    assert entry.box.highs[j] <= box.highs[j], "box escapes"
                size = 1
                for j in range(self._dims):
                    size *= entry.box.highs[j] - entry.box.lows[j] + 1
                volume += size
                if entry.is_region:
                    assert entry.ptr is not None
                    assert entry.ptr not in seen_pages, "region shared"
                    seen_pages[entry.ptr] = True
                    check(entry.ptr, entry.box, depth + 1)
                else:
                    leaf_levels.add(depth)
                    if entry.ptr is None:
                        continue
                    assert entry.ptr not in seen_pages, "page shared"
                    seen_pages[entry.ptr] = True
                    data = self._store.peek(entry.ptr)
                    assert 0 < len(data) <= self._page_capacity
                    keys[0] += len(data)
                    for codes in data.keys():
                        assert entry.box.contains(codes), "record outside box"
            total = 1
            for j in range(self._dims):
                total *= box.highs[j] - box.lows[j] + 1
            assert volume == total, "child boxes do not tile the region"
            assert len(page.entries) <= self._fanout, "region page overflow"

        check(self._root_id, self._domain_box(), 1)
        assert keys[0] == self._num_keys
        assert regions[0] == self._region_pages
        assert len(leaf_levels) <= 1, "point pages at different depths"
