"""repro — reproduction of Otoo's Balanced Multidimensional Extendible
Hash Tree (PODS 1986).

Public API:

* indexes — :class:`~repro.core.bmeh_tree.BMEHTree` (the paper's
  contribution), :class:`~repro.core.mdeh.MDEH` and
  :class:`~repro.core.meh_tree.MEHTree` (its baselines),
  :class:`~repro.core.ehash.ExtendibleHashFile` (the 1-d variant of §2.1),
  :class:`~repro.core.quadtree.BalancedBinaryTrie` (the conclusion's
  ξ = 1 extension);
* :class:`~repro.encoding.KeyCodec` and the attribute encoders;
* :class:`~repro.storage.PageStore` — the simulated disk with I/O ledger;
* ``repro.workloads`` / ``repro.analysis`` / ``repro.bench`` — the
  experiment machinery behind the paper's §5.
"""

from repro.errors import (
    ReproError,
    EncodingError,
    KeyDimensionError,
    DuplicateKeyError,
    KeyNotFoundError,
    CapacityError,
    StorageError,
    SerializationError,
    LatchTimeout,
    ProtocolError,
)
from repro.encoding import (
    Encoder,
    IdentityEncoder,
    UIntEncoder,
    IntEncoder,
    FloatEncoder,
    ScaledFloatEncoder,
    StringEncoder,
    DatetimeEncoder,
    KeyCodec,
)
from repro.storage import PageStore, MemoryBackend, FileBackend, BufferPool, IOStats
from repro.extarray import ExtendibleArray, theorem1_address, theorem1_index
from repro.core import (
    ExtendibleHashFile,
    MDEH,
    MEHTree,
    BMEHTree,
    BalancedBinaryTrie,
    RangeQuery,
)
from repro.gridfile import GridFile
from repro.kdb import KDBTree
from repro.zorder import ZOrderIndex
from repro.errors import InvariantViolation
from repro.sanitize import (
    check_structure,
    enable_global_sanitizer,
    sanitize_enabled,
    sanitized,
)

__version__ = "1.0.0"

# Opt-in debug mode: REPRO_SANITIZE=1 re-validates every index after each
# mutation (sampling rate from REPRO_SANITIZE_RATE, default 1.0).
if sanitize_enabled():  # pragma: no branch
    enable_global_sanitizer()

__all__ = [
    "ReproError",
    "EncodingError",
    "KeyDimensionError",
    "DuplicateKeyError",
    "KeyNotFoundError",
    "CapacityError",
    "StorageError",
    "SerializationError",
    "LatchTimeout",
    "ProtocolError",
    "Encoder",
    "IdentityEncoder",
    "UIntEncoder",
    "IntEncoder",
    "FloatEncoder",
    "ScaledFloatEncoder",
    "StringEncoder",
    "DatetimeEncoder",
    "KeyCodec",
    "PageStore",
    "MemoryBackend",
    "FileBackend",
    "BufferPool",
    "IOStats",
    "ExtendibleArray",
    "theorem1_address",
    "theorem1_index",
    "ExtendibleHashFile",
    "MDEH",
    "MEHTree",
    "BMEHTree",
    "BalancedBinaryTrie",
    "RangeQuery",
    "GridFile",
    "KDBTree",
    "ZOrderIndex",
    "InvariantViolation",
    "check_structure",
    "enable_global_sanitizer",
    "sanitize_enabled",
    "sanitized",
    "__version__",
]
