"""A growable d-dimensional array with stable linear addresses.

Generalizes Theorem 1 to an *arbitrary* doubling history: the hashing
directories double along whichever axis an overflowing region demands, so
the cyclic-order closed form does not always apply.  The array records one
history entry per doubling (the axis and the depth vector before it);
addresses are computed from the history in O(d).  When the history happens
to be cyclic the addresses coincide with :func:`theorem1_address` — a
property the test suite checks.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence


class ExtendibleArray:
    """Flat storage addressed by d-tuples; doubling appends, never moves.

    The total cell count doubles with every growth step, so after ``t``
    steps the array holds ``2^t`` cells and the block created by step
    ``t`` occupies addresses ``[2^t, 2^{t+1})``.
    """

    __slots__ = (
        "_dims",
        "_depths",
        "_cells",
        "_history",
        "_axis_steps",
        "_addr_cache",
    )

    def __init__(self, dims: int, fill: Any = None) -> None:
        if dims < 1:
            raise ValueError("dims must be positive")
        self._dims = dims
        self._depths = [0] * dims
        self._cells: list[Any] = [fill]
        # Per growth step: (axis, depth-vector before the step).
        self._history: list[tuple[int, tuple[int, ...]]] = []
        # Per axis: global step number of each of its doublings.
        self._axis_steps: list[list[int]] = [[] for _ in range(dims)]
        # Lazily built {index tuple: address} map; the mapping only
        # changes when the shape does, so growth/shrink drop it and the
        # next :meth:`address` call rebuilds it in one pass.
        self._addr_cache: dict[tuple[int, ...], int] | None = None

    # -- shape ---------------------------------------------------------------

    @property
    def dims(self) -> int:
        return self._dims

    @property
    def depths(self) -> tuple[int, ...]:
        """Current per-axis doubling counts (extent of axis j = 2^depths[j])."""
        return tuple(self._depths)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(1 << h for h in self._depths)

    def __len__(self) -> int:
        return len(self._cells)

    # -- addressing ----------------------------------------------------------

    def address(self, index: Sequence[int]) -> int:
        """Linear address of a cell; raises IndexError when out of range.

        This is the innermost call of every directory descent.  Valid
        addresses change only at a doubling, so the first lookup after a
        growth step builds a flat ``{index: address}`` map and every
        descent until the next doubling is a dict hit; the history scan
        below survives as the rebuild step and the error path.
        """
        cache = self._addr_cache
        if cache is None:
            cache = self._addr_cache = {
                self.index_of(a): a for a in range(len(self._cells))
            }
        found = cache.get(index if type(index) is tuple else tuple(index))
        if found is not None:
            return found
        # Not a valid index: re-derive the precise complaint.
        if len(index) != self._dims:
            raise IndexError(f"index {index!r} is not a {self._dims}-tuple")
        depths = self._depths
        axis_steps = self._axis_steps
        step = -1
        for j, i in enumerate(index):
            if not 0 <= i < (1 << depths[j]):
                raise IndexError(
                    f"coordinate {i} outside [0, {1 << depths[j]}) "
                    f"on axis {j}"
                )
            if i:
                creating = axis_steps[j][i.bit_length() - 1]
                if creating > step:
                    step = creating
        if step < 0:
            return 0
        axis, before = self._history[step]
        base = 1 << step  # total cells before the creating step
        s = before[axis]
        layer = base >> s  # product of the other axes' extents
        offset = (index[axis] - (1 << s)) * layer
        stride = 1
        for j in range(self._dims - 1, -1, -1):
            if j == axis:
                continue
            offset += index[j] * stride
            stride <<= before[j]
        return base + offset

    def index_of(self, address: int) -> tuple[int, ...]:
        """Inverse of :meth:`address`."""
        if not 0 <= address < len(self._cells):
            raise IndexError(f"address {address} outside [0, {len(self._cells)})")
        if address == 0:
            return (0,) * self._dims
        step = address.bit_length() - 1
        axis, before = self._history[step]
        base = 1 << step
        s = before[axis]
        layer = base >> s
        remainder = address - base
        index = [0] * self._dims
        index[axis] = (1 << s) + remainder // layer
        remainder %= layer
        for j in range(self._dims - 1, -1, -1):
            if j == axis:
                continue
            extent = 1 << before[j]
            index[j] = remainder % extent
            remainder //= extent
        return tuple(index)

    # -- access ---------------------------------------------------------------

    def __getitem__(self, index: Sequence[int]) -> Any:
        return self._cells[self.address(index)]

    def __setitem__(self, index: Sequence[int], value: Any) -> None:
        self._cells[self.address(index)] = value

    def get_at(self, address: int) -> Any:
        return self._cells[address]

    def set_at(self, address: int, value: Any) -> None:
        self._cells[address] = value

    def cells(self) -> Iterator[Any]:
        return iter(self._cells)

    def indices(self) -> Iterator[tuple[int, ...]]:
        """All valid index tuples, in address order."""
        return (self.index_of(a) for a in range(len(self._cells)))

    # -- growth ----------------------------------------------------------------

    def grow(
        self, axis: int, clone: Callable[[Any], Any] | None = None
    ) -> range:
        """Double the array along ``axis``.

        Every new cell is initialized from its *buddy* — the cell whose
        coordinates are identical except that the top bit of the ``axis``
        coordinate is cleared.  This is exactly the extendible-hashing
        doubling rule: new directory cells start by sharing their buddy's
        entry.  ``clone`` post-processes the buddy value (deep-copying
        mutable entries); the default shares the reference.

        Returns the range of newly created linear addresses.
        """
        if not 0 <= axis < self._dims:
            raise ValueError(f"axis {axis} outside [0, {self._dims})")
        before = tuple(self._depths)
        step = len(self._history)
        self._history.append((axis, before))
        self._axis_steps[axis].append(step)
        self._depths[axis] += 1
        old_size = len(self._cells)
        top = 1 << before[axis]
        self._cells.extend([None] * old_size)
        # Appending never moves a cell, so an existing address cache
        # stays valid — extend it with the new block instead of
        # invalidating (the new index tuples fall out of the loop).
        cache = self._addr_cache
        for address in range(old_size, 2 * old_size):
            index = list(self.index_of(address))
            if cache is not None:
                cache[tuple(index)] = address
            index[axis] -= top
            buddy = self._cells[self.address(index)]
            self._cells[address] = buddy if clone is None else clone(buddy)
        return range(old_size, 2 * old_size)

    def grow_rehash(self, axis: int) -> None:
        """Double along ``axis`` under *prefix* (directory) semantics.

        The hashing directories interpret coordinate ``i_j`` as the first
        ``depths[j]`` bits of a key component (the paper's ``g``), so when
        an axis deepens every cell's meaning gains a low-order bit: the
        cell at new coordinate ``i`` inherits the content of old
        coordinate ``i >> 1`` on that axis.  Unlike :meth:`grow` this
        touches the whole array — which is precisely the classic
        extendible-hashing directory-doubling cost the paper's
        hierarchical design exists to avoid.
        """
        if not 0 <= axis < self._dims:
            raise ValueError(f"axis {axis} outside [0, {self._dims})")
        self._addr_cache = None
        old_values = list(self._cells)
        old_address = self.address  # addresses of old-shape tuples are stable
        before = tuple(self._depths)
        step = len(self._history)
        self._history.append((axis, before))
        self._axis_steps[axis].append(step)
        self._depths[axis] += 1
        self._cells.extend([None] * len(old_values))
        for address in range(len(self._cells)):
            index = list(self.index_of(address))
            index[axis] >>= 1
            self._cells[address] = old_values[old_address(index)]

    def shrink_rehash(self) -> int:
        """Undo the most recent :meth:`grow_rehash`.

        The halved axis loses its low-order addressing bit, collapsing
        coordinate pairs ``(2k, 2k+1)``; the caller must have ensured each
        pair holds the same content (every region's local depth below the
        global depth).  Returns the halved axis.
        """
        if not self._history:
            raise ValueError("cannot shrink a single-cell array")
        self._addr_cache = None
        axis = self._history[-1][0]
        old_values = list(self._cells)
        old_index_of = [self.index_of(a) for a in range(len(self._cells))]
        self._history.pop()
        self._axis_steps[axis].pop()
        self._depths[axis] -= 1
        del self._cells[len(self._cells) // 2 :]
        for old_address, index in enumerate(old_index_of):
            if index[axis] & 1:
                continue  # keep only the even coordinate of each pair
            new_index = list(index)
            new_index[axis] >>= 1
            self._cells[self.address(new_index)] = old_values[old_address]
        return axis

    def shrink(self) -> int:
        """Undo the most recent :meth:`grow` (LIFO, like the paper's
        deletion process which strictly reverses insertion).

        The upper half of the address space — the block the last doubling
        appended — is discarded; the caller must have ensured those cells
        are redundant copies of their buddies.  Returns the axis that was
        halved.
        """
        if not self._history:
            raise ValueError("cannot shrink a single-cell array")
        self._addr_cache = None
        axis, _before = self._history.pop()
        self._axis_steps[axis].pop()
        self._depths[axis] -= 1
        del self._cells[len(self._cells) // 2 :]
        return axis

    def last_grown_axis(self) -> int | None:
        """Axis of the most recent doubling (None for a fresh array)."""
        return self._history[-1][0] if self._history else None

    def history(self) -> tuple[tuple[int, tuple[int, ...]], ...]:
        """The doubling history (axis, depths-before) per step."""
        return tuple(self._history)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ExtendibleArray(shape={self.shape})"
