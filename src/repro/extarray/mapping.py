"""Theorem 1: the closed-form mapping function ``G``.

For an array grown by doubling axes cyclically (axis 1 first), the address
of cell ``<i_1, ..., i_d>`` depends only on the index tuple:

* ``s`` — the largest ``floor(log2 i_j)`` over the non-zero components;
* ``z`` — the highest axis attaining ``s``; the cell was created when
  axis ``z`` doubled from extent ``2^s`` to ``2^{s+1}``;
* at that moment axes before ``z`` had extent ``2^{s+1}`` and axes from
  ``z`` on had ``2^s`` (the per-axis factors ``J_j``);
* the cell's address is the size of the array before that doubling
  (``i_z``'s slab base) plus a mixed-radix offset over the other axes.

The paper's statement of the constants ``C_j`` omits that the product
skips axis ``z`` (its extent is accounted for by the ``i_z`` term); the
worked inverse in :func:`theorem1_index` and the round-trip property test
pin the corrected form down.
"""

from __future__ import annotations

from typing import Sequence


def theorem1_address(index: Sequence[int], dims: int | None = None) -> int:
    """Map a d-tuple index to its linear address under cyclic doubling.

    Args:
        index: cell coordinates, each ``>= 0``.
        dims: expected dimensionality (defaults to ``len(index)``).

    Returns:
        The unique linear address in ``[0, 2^t)`` where ``t`` is the
        number of doublings needed for the cell to exist.
    """
    d = len(index) if dims is None else dims
    if len(index) != d or d < 1:
        raise ValueError(f"index {index!r} is not a {d}-tuple")
    if any(i < 0 for i in index):
        raise ValueError(f"negative coordinate in {index!r}")
    if max(index) == 0:
        return 0
    # s = max floor(log2 i_j) over non-zero components; z = highest such axis.
    s = max(i.bit_length() - 1 for i in index if i > 0)
    z = max(j for j, i in enumerate(index) if i > 0 and i.bit_length() - 1 == s)
    # Extents of the other axes at creation time.
    factors = [(1 << (s + 1)) if j < z else (1 << s) for j in range(d)]
    base = 1
    for j in range(d):
        if j != z:
            base *= factors[j]
    address = index[z] * base
    stride = 1
    for j in range(d - 1, -1, -1):
        if j == z:
            continue
        address += index[j] * stride
        stride *= factors[j]
    return address


def theorem1_index(address: int, dims: int) -> tuple[int, ...]:
    """Invert :func:`theorem1_address`.

    Every address ``>= 1`` falls in exactly one doubling slab: slab ``t``
    covers ``[2^t, 2^{t+1})`` and corresponds to round ``t // d`` of axis
    ``t % d`` doubling.
    """
    if dims < 1:
        raise ValueError("dims must be positive")
    if address < 0:
        raise ValueError("address must be non-negative")
    if address == 0:
        return (0,) * dims
    t = address.bit_length() - 1
    s, z = divmod(t, dims)
    factors = [(1 << (s + 1)) if j < z else (1 << s) for j in range(dims)]
    remainder = address - (1 << t)
    layer = 1 << t >> s  # product of the other axes' extents
    index = [0] * dims
    index[z] = (1 << s) + remainder // layer
    remainder %= layer
    for j in range(dims - 1, -1, -1):
        if j == z:
            continue
        index[j] = remainder % factors[j]
        remainder //= factors[j]
    return tuple(index)
