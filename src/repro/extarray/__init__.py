"""Extendible arrays of exponential varying order (paper §2.1, Theorem 1).

A d-dimensional array that can double along any axis *without relocating
existing cells*: every doubling appends one block of cells to the linear
address space.  The closed-form mapping of Theorem 1
(:func:`theorem1_address`) assumes the canonical cyclic doubling order
(axis 1, 2, ..., d, 1, ...); :class:`ExtendibleArray` generalizes it to an
arbitrary doubling history, which the hashing directories need because
their doubling axis is driven by whichever region overflows.
"""

from repro.extarray.mapping import theorem1_address, theorem1_index
from repro.extarray.array import ExtendibleArray

__all__ = ["theorem1_address", "theorem1_index", "ExtendibleArray"]
