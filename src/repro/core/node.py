"""Directory nodes for the tree-structured schemes (MEH / BMEH).

A node is one disk page holding a bounded extendible array of directory
entries.  Its *global depths* ``H_j`` are the array's per-axis doubling
counts; a node page reserves ``2^phi`` element slots (``phi = sum xi_j``),
which is why the paper reports tree directory sizes in multiples of
``2^phi``.
"""

from __future__ import annotations

import struct
from typing import Iterator, Sequence

from repro.errors import SerializationError
from repro.extarray import ExtendibleArray
from repro.core.directory import DirEntry
from repro.storage.serializer import PageCodec


class Node:
    """A directory node: a bounded extendible array of :class:`DirEntry`.

    Attributes:
        level: height above the data pages (leaf directory nodes are at
            level 1, data pages at level 0, the root at the tree height).
        xi: per-axis depth budgets (the paper's ξ_j); their sum is φ and
            the node holds at most ``2^φ`` entries.
    """

    __slots__ = ("array", "level", "xi")

    def __init__(self, dims: int, xi: Sequence[int], level: int) -> None:
        if level < 1:
            raise ValueError("directory nodes live at level >= 1")
        if len(xi) != dims:
            raise ValueError("xi must have one budget per dimension")
        self.array = ExtendibleArray(dims, fill=None)
        self.level = level
        self.xi = tuple(xi)

    @property
    def dims(self) -> int:
        return self.array.dims

    @property
    def depths(self) -> tuple[int, ...]:
        """The node's global depths ``H_j``."""
        return self.array.depths

    @property
    def phi(self) -> int:
        return sum(self.xi)

    @property
    def capacity(self) -> int:
        """Reserved element slots per node page (``2^phi``)."""
        return 1 << self.phi

    def size(self) -> int:
        return len(self.array)

    def can_grow_total(self) -> bool:
        """Whether doubling keeps the node within its ``2^phi`` slots.

        This is the test in the paper's ``BMEH_Insert`` pseudocode
        ("if number of entries <= 2^phi then Expand_Dir").
        """
        return 2 * len(self.array) <= self.capacity

    def can_grow(self, axis: int, policy: str = "total") -> bool:
        """Whether the node may double along ``axis`` under ``policy``.

        ``"total"`` follows the pseudocode (any axis while the slot budget
        holds); ``"per_dim"`` additionally enforces ``H_j <= xi_j``, the
        stricter reading of §3.1.  The two are compared by an ablation
        benchmark.
        """
        if not self.can_grow_total():
            return False
        if policy == "per_dim":
            return self.array.depths[axis] < self.xi[axis]
        if policy == "total":
            return True
        raise ValueError(f"unknown node growth policy {policy!r}")

    def entries(self) -> Iterator[DirEntry]:
        """Distinct region entries (cells share entry objects)."""
        seen: set[int] = set()
        for cell in self.array.cells():
            if cell is not None and id(cell) not in seen:
                seen.add(id(cell))
                yield cell

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node(level={self.level}, H={self.depths}, xi={self.xi})"


#: Format-version byte leading every v2 node image (tag 0x12); the
#: legacy tag 0x02 layout has no version byte and stays decode-only.
_NODE_FORMAT_VERSION = 1


class NodeCodec(PageCodec):
    """Byte image for directory nodes (v2, tag 0x12).

    ``u8 format-version | u8 level | u8 dims | dims*u8 xi | u8 steps |
    steps*u8 axes`` then one record per distinct region entry
    (``dims*u8 h | u8 m | i64 ptr | u8 is_node | u32 cell-count | cells``)
    where cells are u32 linear addresses.  Replaying the growth axes
    reconstructs the array's addressing history exactly.  Decoding works
    over a ``memoryview`` of the page slot without copying it.
    """

    tag = 0x12
    _versioned = True

    def handles(self, obj: object) -> bool:
        return isinstance(obj, Node)

    def encode_body(self, node: Node) -> bytes:
        history_axes = [axis for axis, _ in node.array.history()]
        parts = [
            b"\x01" if self._versioned else b"",
            struct.pack(
                f"<BB{node.dims}BB",
                node.level,
                node.dims,
                *node.xi,
                len(history_axes),
            ),
            bytes(history_axes),
        ]
        groups: dict[int, tuple[DirEntry, list[int]]] = {}
        for address in range(len(node.array)):
            entry = node.array.get_at(address)
            if entry is None:
                raise SerializationError("cannot serialize a node with holes")

            groups.setdefault(id(entry), (entry, []))[1].append(address)
        parts.append(struct.pack("<I", len(groups)))
        for entry, addresses in groups.values():
            ptr = -1 if entry.ptr is None else entry.ptr
            parts.append(
                struct.pack(
                    f"<{node.dims}BBqBI",
                    *entry.h,
                    entry.m,
                    ptr,
                    int(entry.is_node),
                    len(addresses),
                )
            )
            parts.append(struct.pack(f"<{len(addresses)}I", *addresses))
        return b"".join(parts)

    def decode_body(self, data: bytes | memoryview) -> Node:
        try:
            offset = 0
            if self._versioned:
                if data[0] != _NODE_FORMAT_VERSION:
                    raise SerializationError(
                        f"unsupported node format version {data[0]}"
                    )
                offset = 1
            level, dims = struct.unpack_from("<BB", data, offset)
            offset += 2
            xi = struct.unpack_from(f"<{dims}B", data, offset)
            offset += dims
            (steps,) = struct.unpack_from("<B", data, offset)
            offset += 1
            axes = data[offset : offset + steps]
            if len(axes) < steps:
                raise SerializationError("truncated node growth history")
            offset += steps
            node = Node(dims, xi, level)
            for axis in axes:
                node.array.grow(axis)
            (group_count,) = struct.unpack_from("<I", data, offset)
            offset += 4
            record = struct.Struct(f"<{dims}BBqBI")
            for _ in range(group_count):
                fields = record.unpack_from(data, offset)
                offset += record.size
                h = fields[:dims]
                m, ptr, is_node, cell_count = fields[dims:]
                entry = DirEntry(h, m, None if ptr < 0 else ptr, bool(is_node))
                addresses = struct.unpack_from(f"<{cell_count}I", data, offset)
                offset += 4 * cell_count
                for address in addresses:
                    node.array.set_at(address, entry)
            return node
        except (struct.error, IndexError) as exc:
            raise SerializationError(f"corrupt node image: {exc}") from exc


class LegacyNodeCodec(NodeCodec):
    """Decode-only support for pre-version-byte node images (tag 0x02)."""

    tag = 0x02
    _versioned = False

    def handles(self, obj: object) -> bool:
        return False  # encode always uses the current format
