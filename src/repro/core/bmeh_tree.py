"""BMEH-tree: the paper's contribution — the balanced hash tree.

The directory is a height-balanced tree of bounded nodes.  When a region
needs a depth its node cannot provide, the *node* splits on the top bit
of the needed axis and the two halves are registered one level up; if
that level cannot absorb them its node splits first, and a root split
adds a level at the top.  Every data page therefore stays at the same
distance from the root — the property behind the paper's "at most three
disk accesses for directories up to 2^27 entries" guarantee.

The upward walk is implemented as one structural step per insert retry
(see ``HashTreeBase``): ``_grow_directory`` finds the shallowest ancestor
whose parent can absorb a split, performs exactly that split, and lets
the insert re-descend.  A full page is rehashed only once its leaf node
is already refinable, so a node cut can never orphan an unregistered
sibling page.
"""

from __future__ import annotations

from repro.core.directory import DirEntry
from repro.core.hashtree import HashTreeBase, _Step
from repro.core.node import Node


class BMEHTree(HashTreeBase):
    """Balanced multidimensional extendible hash tree."""

    def _grow_directory(self, path: list[_Step], m: int) -> None:
        """One step of the paper's stack-driven split propagation.

        Walking from the leaf toward the root, level ``i`` needs to
        refine along ``axis[i]``; if it cannot, its node must split along
        a cut axis and the requirement moves to level ``i-1``.  The first
        level that *can* refine absorbs the split of the level below it;
        if none can, the root splits and the tree gains a level.
        """
        axis = m
        for i in range(len(path) - 1, -1, -1):
            step = path[i]
            if self._refinable(step.node, step.entry, axis):
                assert i < len(path) - 1, (
                    "leaf was refinable; _grow_directory should not run"
                )
                child = path[i + 1]
                right_id = self._cut_node(child.node_id, axis, child.consumed)
                self._refine_region(
                    step.node, step.node_id, step.anchor, step.entry,
                    axis, child.node_id, right_id, True,
                )
                return
            axis = self._cut_axis(step.node, axis)
        self._split_root(path[0], axis)

    def _fill_nil_region(self, leaf) -> None:
        """Balanced materialization of a NIL region: a pruned empty
        subtree left its parent with a NIL entry above level 1, so the
        new data page must hang from a fresh chain of single-cell nodes
        reaching down to level 1 — keeping every page at the same depth."""
        from repro.storage import DataPage

        ptr = self._store.allocate(DataPage(self._page_capacity))
        self._data_pages += 1
        is_node = False
        for level in range(1, leaf.node.level):
            wrapper = Node(self._dims, self._xi, level)
            wrapper.array.set_at(
                0, DirEntry([0] * self._dims, self._dims - 1, ptr, is_node)
            )
            ptr = self._store.allocate(wrapper)
            self._node_count += 1
            is_node = True
        leaf.entry.ptr = ptr
        leaf.entry.is_node = is_node
        self._store.write(leaf.node_id, leaf.node)

    def _cut_axis(self, node: Node, axis: int) -> int:
        """The axis a node split actually cuts on: the requested axis if
        the node addresses it, else its deepest axis (a node that cannot
        grow holds > 1 entry, so some axis has depth >= 1)."""
        depths = node.array.depths
        if depths[axis] >= 1:
            return axis
        deepest = max(range(self._dims), key=lambda j: depths[j])
        assert depths[deepest] >= 1, "an unsplittable single-cell node"
        return deepest

    def _split_root(self, root_step: _Step, axis: int) -> None:
        """Split the root and grow a new one above it (the tree's only
        way to gain height, which keeps it perfectly balanced)."""
        old_root_id = root_step.node_id
        right_id = self._cut_node(old_root_id, axis, (0,) * self._dims)
        old_level = root_step.node.level
        new_root = Node(self._dims, self._xi, old_level + 1)
        stub = DirEntry([0] * self._dims, axis, old_root_id, True)
        new_root.array.set_at(0, stub)
        new_root_id = self._store.allocate(new_root)
        self._node_count += 1
        self._refine_region(
            new_root, new_root_id, (0,) * self._dims, stub,
            axis, old_root_id, right_id, True,
        )
        self._store.unpin(old_root_id)
        self._store.pin(new_root_id)
        self._root_id = new_root_id

    def _collapse(self, path: list[_Step]) -> None:
        """Reverse the growth steps bottom-up (§4.2: deletion strictly
        reverses insertion): first try to re-merge the traversed child
        node with its buddy sibling at every level, then drop the root
        once it routes everything to a single child."""
        for i in range(len(path) - 1, 0, -1):
            parent = path[i - 1]
            self._prune_empty_child(parent.node, parent.node_id,
                                    parent.entry)
            self._merge_sibling_nodes(parent.node, parent.node_id,
                                      parent.entry)
        self._drop_trivial_root()

    def _prune_empty_child(self, parent, parent_id, entry) -> None:
        """Free a child subtree that holds no records at all: its parent
        region becomes NIL (the generalized "immediate deletion of empty
        pages"), after which buddy-region merging can continue."""
        if not entry.is_node or entry.ptr is None:
            return
        child = self._store.peek(entry.ptr)
        if any(e.ptr is not None for e in child.entries()):
            return
        self._store.free(entry.ptr)
        self._node_count -= 1
        entry.ptr = None
        entry.is_node = False
        self._store.write(parent_id, parent)
        self._merge_in_leaf(parent, parent_id, entry)

    def _merge_sibling_nodes(self, parent, parent_id, entry) -> None:
        """Fold two sibling half-nodes back into one node — the inverse
        of a node split — while their combined cells fit one node page.

        The buddy region must mirror this one exactly (same depths, node
        children, equal child shapes); the merged node re-absorbs the
        parent-level bit: child cells keep their coordinates with the
        buddy's shifted into the upper half, and every child entry's
        local depth on the merge axis grows by one.
        """
        from repro.core.directory import region_indices

        while entry.is_node and entry.ptr is not None:
            m = entry.m
            if entry.h[m] == 0:
                return
            depths = parent.array.depths
            anchor = self._find_anchor(parent, entry)
            buddy_cell = list(anchor)
            buddy_cell[m] = anchor[m] ^ (1 << (depths[m] - entry.h[m]))
            buddy = parent.array[tuple(buddy_cell)]
            if (
                buddy is entry
                or not buddy.is_node
                or buddy.ptr is None
                or buddy.h != entry.h
                or buddy.m != entry.m
            ):
                return
            side = (anchor[m] >> (depths[m] - entry.h[m])) & 1
            left_id, right_id = (
                (buddy.ptr, entry.ptr) if side else (entry.ptr, buddy.ptr)
            )
            merged_id = self._try_rejoin(left_id, right_id, m)
            if merged_id is None:
                return
            merged = DirEntry(entry.h, (m - 1) % self._dims, merged_id, True)
            merged.h[m] -= 1
            for cell in region_indices(depths, anchor, merged.h):
                parent.array[cell] = merged
            self._store.write(parent_id, parent)
            self._shrink_node(parent, parent_id)
            entry = merged

    def _try_rejoin(self, left_id: int, right_id: int, axis: int) -> int | None:
        """Concatenate two sibling nodes along ``axis`` if the result
        fits a node page; returns the merged node id (reusing the left)."""
        left = self._store.peek(left_id)
        right = self._store.peek(right_id)
        if left.level != right.level:
            return None
        if left.array.depths != right.array.depths:
            return None
        if 2 * len(left.array) > left.capacity:
            return None
        if self._node_policy == "per_dim" and (
            left.array.depths[axis] >= self._xi[axis]
        ):
            return None
        merged = self._blank_node(left.level, left.array.depths)
        merged.array.grow(axis)
        half = 1 << left.array.depths[axis]
        rejoined: dict[int, DirEntry] = {}
        for source, offset in ((left, 0), (right, half)):
            for address in range(len(source.array)):
                old = source.array.get_at(address)
                entry = rejoined.get(id(old))
                if entry is None:
                    entry = old.clone()
                    entry.h[axis] += 1
                    rejoined[id(old)] = entry
                cell = list(source.array.index_of(address))
                cell[axis] += offset
                merged.array[tuple(cell)] = entry
        self._store.write(left_id, merged)
        self._store.read(right_id)
        self._store.free(right_id)
        self._node_count -= 1
        return left_id

    def _drop_trivial_root(self) -> None:
        while True:
            root = self._store.peek(self._root_id)
            entries = list(root.entries())
            if all(e.ptr is None for e in entries) and (
                root.level > 1 or len(root.array) > 1
            ):
                # An entirely empty tree resets to the initial state.
                fresh = Node(self._dims, self._xi, level=1)
                fresh.array.set_at(
                    0, DirEntry([0] * self._dims, self._dims - 1, None)
                )
                self._store.write(self._root_id, fresh)
                return
            if len(entries) != 1 or not entries[0].is_node:
                return
            lone = entries[0]
            if any(lone.h):
                return
            child_id = lone.ptr
            self._store.unpin(self._root_id)
            self._store.free(self._root_id)
            self._node_count -= 1
            self._store.pin(child_id)
            self._root_id = child_id

    def _check_child_level(self, parent: Node, child: Node) -> None:
        assert child.level == parent.level - 1, (
            f"BMEH child level {child.level} under parent {parent.level}"
        )
