"""MDEH: multidimensional extendible hashing with a one-level directory.

The paper's first baseline (§2.1, from Otoo VLDB'84).  The directory is a
d-dimensional extendible array addressed by Theorem 1's mapping; each
element holds local depths, the cyclic split dimension ``m`` and a data
page pointer.  Exact-match search is two disk accesses — one directory
page (the element's address is computed, so exactly one directory page is
touched) and one data page.

Its weakness, which the BMEH-tree exists to fix, is on display in the
insertion path: a page split rewrites the pointer of *every* directory
element of the split region, and a directory doubling rewrites the whole
directory.  Both costs are charged to the I/O ledger as virtual
directory-page traffic.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Sequence

from repro.bits import g
from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.extarray import ExtendibleArray
from repro.storage import DataPage, PageStore
from repro.core.directory import DirEntry, region_indices
from repro.core.interface import KeyCodes, MultidimensionalIndex, Record


class MDEH(MultidimensionalIndex):
    """One-level multidimensional extendible hashing.

    Args:
        dims: key dimensionality ``d``.
        page_capacity: records per data page (the paper's ``b``).
        widths: pseudo-key bits per dimension (default 32 each).
        store: page store; a fresh in-memory one by default.
        dir_page_entries: directory elements per directory page — the
            granularity at which directory I/O is charged (64 by default,
            the same page budget as a tree node).
    """

    def __init__(
        self,
        dims: int,
        page_capacity: int,
        widths: Sequence[int] | int = 32,
        store: PageStore | None = None,
        dir_page_entries: int = 64,
        element_granular_updates: bool = True,
    ) -> None:
        super().__init__(dims, page_capacity, widths, store)
        if dir_page_entries < 1:
            raise ValueError("dir_page_entries must be positive")
        self._epp = dir_page_entries
        self._element_granular = element_granular_updates
        self._dir = ExtendibleArray(dims, fill=None)
        self._dir.set_at(0, DirEntry([0] * dims, dims - 1, None))
        self._data_pages = 0

    # -- state ---------------------------------------------------------------

    @property
    def global_depths(self) -> tuple[int, ...]:
        """The directory header ``<H_1, ..., H_d>``."""
        return self._dir.depths

    @property
    def directory_size(self) -> int:
        return len(self._dir)

    @property
    def data_page_count(self) -> int:
        return self._data_pages

    @property
    def directory_page_count(self) -> int:
        """Directory pages occupied at ``dir_page_entries`` per page."""
        return -(-len(self._dir) // self._epp)

    # -- addressing ----------------------------------------------------------

    def _anchor(self, codes: KeyCodes) -> tuple[int, ...]:
        depths = self._dir.depths
        return tuple(
            g(codes[j], self._widths[j], depths[j]) for j in range(self._dims)
        )

    def _dir_token(self, address: int) -> int:
        return address // self._epp

    def _charge_cell_read(self, address: int) -> None:
        """A *lookup* touches one directory page (λ = 2 comes from here)."""
        self._store.count_virtual_read(("dir", self._dir_token(address)))

    def _charge_update_read(self, address: int) -> None:
        """A region *update* is charged at pointer granularity by default:
        the paper's insertion costs ("resetting half the page pointers"
        after a split, §3) count each directory element reset, which is
        what makes the one-level scheme's ρ explode for skewed keys.
        ``element_granular_updates=False`` switches to page granularity."""
        token = address if self._element_granular else self._dir_token(address)
        self._store.count_virtual_read(("dirupd", token))

    def _charge_update_write(self, address: int) -> None:
        token = address if self._element_granular else self._dir_token(address)
        self._store.count_virtual_write(("dirupd", token))

    # -- operations ----------------------------------------------------------

    def search(self, key: Sequence[int]) -> Any:
        codes = self._check_key(key)
        with self._store.operation():
            address = self._dir.address(self._anchor(codes))
            self._charge_cell_read(address)
            entry = self._dir.get_at(address)
            if entry.ptr is None:
                raise KeyNotFoundError(f"key {codes} not found")
            page = self._store.read(entry.ptr)
            return page.get(codes)

    def insert(self, key: Sequence[int], value: Any = None) -> None:
        codes = self._check_key(key)
        with self._store.operation():
            self._insert_once(codes, value, None)

    def _charge_held(self, address: int, held: int | None) -> int:
        """Charge a directory-page lookup unless its page is the batch's
        held page.

        ``held`` is the directory-page token the previous z-order key
        loaded (``None`` when nothing is held): a consecutive key whose
        element lives on the same page reads it from the batch's working
        buffer for free — the one-level analogue of the trees'
        shared-prefix descent.  Per-operation dedup makes this identical
        to the plain charge when no token is carried across keys.
        """
        token = self._dir_token(address)
        if token != held:
            self._charge_cell_read(address)
        return token

    def _insert_once(
        self, codes: KeyCodes, value: Any, held: int | None
    ) -> int | None:
        """One insert; returns the directory-page token it holds for the
        next batch key (``None`` after a directory doubling, which
        reshuffles every address)."""
        while True:
            anchor = self._anchor(codes)
            address = self._dir.address(anchor)
            held = self._charge_held(address, held)
            entry = self._dir.get_at(address)
            if entry.ptr is None:
                self._allocate_region_page(anchor, entry)
            page = self._store.read(entry.ptr)
            if codes in page:
                raise DuplicateKeyError(f"key {codes} already present")
            if not page.is_full:
                page.put(codes, value)
                self._store.write(entry.ptr, page)
                self._num_keys += 1
                return held
            depths = self._dir.depths
            self._split_region(anchor, entry, page)
            if self._dir.depths != depths:
                held = None  # doubled: addresses moved pages

    def delete(self, key: Sequence[int]) -> Any:
        codes = self._check_key(key)
        with self._store.operation():
            value, _held = self._delete_once(codes, None)
            return value

    def _delete_once(
        self, codes: KeyCodes, held: int | None
    ) -> tuple[Any, int | None]:
        """One delete; returns ``(value, held_token)`` — the token goes
        ``None`` after a directory contraction reshuffles addresses."""
        anchor = self._anchor(codes)
        address = self._dir.address(anchor)
        held = self._charge_held(address, held)
        entry = self._dir.get_at(address)
        if entry.ptr is None:
            raise KeyNotFoundError(f"key {codes} not found")
        page = self._store.read(entry.ptr)
        value = page.remove(codes)  # raises KeyNotFoundError when absent
        self._num_keys -= 1
        if len(page) == 0:
            # §2.1: directory-resident local depths let an emptied
            # page be dropped without touching it again.
            self._store.free(entry.ptr)
            self._data_pages -= 1
            entry.ptr = None
            self._touch_region_cells(anchor, entry.h)
        else:
            self._store.write(entry.ptr, page)
        if self._try_merge(anchor, entry):
            # Local depths only decrease through merges, so the
            # directory can only have become contractible after one.
            depths = self._dir.depths
            self._try_contract()
            if self._dir.depths != depths:
                held = None
        return value, held

    # -- batched operations ----------------------------------------------------

    def insert_many(
        self, pairs: Sequence[tuple[Sequence[int], Any]]
    ) -> int:
        """Batched insert: z-order walk holding the current directory
        page across consecutive keys, one group commit for the batch."""
        batch = [(self._check_key(key), value) for key, value in pairs]
        batch.sort(key=lambda pair: self._zorder_key(pair[0]))
        held: int | None = None
        with self._group_commit():
            for codes, value in batch:
                with self._store.operation():
                    held = self._insert_once(codes, value, held)
        return len(batch)

    def search_many(self, keys: Sequence[Sequence[int]]) -> list[Any]:
        """Batched search (results in input order): z-order probes reuse
        the held directory page between consecutive keys."""
        batch = [self._check_key(key) for key in keys]
        order = sorted(
            range(len(batch)), key=lambda i: self._zorder_key(batch[i])
        )
        results: list[Any] = [None] * len(batch)
        held: int | None = None
        for i in order:
            codes = batch[i]
            with self._store.operation():
                address = self._dir.address(self._anchor(codes))
                held = self._charge_held(address, held)
                entry = self._dir.get_at(address)
                if entry.ptr is None:
                    raise KeyNotFoundError(f"key {codes} not found")
                page = self._store.read(entry.ptr)
                results[i] = page.get(codes)
        return results

    def delete_many(self, keys: Sequence[Sequence[int]]) -> list[Any]:
        """Batched delete under one group commit (values in input
        order); the held directory page survives merges (addresses keep
        their pages) but not contractions."""
        batch = [self._check_key(key) for key in keys]
        order = sorted(
            range(len(batch)), key=lambda i: self._zorder_key(batch[i])
        )
        results: list[Any] = [None] * len(batch)
        held: int | None = None
        with self._group_commit():
            for i in order:
                with self._store.operation():
                    results[i], held = self._delete_once(batch[i], held)
        return results

    def range_search(
        self, lows: Sequence[int], highs: Sequence[int]
    ) -> Iterator[Record]:
        lows = self._check_key(lows)
        highs = self._check_key(highs)
        if any(lo > hi for lo, hi in zip(lows, highs)):
            return
        with self._store.operation():
            for ptr, task_lows, task_highs in self._leaf_tasks(lows, highs):
                page = self._store.read(ptr)
                for codes, value in page.items():
                    if all(
                        task_lows[j] <= codes[j] <= task_highs[j]
                        for j in range(self._dims)
                    ):
                        yield codes, value

    def _leaf_tasks(
        self, lows: KeyCodes, highs: KeyCodes
    ) -> Iterator[tuple[int, KeyCodes, KeyCodes]]:
        """Per-page scan tasks covering the query box (charged directory
        walk); same contract as ``HashTreeBase._leaf_tasks`` — each
        allocated overlapping region yields its page once, and the
        per-record bound filter completes the paper's predicate check."""
        depths = self._dir.depths
        spans = [
            range(
                g(lows[j], self._widths[j], depths[j]),
                g(highs[j], self._widths[j], depths[j]) + 1,
            )
            for j in range(self._dims)
        ]
        seen_regions: set[int] = set()
        for cell in itertools.product(*spans):
            address = self._dir.address(cell)
            self._charge_cell_read(address)
            entry = self._dir.get_at(address)
            if id(entry) in seen_regions:
                continue
            seen_regions.add(id(entry))
            if entry.ptr is None:
                continue
            yield entry.ptr, lows, highs

    def items(self) -> Iterator[Record]:
        with self._store.operation():
            seen: set[int] = set()
            for entry in self._regions():
                if entry.ptr is not None and entry.ptr not in seen:
                    seen.add(entry.ptr)
                    page = self._store.read(entry.ptr)
                    yield from page.items()

    # -- splitting -----------------------------------------------------------

    def _allocate_region_page(
        self, anchor: tuple[int, ...], entry: DirEntry
    ) -> None:
        """Allocate a page for an empty region and repoint all its cells
        (the paper's NIL-pointer branch of ``BMEH_Insert``)."""
        entry.ptr = self._store.allocate(DataPage(self._page_capacity))
        self._data_pages += 1
        self._touch_region_cells(anchor, entry.h)

    def _split_region(
        self, anchor: tuple[int, ...], entry: DirEntry, page: DataPage
    ) -> None:
        m = self._next_split_dim(entry.m, entry.h)
        new_depth = entry.h[m] + 1
        if new_depth > self._dir.depths[m]:
            self._double_directory(m)
            anchor = tuple(
                idx * 2 if j == m else idx for j, idx in enumerate(anchor)
            )
        sibling = self._split_page(page, m, new_depth)
        left_ptr: int | None = entry.ptr
        right_ptr: int | None = None
        if len(page) == 0:
            self._store.free(left_ptr)
            self._data_pages -= 1
            left_ptr = None
        else:
            self._store.write(left_ptr, page)
        if len(sibling) > 0:
            right_ptr = self._store.allocate(sibling)
            self._data_pages += 1
        self._refine_region(anchor, entry, m, new_depth, left_ptr, right_ptr)

    def _double_directory(self, axis: int) -> None:
        """Classic directory doubling: the whole directory is rewritten."""
        pages_before = self.directory_page_count
        for token in range(pages_before):
            self._store.count_virtual_read(("dir", token))
        self._dir.grow_rehash(axis)
        for token in range(self.directory_page_count):
            self._store.count_virtual_write(("dir", token))

    def _refine_region(
        self,
        anchor: tuple[int, ...],
        entry: DirEntry,
        m: int,
        new_depth: int,
        left_ptr: int | None,
        right_ptr: int | None,
    ) -> None:
        """Deepen a region along ``m``, dividing its cells between the two
        pages; every reset directory element is charged (see
        :meth:`_charge_update_read`)."""
        depths = self._dir.depths
        shift = depths[m] - new_depth
        left = DirEntry(entry.h, m, left_ptr)
        right = DirEntry(entry.h, m, right_ptr)
        left.h[m] = right.h[m] = new_depth
        for cell in region_indices(depths, anchor, entry.h):
            address = self._dir.address(cell)
            self._charge_update_read(address)
            self._charge_update_write(address)
            side = (cell[m] >> shift) & 1
            self._dir.set_at(address, right if side else left)

    def _touch_region_cells(
        self, anchor: tuple[int, ...], h: Sequence[int]
    ) -> None:
        for cell in region_indices(self._dir.depths, anchor, h):
            self._charge_update_write(self._dir.address(cell))

    # -- merging / contraction -------------------------------------------------

    def _try_merge(self, anchor: tuple[int, ...], entry: DirEntry) -> bool:
        """Collapse buddy regions while their pages fit in one (§4.2:
        deletion strictly reverses the splitting process).  Returns
        whether any merge happened."""
        merged_any = False
        while True:
            m = entry.m
            depth = entry.h[m]
            if depth == 0:
                return merged_any
            buddy_anchor = list(anchor)
            buddy_anchor[m] = anchor[m] ^ (1 << (self._dir.depths[m] - depth))
            buddy = self._dir.get_at(self._dir.address(buddy_anchor))
            if buddy is entry or buddy.h != entry.h or buddy.m != entry.m:
                return merged_any
            load = 0
            for ptr in (entry.ptr, buddy.ptr):
                if ptr is not None:
                    load += len(self._store.peek(ptr))
            if load > self._page_capacity:
                return merged_any
            self._merge_pair(anchor, entry, tuple(buddy_anchor), buddy)
            merged_any = True
            entry = self._dir.get_at(self._dir.address(anchor))

    def _merge_pair(
        self,
        anchor: tuple[int, ...],
        entry: DirEntry,
        buddy_anchor: tuple[int, ...],
        buddy: DirEntry,
    ) -> None:
        keep_ptr = entry.ptr
        if keep_ptr is None:
            keep_ptr = buddy.ptr
        elif buddy.ptr is not None:
            keep_page = self._store.read(keep_ptr)
            for codes, value in self._store.read(buddy.ptr).items():
                keep_page.put(codes, value)
            self._store.write(keep_ptr, keep_page)
            self._store.free(buddy.ptr)
            self._data_pages -= 1
        m = entry.m
        merged = DirEntry(entry.h, (m - 1) % self._dims, keep_ptr)
        merged.h[m] -= 1
        for cell in region_indices(self._dir.depths, anchor, merged.h):
            address = self._dir.address(cell)
            self._charge_update_write(address)
            self._dir.set_at(address, merged)

    def _try_contract(self) -> None:
        """Halve the directory while no region uses its deepest bit."""
        while self._dir.last_grown_axis() is not None:
            axis = self._dir.last_grown_axis()
            depth = self._dir.depths[axis]
            if any(entry.h[axis] >= depth for entry in self._regions()):
                return
            pages_before = self.directory_page_count
            for token in range(pages_before):
                self._store.count_virtual_read(("dir", token))
            self._dir.shrink_rehash()
            for token in range(self.directory_page_count):
                self._store.count_virtual_write(("dir", token))

    # -- introspection ----------------------------------------------------------

    def _regions(self) -> Iterator[DirEntry]:
        seen: set[int] = set()
        for cell in self._dir.cells():
            if id(cell) not in seen:
                seen.add(id(cell))
                yield cell

    def leaf_regions(self) -> Iterator[LeafRegion]:
        from repro.core.interface import LeafRegion

        depths = self._dir.depths
        seen: set[int] = set()
        for address in range(len(self._dir)):
            entry = self._dir.get_at(address)
            if id(entry) in seen:
                continue
            seen.add(id(entry))
            anchor = self._dir.index_of(address)
            prefixes = tuple(
                anchor[j] >> (depths[j] - entry.h[j])
                for j in range(self._dims)
            )
            yield LeafRegion(prefixes, tuple(entry.h), entry.ptr)

    def check_invariants(self) -> None:
        depths = self._dir.depths
        key_total = 0
        pages_seen: set[int] = set()
        regions_seen: set[int] = set()
        region_of_page: dict[int, int] = {}
        for address in range(len(self._dir)):
            entry = self._dir.get_at(address)
            assert entry is not None, f"hole at directory address {address}"
            anchor = self._dir.index_of(address)
            for j in range(self._dims):
                assert 0 <= entry.h[j] <= depths[j], (
                    f"local depth {entry.h[j]} vs global {depths[j]}"
                )
            assert not entry.is_node, "MDEH directory cannot point to nodes"
            if id(entry) in regions_seen:
                continue
            regions_seen.add(id(entry))
            # Every cell of the entry's region must hold this same object
            # (verified once per region: the check is linear in the
            # directory size overall, not quadratic in region size).
            for cell in region_indices(depths, anchor, entry.h):
                assert self._dir.get_at(self._dir.address(cell)) is entry, (
                    f"region of {anchor} not uniform at {cell}"
                )
            if entry.ptr is None:
                continue
            owner = region_of_page.setdefault(entry.ptr, id(entry))
            assert owner == id(entry), (
                f"page {entry.ptr} shared by two regions"
            )
            pages_seen.add(entry.ptr)
            page = self._store.peek(entry.ptr)
            assert 0 < len(page) <= self._page_capacity, (
                "page empty or overflowing"
            )
            key_total += len(page)
            for codes in page.keys():
                for j in range(self._dims):
                    prefix = g(codes[j], self._widths[j], entry.h[j])
                    cell_prefix = anchor[j] >> (depths[j] - entry.h[j])
                    assert prefix == cell_prefix, (
                        f"key {codes} violates region prefix on axis {j}"
                    )
        assert key_total == self._num_keys, (
            f"counted {key_total} keys, recorded {self._num_keys}"
        )
        assert len(pages_seen) == self._data_pages, (
            f"{len(pages_seen)} pages reachable, {self._data_pages} recorded"
        )
