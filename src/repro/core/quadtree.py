"""Balanced binary quadtree / octtree — the conclusion's extension.

Setting ξ_j = 1 for every dimension turns a BMEH-tree node into a single
quadtree (d=2) or octtree (d=3) fan-out: each node holds at most 2^d
cells, one addressing bit per dimension.  The paper notes that standard
quadtrees are hard to balance and offers the BMEH-tree's root-up growth
as the natural fix; this subclass is that structure, with the stricter
per-dimension growth policy so a node really is one quadtree split.
"""

from __future__ import annotations

from typing import Sequence

from repro.storage import PageStore
from repro.core.bmeh_tree import BMEHTree


class BalancedBinaryTrie(BMEHTree):
    """A height-balanced quadtree/octtree built from BMEH machinery.

    For ``dims=2`` this is the paper's "Balanced Binary Quadtree", for
    ``dims=3`` the balanced octtree; any dimensionality works.
    """

    def __init__(
        self,
        dims: int,
        page_capacity: int,
        widths: Sequence[int] | int = 32,
        store: PageStore | None = None,
    ) -> None:
        super().__init__(
            dims,
            page_capacity,
            widths,
            store,
            xi=(1,) * dims,
            node_policy="per_dim",
        )

    @property
    def fanout(self) -> int:
        """Children per fully-expanded node (4 = quadtree, 8 = octtree)."""
        return 1 << self._dims
