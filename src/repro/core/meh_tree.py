"""MEH-tree: the unbalanced, root-down multidimensional hash tree.

The paper's second baseline (§4.3): the directory starts as a single
bounded node; when a region needs a depth its node can no longer provide,
a fresh child node is spawned *below* the region and refinement continues
inside it.  Simple to implement, but the tree's depth follows the data
density — skewed regions sit at the bottom of long chains — and, as the
paper observes, the directory can come out *worse* than the flat scheme
even for uniform keys, because every locally overflowing region pays for
a whole node page of 2^φ reserved slots.
"""

from __future__ import annotations

from repro.core.directory import DirEntry, region_indices
from repro.core.hashtree import HashTreeBase, _Step
from repro.core.node import Node


class MEHTree(HashTreeBase):
    """Multidimensional extendible hash tree (root-down growth)."""

    def _grow_directory(self, path: list[_Step], m: int) -> None:
        """Spawn a child node under the overflowing region.

        The full data page moves down into the child's single cell; the
        parent region's cells are repointed at the child.  The retried
        insert descends into the child, which has a whole fresh bit
        budget, and refines there.
        """
        leaf = path[-1]
        node, entry = leaf.node, leaf.entry
        child = Node(self._dims, self._xi, node.level + 1)
        child.array.set_at(
            0, DirEntry([0] * self._dims, entry.m, entry.ptr, entry.is_node)
        )
        child_id = self._store.allocate(child)
        self._node_count += 1
        parent_entry = DirEntry(entry.h, entry.m, child_id, True)
        for cell in region_indices(node.array.depths, leaf.anchor, entry.h):
            node.array[cell] = parent_entry
        self._store.write(leaf.node_id, node)

    def _collapse(self, path: list[_Step]) -> None:
        """Reverse the spawn: a child that has shrunk back to a single
        page cell is folded into its parent region."""
        for idx in range(len(path) - 1, 0, -1):
            step = path[idx]
            node = self._store.peek(step.node_id)
            if len(node.array) != 1:
                return
            lone = node.array.get_at(0)
            if lone.is_node or any(lone.h):
                return
            parent = path[idx - 1]
            restored = DirEntry(
                parent.entry.h, lone.m, lone.ptr, lone.is_node
            )
            anchor = self._find_anchor(parent.node, parent.entry)
            for cell in region_indices(
                parent.node.array.depths, anchor, parent.entry.h
            ):
                parent.node.array[cell] = restored
            self._store.write(parent.node_id, parent.node)
            self._store.free(step.node_id)
            self._node_count -= 1
            self._merge_in_leaf(parent.node, parent.node_id, restored)

    def _check_child_level(self, parent: Node, child: Node) -> None:
        assert child.level == parent.level + 1, (
            f"MEH child level {child.level} under parent {parent.level}"
        )
