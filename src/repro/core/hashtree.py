"""Shared machinery of the tree-structured directory schemes.

Both the MEH-tree and the BMEH-tree keep the directory in fixed-size
nodes (bounded extendible arrays of ``2^phi`` slots) and share everything
except what happens when a node can no longer accommodate a deeper
region: the MEH-tree spawns a child *below* the overflowing region
(unbalanced, root-down growth); the BMEH-tree splits the node and
registers the two halves in its parent (balanced, root-up growth, like a
B-tree).

Traversal bookkeeping: descending through a directory entry consumes that
entry's local depths ``h_j`` — not the node's global depths — because
buddy cells share one child and the child's addressing must not depend on
which buddy was traversed.  ``consumed[j]`` tracks the pseudo-key bits
spent per dimension above a node, so a region's *overall* depth is
``consumed[j] + h[j]`` and a page split along ``m`` rehashes on bit
``consumed[m] + h[m] + 1`` of the full code.

The insertion flow follows a strict ordering discipline: a full data page
is only ever rehashed once the directory on its path is *already* able to
register the two halves (``_refinable``).  When it is not, one structural
step is taken — grow/spawn/split at the right level — and the insert
retries from the root; the operation-scoped I/O dedup keeps the re-reads
free, matching the paper's in-memory working set.  This discipline is
what makes node splitting safe: a split may cut regions that cross the
cut plane (DESIGN.md §4.2), and no not-yet-registered sibling page can
exist at that moment.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, NamedTuple, Sequence

from repro.bits import low_mask
from repro.errors import DuplicateKeyError, KeyNotFoundError, StorageError
from repro.storage import DataPage, PageStore
from repro.core.directory import DirEntry, region_indices
from repro.core.interface import (
    KeyCodes,
    LeafRegion,
    MultidimensionalIndex,
    Record,
)
from repro.core.node import Node


def default_xi(dims: int, phi: int = 6) -> tuple[int, ...]:
    """Spread a node bit budget φ over the dimensions as evenly as the
    paper does (φ=6: d=2 → (3,3), d=3 → (2,2,2)); every axis gets >= 1."""
    base = max(phi // dims, 1)
    extra = max(phi - base * dims, 0)
    return tuple(base + (1 if j < extra else 0) for j in range(dims))


class _Step(NamedTuple):
    """One level of a root-to-leaf descent."""

    node_id: int
    node: Node
    anchor: tuple[int, ...]
    entry: DirEntry
    consumed: tuple[int, ...]  # bits spent per dimension *above* this node


class HashTreeBase(MultidimensionalIndex):
    """Common skeleton of :class:`MEHTree` and :class:`BMEHTree`.

    Args:
        xi: per-dimension node depth budgets ξ_j (default: φ=6 split
            evenly, the paper's experimental setting).
        node_policy: ``"total"`` lets a node double along any axis while
            its ``2^φ`` slots allow (the test in the paper's pseudocode);
            ``"per_dim"`` additionally caps each axis at ξ_j (the
            stricter reading of §3.1; compared by an ablation benchmark).
    """

    def __init__(
        self,
        dims: int,
        page_capacity: int,
        widths: Sequence[int] | int = 32,
        store: PageStore | None = None,
        xi: Sequence[int] | None = None,
        node_policy: str = "total",
    ) -> None:
        super().__init__(dims, page_capacity, widths, store)
        xi = tuple(xi) if xi is not None else default_xi(dims)
        if len(xi) != dims or any(x < 1 for x in xi):
            raise ValueError("xi needs one positive budget per dimension")
        if node_policy not in ("total", "per_dim"):
            raise ValueError(f"unknown node policy {node_policy!r}")
        self._xi = xi
        self._node_policy = node_policy
        root = Node(dims, xi, level=1)
        root.array.set_at(0, DirEntry([0] * dims, dims - 1, None))
        self._root_id = self._store.allocate(root)
        self._store.pin(self._root_id)
        self._node_count = 1
        self._data_pages = 0

    # -- state ---------------------------------------------------------------

    @property
    def xi(self) -> tuple[int, ...]:
        return self._xi

    @property
    def phi(self) -> int:
        return sum(self._xi)

    @property
    def node_count(self) -> int:
        return self._node_count

    @property
    def directory_size(self) -> int:
        """σ for the tree schemes: each node page reserves 2^φ slots."""
        return self._node_count << self.phi

    @property
    def data_page_count(self) -> int:
        return self._data_pages

    @property
    def root_id(self) -> int:
        return self._root_id

    def height(self) -> int:
        """Directory levels on the longest root-to-leaf path."""
        return self._height_of(self._root_id)

    def _height_of(self, node_id: int) -> int:
        node = self._store.peek(node_id)
        deepest = 0
        for entry in node.entries():
            if entry.is_node:
                deepest = max(deepest, self._height_of(entry.ptr))
        return 1 + deepest

    # -- descent ---------------------------------------------------------------

    def _cell_index(
        self, codes: KeyCodes, consumed: tuple[int, ...], depths: tuple[int, ...]
    ) -> tuple[int, ...]:
        """Address a node cell from the *unstripped* codes: the node reads
        bits ``consumed[j]+1 .. consumed[j]+H_j`` of each component."""
        index = []
        for code, width, spent, take in zip(
            codes, self._widths, consumed, depths
        ):
            if spent + take > width:
                raise StorageError(
                    f"directory wants bit {spent + take} of a "
                    f"{width}-bit component (axis {len(index)})"
                )
            index.append((code >> (width - spent - take)) & ((1 << take) - 1))
        return tuple(index)

    def _descend(self, codes: KeyCodes) -> list[_Step]:
        """Root-to-leaf path for ``codes`` (charged node reads)."""
        return self._descend_cached(codes, ())

    def _descend_cached(
        self, codes: KeyCodes, cache: Sequence[_Step]
    ) -> list[_Step]:
        """Root-to-leaf descent reusing the shared prefix of a prior path.

        ``cache`` is the path of the *previous* descent (a z-order
        neighbour, or this key's own path before a leaf-local retry).
        While the walk visits the same node ids in the same order, the
        cached node objects are reused without a charged
        :meth:`PageStore.read` — the batch holds its shared directory
        spine in the working set, which is exactly the amortization the
        batched executors measure.  At the first divergence the cache is
        abandoned and every node below is read (and charged) fresh.

        Anchors and entries are always recomputed from the live node
        object, so in-place node mutations (region refinement, page
        fills) never stale the cache; callers must drop the cache after
        any step that *replaces* node objects or re-roots the tree
        (``_grow_directory``, delete-side collapses).
        """
        path: list[_Step] = []
        node_id = self._root_id
        consumed = (0,) * self._dims
        live = True
        widths = self._widths
        while True:
            depth = len(path)
            if live and depth < len(cache) and cache[depth].node_id == node_id:
                node = cache[depth].node
            else:
                live = False
                node = self._store.read(node_id)
            # _cell_index, inlined: this is the descent's inner loop and
            # the call/validation overhead is measurable at bench scale.
            depths = node.array.depths
            anchor = []
            for code, width, spent, take in zip(
                codes, widths, consumed, depths
            ):
                if spent + take > width:
                    raise StorageError(
                        f"directory wants bit {spent + take} of a "
                        f"{width}-bit component (axis {len(anchor)})"
                    )
                anchor.append(
                    (code >> (width - spent - take)) & ((1 << take) - 1)
                )
            anchor = tuple(anchor)
            entry = node.array[anchor]
            path.append(_Step(node_id, node, anchor, entry, consumed))
            if not entry.is_node:
                return path
            consumed = tuple(
                spent + taken for spent, taken in zip(consumed, entry.h)
            )
            node_id = entry.ptr

    # -- search / insert ---------------------------------------------------------

    def search(self, key: Sequence[int]) -> Any:
        codes = self._check_key(key)
        with self._store.operation():
            leaf = self._descend(codes)[-1]
            if leaf.entry.ptr is None:
                raise KeyNotFoundError(f"key {codes} not found")
            page = self._store.read(leaf.entry.ptr)
            return page.get(codes)

    def insert(self, key: Sequence[int], value: Any = None) -> None:
        codes = self._check_key(key)
        with self._store.operation():
            self._insert_once(codes, value, ())

    def _insert_once(
        self, codes: KeyCodes, value: Any, cache: Sequence[_Step]
    ) -> list[_Step]:
        """One insert with shared-prefix descent; returns the final path
        (the next batch key's cache).

        Leaf-local retries resume from the just-walked path instead of
        re-reading from the root: after :meth:`_fill_nil_region` and
        after an in-node :meth:`_split_and_refine` only node objects
        already on the path changed (in place), so the re-descent costs
        no node reads at all — physically as well as logically.  Only
        :meth:`_grow_directory` (which may replace nodes or re-root the
        tree) forces a cold re-descent.
        """
        path = self._descend_cached(codes, cache)
        while True:
            leaf = path[-1]
            entry = leaf.entry
            if entry.ptr is None:
                self._fill_nil_region(leaf)
                # Only the leaf entry changed: resume from this path.
                path = self._descend_cached(codes, path)
                continue
            page = self._store.read(entry.ptr)
            if codes in page:
                raise DuplicateKeyError(f"key {codes} already present")
            if not page.is_full:
                page.put(codes, value)
                self._store.write(entry.ptr, page)
                self._num_keys += 1
                return path
            total = [
                leaf.consumed[j] + entry.h[j] for j in range(self._dims)
            ]
            m = self._next_split_dim(entry.m, total)
            if self._refinable(leaf.node, entry, m):
                self._split_and_refine(leaf, m, total[m] + 1, page)
                # In-place node mutation: the walked path stays coherent.
                path = self._descend_cached(codes, path)
            else:
                self._grow_directory(path, m)
                path = self._descend_cached(codes, ())

    def _fill_nil_region(self, leaf: _Step) -> None:
        """Allocate storage for an unallocated region (NIL pointer)."""
        leaf.entry.ptr = self._store.allocate(DataPage(self._page_capacity))
        leaf.entry.is_node = False
        self._data_pages += 1
        self._store.write(leaf.node_id, leaf.node)

    def _refinable(self, node: Node, entry: DirEntry, axis: int) -> bool:
        """Whether the region can deepen along ``axis`` within its node."""
        if entry.h[axis] + 1 <= node.array.depths[axis]:
            return True
        return node.can_grow(axis, self._node_policy)

    def _split_and_refine(
        self, leaf: _Step, m: int, overall_depth: int, page: DataPage
    ) -> None:
        """Rehash the full page on its next bit and register the halves.
        An empty half gets a NIL pointer — the paper's immediate deletion
        of empty pages."""
        sibling = self._split_page(page, m, overall_depth)
        left_ptr: int | None = leaf.entry.ptr
        right_ptr: int | None = None
        if len(page) == 0:
            self._store.free(left_ptr)
            self._data_pages -= 1
            left_ptr = None
        else:
            self._store.write(left_ptr, page)
        if len(sibling) > 0:
            right_ptr = self._store.allocate(sibling)
            self._data_pages += 1
        self._refine_region(
            leaf.node, leaf.node_id, leaf.anchor, leaf.entry,
            m, left_ptr, right_ptr, False,
        )

    def _grow_directory(self, path: list[_Step], m: int) -> None:
        """Take one structural step so a retry brings the leaf region
        closer to refinable along ``m``.  Scheme-specific."""
        raise NotImplementedError

    def _refine_region(
        self,
        node: Node,
        node_id: int,
        anchor: tuple[int, ...],
        entry: DirEntry,
        m: int,
        left: int | None,
        right: int | None,
        children_are_nodes: bool,
    ) -> None:
        """Deepen a region along ``m`` inside one node, doubling the node
        first if the region already uses all of the node's ``m`` bits.
        One node page write, however many cells move — the tree schemes'
        key advantage over the one-level directory."""
        new_depth = entry.h[m] + 1
        if new_depth > node.array.depths[m]:
            node.array.grow_rehash(m)
            anchor = tuple(
                idx * 2 if j == m else idx for j, idx in enumerate(anchor)
            )
        depths = node.array.depths
        shift = depths[m] - new_depth
        left_entry = DirEntry(entry.h, m, left, children_are_nodes and left is not None)
        right_entry = DirEntry(entry.h, m, right, children_are_nodes and right is not None)
        left_entry.h[m] = right_entry.h[m] = new_depth
        for cell in region_indices(depths, anchor, entry.h):
            side = (cell[m] >> shift) & 1
            node.array[cell] = right_entry if side else left_entry
        self._store.write(node_id, node)

    # -- node cutting (used by the BMEH split; see DESIGN.md §4.2) -------------

    def _blank_node(self, level: int, depths: Sequence[int]) -> Node:
        node = Node(self._dims, self._xi, level)
        for axis, depth in enumerate(depths):
            for _ in range(depth):
                node.array.grow(axis)
        return node

    def _cut_node(
        self, node_id: int, axis: int, consumed: tuple[int, ...]
    ) -> int:
        """Split the subtree under ``node_id`` on the next ``axis`` bit.

        The left half reuses ``node_id`` (ancestors' pointers stay
        valid); the right half is returned.  Regions that cross the cut
        plane (``h[axis] == 0``) are cut downward, K-D-B style: their
        data pages are rehashed on the cut bit, their child nodes cut
        recursively.  Heights never change, so balance is preserved.
        """
        node = self._store.read(node_id)
        depths = node.array.depths
        if depths[axis] >= 1:
            return self._cut_partition(node, node_id, axis, consumed)
        return self._cut_replicate(node, node_id, axis, consumed)

    def _cut_partition(
        self, node: Node, node_id: int, axis: int, consumed: tuple[int, ...]
    ) -> int:
        depths = node.array.depths
        target = [
            depth - (1 if j == axis else 0) for j, depth in enumerate(depths)
        ]
        left = self._blank_node(node.level, target)
        right = self._blank_node(node.level, target)
        half_mask = (1 << (depths[axis] - 1)) - 1
        moved: dict[int, DirEntry] = {}
        cut_pairs: dict[int, tuple[DirEntry, DirEntry]] = {}
        for address in range(len(node.array)):
            entry = node.array.get_at(address)
            cell = node.array.index_of(address)
            side = cell[axis] >> (depths[axis] - 1)
            new_cell = tuple(
                idx & half_mask if j == axis else idx
                for j, idx in enumerate(cell)
            )
            if entry.h[axis] >= 1:
                shallower = moved.get(id(entry))
                if shallower is None:
                    shallower = entry.clone()
                    shallower.h[axis] -= 1
                    moved[id(entry)] = shallower
                (right if side else left).array[new_cell] = shallower
            else:
                pair = cut_pairs.get(id(entry))
                if pair is None:
                    pair = self._cut_crossing_entry(entry, axis, consumed)
                    cut_pairs[id(entry)] = pair
                (right if side else left).array[new_cell] = pair[side]
        self._store.write(node_id, left)
        right_id = self._store.allocate(right)
        self._node_count += 1
        return right_id

    def _cut_replicate(
        self, node: Node, node_id: int, axis: int, consumed: tuple[int, ...]
    ) -> int:
        """Cut a node that does not address ``axis`` at all: both halves
        keep the node's full shape, every child is cut."""
        right = self._blank_node(node.level, node.array.depths)
        cut_pairs: dict[int, tuple[DirEntry, DirEntry]] = {}
        for address in range(len(node.array)):
            entry = node.array.get_at(address)
            pair = cut_pairs.get(id(entry))
            if pair is None:
                pair = self._cut_crossing_entry(entry, axis, consumed)
                cut_pairs[id(entry)] = pair
            cell = node.array.index_of(address)
            node.array[cell] = pair[0]
            right.array[cell] = pair[1]
        self._store.write(node_id, node)
        right_id = self._store.allocate(right)
        self._node_count += 1
        return right_id

    def _cut_crossing_entry(
        self, entry: DirEntry, axis: int, consumed: tuple[int, ...]
    ) -> tuple[DirEntry, DirEntry]:
        """Cut one cut-crossing region's child on the cut bit."""
        child_consumed = tuple(
            consumed[j] + entry.h[j] for j in range(self._dims)
        )
        left_ptr: int | None
        right_ptr: int | None
        if entry.ptr is None:
            left_ptr = right_ptr = None
        elif entry.is_node:
            left_ptr = entry.ptr
            right_ptr = self._cut_node(entry.ptr, axis, child_consumed)
        else:
            page = self._store.read(entry.ptr)
            sibling = self._split_page(page, axis, consumed[axis] + 1)
            left_ptr = entry.ptr
            right_ptr = None
            if len(page) == 0:
                self._store.free(entry.ptr)
                self._data_pages -= 1
                left_ptr = None
            else:
                self._store.write(entry.ptr, page)
            if len(sibling) > 0:
                right_ptr = self._store.allocate(sibling)
                self._data_pages += 1
        left_entry = DirEntry(entry.h, entry.m, left_ptr,
                              entry.is_node and left_ptr is not None)
        right_entry = DirEntry(entry.h, entry.m, right_ptr,
                               entry.is_node and right_ptr is not None)
        return left_entry, right_entry

    # -- deletion -----------------------------------------------------------------

    def delete(self, key: Sequence[int]) -> Any:
        codes = self._check_key(key)
        with self._store.operation():
            path = self._descend(codes)
            return self._delete_at(path, codes)

    def _delete_at(self, path: list[_Step], codes: KeyCodes) -> Any:
        """Remove ``codes`` at the end of an already-walked path."""
        leaf = path[-1]
        entry = leaf.entry
        if entry.ptr is None:
            raise KeyNotFoundError(f"key {codes} not found")
        page = self._store.read(entry.ptr)
        value = page.remove(codes)
        self._num_keys -= 1
        if len(page) == 0:
            # The paper's point of directory-resident local depths:
            # an emptied page is dropped immediately.
            self._store.free(entry.ptr)
            self._data_pages -= 1
            entry.ptr = None
            self._store.write(leaf.node_id, leaf.node)
        else:
            self._store.write(entry.ptr, page)
        self._merge_in_leaf(leaf.node, leaf.node_id, leaf.entry)
        self._collapse(path)
        return value

    def _merge_in_leaf(self, node: Node, node_id: int, entry: DirEntry) -> None:
        """Collapse buddy page regions inside the reached node while the
        surviving records fit one page (reversal of region refinement)."""
        while True:
            m = entry.m
            depth = entry.h[m]
            if depth == 0 or entry.is_node:
                break
            depths = node.array.depths
            anchor = self._find_anchor(node, entry)
            buddy_cell = list(anchor)
            buddy_cell[m] = anchor[m] ^ (1 << (depths[m] - depth))
            buddy = node.array[tuple(buddy_cell)]
            if (
                buddy is entry
                or buddy.is_node
                or buddy.h != entry.h
                or buddy.m != entry.m
            ):
                break
            load = sum(
                len(self._store.peek(ptr))
                for ptr in (entry.ptr, buddy.ptr)
                if ptr is not None
            )
            if load > self._page_capacity:
                break
            keep = entry.ptr
            if keep is None:
                keep = buddy.ptr
            elif buddy.ptr is not None:
                keep_page = self._store.read(keep)
                for record in self._store.read(buddy.ptr).items():
                    keep_page.put(*record)
                self._store.write(keep, keep_page)
                self._store.free(buddy.ptr)
                self._data_pages -= 1
            merged = DirEntry(entry.h, (m - 1) % self._dims, keep)
            merged.h[m] -= 1
            for cell in region_indices(depths, anchor, merged.h):
                node.array[cell] = merged
            self._store.write(node_id, node)
            self._shrink_node(node, node_id)
            entry = merged

    @staticmethod
    def _find_anchor(node: Node, entry: DirEntry) -> tuple[int, ...]:
        for address in range(len(node.array)):
            if node.array.get_at(address) is entry:
                return node.array.index_of(address)
        raise StorageError("entry not present in its node")

    def _shrink_node(self, node: Node, node_id: int) -> None:
        """Halve the node while no region uses the deepest bit of the
        most recently doubled axis."""
        while True:
            axis = node.array.last_grown_axis()
            if axis is None:
                return
            depth = node.array.depths[axis]
            if any(entry.h[axis] >= depth for entry in node.entries()):
                return
            node.array.shrink_rehash()
            self._store.write(node_id, node)

    def _collapse(self, path: list[_Step]) -> None:
        """Scheme-specific post-delete structural cleanup."""

    # -- batched operations ---------------------------------------------------------

    def insert_many(
        self, pairs: Sequence[tuple[Sequence[int], Any]]
    ) -> int:
        """Batched insert with shared-prefix descent and group commit.

        The batch is z-order-sorted, so consecutive keys share the
        deepest possible directory spine; each key's descent resumes
        from the previous key's path (:meth:`_descend_cached`) and the
        whole batch commits under one WAL durability point.  Semantics
        match the base contract: first error propagates, the z-order
        prefix before it is applied, an interrupted group rolls back.
        """
        batch = [(self._check_key(key), value) for key, value in pairs]
        batch.sort(key=lambda pair: self._zorder_key(pair[0]))
        cache: Sequence[_Step] = ()
        with self._group_commit():
            for codes, value in batch:
                with self._store.operation():
                    cache = self._insert_once(codes, value, cache)
        return len(batch)

    def search_many(self, keys: Sequence[Sequence[int]]) -> list[Any]:
        """Batched exact-match search (results in input order); probes
        run in z-order, reusing the shared directory spine between
        consecutive keys."""
        batch = [self._check_key(key) for key in keys]
        order = sorted(
            range(len(batch)), key=lambda i: self._zorder_key(batch[i])
        )
        results: list[Any] = [None] * len(batch)
        cache: Sequence[_Step] = ()
        for i in order:
            codes = batch[i]
            with self._store.operation():
                path = self._descend_cached(codes, cache)
                cache = path
                leaf = path[-1]
                if leaf.entry.ptr is None:
                    raise KeyNotFoundError(f"key {codes} not found")
                page = self._store.read(leaf.entry.ptr)
                results[i] = page.get(codes)
        return results

    def delete_many(self, keys: Sequence[Sequence[int]]) -> list[Any]:
        """Batched delete under one group commit, z-order walk order.

        The descent cache survives a delete only while the tree's shape
        did not change: page merges and entry rewrites mutate path nodes
        in place (coherent), but collapses replace node objects and may
        re-root the tree — detected via the structural counters, after
        which the next key re-descends cold.
        """
        batch = [self._check_key(key) for key in keys]
        order = sorted(
            range(len(batch)), key=lambda i: self._zorder_key(batch[i])
        )
        results: list[Any] = [None] * len(batch)
        cache: Sequence[_Step] = ()
        with self._group_commit():
            for i in order:
                codes = batch[i]
                with self._store.operation():
                    path = self._descend_cached(codes, cache)
                    shape = (self._node_count, self._data_pages, self._root_id)
                    results[i] = self._delete_at(path, codes)
                    changed = shape != (
                        self._node_count, self._data_pages, self._root_id
                    )
                    cache = () if changed else path
        return results

    # -- retrieval ------------------------------------------------------------------

    def range_search(
        self, lows: Sequence[int], highs: Sequence[int]
    ) -> Iterator[Record]:
        lows = self._check_key(lows)
        highs = self._check_key(highs)
        if any(lo > hi for lo, hi in zip(lows, highs)):
            return
        with self._store.operation():
            for ptr, task_lows, task_highs in self._leaf_tasks(lows, highs):
                page = self._store.read(ptr)
                for codes, value in page.items():
                    if all(
                        task_lows[j] <= codes[j] <= task_highs[j]
                        for j in range(self._dims)
                    ):
                        yield codes, value

    def _leaf_tasks(
        self, lows: KeyCodes, highs: KeyCodes
    ) -> Iterator[tuple[int, KeyCodes, KeyCodes]]:
        """Decompose a range query into independent per-page scan tasks.

        Yields ``(page_id, lows, highs)`` for every allocated leaf
        region overlapping the query box — the covering cells of the
        paper's PRG_Search — walking the directory with charged node
        reads.  Each task is self-contained: read the page, emit the
        records inside its bounds.  The serial :meth:`range_search`
        consumes them inline; the parallel executor
        (:func:`repro.core.rangequery.scan_parallel`) fans them across a
        thread pool.  Every page id appears at most once (a leaf region
        owns its page exclusively), so tasks commute and a merge in task
        order is deterministic.
        """
        yield from self._leaf_tasks_node(
            self._root_id, (0,) * self._dims, lows, highs
        )

    def _leaf_tasks_node(
        self,
        node_id: int,
        consumed: tuple[int, ...],
        lows: KeyCodes,
        highs: KeyCodes,
    ) -> Iterator[tuple[int, KeyCodes, KeyCodes]]:
        """The paper's PRG_Search: visit every cell overlapping the query
        box, descending once per region.

        Invariant: the first ``consumed[j]`` bits of ``lows``/``highs``
        equal this node's path prefix, so the node's cell window comes
        straight out of :meth:`_cell_index`.  Before descending into a
        region the bounds are *clamped to the region*: a dimension on
        which the region sits strictly inside the box relaxes to the
        region's own edge — the detail the paper's pseudocode leaves to
        its final predicate re-check.  Leaf regions are yielded with the
        *unclamped* node-level bounds: a wide region reached through any
        of its cells may lie outside the box, and the per-record filter
        handles that exactly as the paper's final predicate does.
        """
        node = self._store.read(node_id)
        depths = node.array.depths
        low_cell = self._cell_index(lows, consumed, depths)
        high_cell = self._cell_index(highs, consumed, depths)
        spans = [
            range(low_cell[j], high_cell[j] + 1) for j in range(self._dims)
        ]
        seen_regions: set[int] = set()
        for cell in itertools.product(*spans):
            entry = node.array[cell]
            if id(entry) in seen_regions or entry.ptr is None:
                seen_regions.add(id(entry))
                continue
            seen_regions.add(id(entry))
            if entry.is_node:
                bounds = self._clamp_to_region(
                    node, cell, entry, consumed, lows, highs
                )
                if bounds is None:
                    continue
                child_lows, child_highs = bounds
                child_consumed = tuple(
                    consumed[j] + entry.h[j] for j in range(self._dims)
                )
                yield from self._leaf_tasks_node(
                    entry.ptr, child_consumed, child_lows, child_highs
                )
            else:
                yield entry.ptr, lows, highs

    def _clamp_to_region(
        self,
        node: Node,
        cell: tuple[int, ...],
        entry: DirEntry,
        consumed: tuple[int, ...],
        lows: KeyCodes,
        highs: KeyCodes,
    ) -> tuple[KeyCodes, KeyCodes] | None:
        """Intersect the query box with a region's key-space rectangle.

        Returns clamped (lows, highs) full codes, or None when the region
        lies outside the box on some dimension (possible because a wide
        region is reached through any of its cells)."""
        depths = node.array.depths
        new_lows = list(lows)
        new_highs = list(highs)
        for j in range(self._dims):
            width = self._widths[j]
            rest = width - consumed[j] - entry.h[j]
            region_bits = cell[j] >> (depths[j] - entry.h[j])
            path_bits = (lows[j] >> (width - consumed[j])) if consumed[j] else 0
            full_prefix = (path_bits << entry.h[j]) | region_bits
            region_low = full_prefix << rest
            region_high = region_low | low_mask(rest)
            if region_high < lows[j] or region_low > highs[j]:
                return None
            new_lows[j] = max(lows[j], region_low)
            new_highs[j] = min(highs[j], region_high)
        return tuple(new_lows), tuple(new_highs)

    def items(self) -> Iterator[Record]:
        with self._store.operation():
            yield from self._items_under(self._root_id)

    def _items_under(self, node_id: int) -> Iterator[Record]:
        node = self._store.read(node_id)
        for entry in node.entries():
            if entry.ptr is None:
                continue
            if entry.is_node:
                yield from self._items_under(entry.ptr)
            else:
                yield from self._store.read(entry.ptr).items()

    def leaf_regions(self) -> Iterator[LeafRegion]:
        yield from self._leaf_regions_under(
            self._root_id, (0,) * self._dims, (0,) * self._dims
        )

    def _leaf_regions_under(
        self,
        node_id: int,
        consumed: tuple[int, ...],
        prefix: tuple[int, ...],
    ) -> Iterator[LeafRegion]:
        node = self._store.peek(node_id)
        depths = node.array.depths
        seen: set[int] = set()
        for address in range(len(node.array)):
            entry = node.array.get_at(address)
            if id(entry) in seen:
                continue
            seen.add(id(entry))
            anchor = node.array.index_of(address)
            child_consumed = tuple(
                consumed[j] + entry.h[j] for j in range(self._dims)
            )
            child_prefix = tuple(
                (prefix[j] << entry.h[j])
                | (anchor[j] >> (depths[j] - entry.h[j]))
                for j in range(self._dims)
            )
            if entry.is_node:
                yield from self._leaf_regions_under(
                    entry.ptr, child_consumed, child_prefix
                )
            else:
                yield LeafRegion(child_prefix, child_consumed, entry.ptr)

    # -- invariants -------------------------------------------------------------------

    def check_invariants(self) -> None:
        seen_pages: dict[int, int] = {}
        seen_nodes: set[int] = set()
        counted = self._check_node(
            self._root_id,
            (0,) * self._dims,
            (0,) * self._dims,
            seen_pages,
            seen_nodes,
        )
        assert counted == self._num_keys, (
            f"counted {counted} keys, recorded {self._num_keys}"
        )
        assert len(seen_pages) == self._data_pages, (
            f"{len(seen_pages)} pages reachable, {self._data_pages} recorded"
        )
        assert len(seen_nodes) == self._node_count, (
            f"{len(seen_nodes)} nodes reachable, {self._node_count} recorded"
        )

    def _check_node(
        self,
        node_id: int,
        consumed: tuple[int, ...],
        prefix: tuple[int, ...],
        seen_pages: dict[int, int],
        seen_nodes: set[int],
    ) -> int:
        assert node_id not in seen_nodes, f"node {node_id} reached twice"
        seen_nodes.add(node_id)
        node = self._store.peek(node_id)
        depths = node.array.depths
        assert len(node.array) <= node.capacity, "node exceeds its slots"
        for j in range(self._dims):
            assert consumed[j] + depths[j] <= self._widths[j], (
                f"node {node_id} addresses past width on axis {j}"
            )
        total = 0
        seen_regions: set[int] = set()
        for address in range(len(node.array)):
            entry = node.array.get_at(address)
            assert entry is not None, f"hole in node {node_id}"
            anchor = node.array.index_of(address)
            for j in range(self._dims):
                assert 0 <= entry.h[j] <= depths[j], (
                    f"entry depth {entry.h[j]} vs node depth {depths[j]}"
                )
            if id(entry) in seen_regions:
                continue
            seen_regions.add(id(entry))
            for cell in region_indices(depths, anchor, entry.h):
                assert node.array[cell] is entry, (
                    f"region not uniform in node {node_id} at {cell}"
                )
            child_consumed = tuple(
                consumed[j] + entry.h[j] for j in range(self._dims)
            )
            child_prefix = tuple(
                (prefix[j] << entry.h[j])
                | (anchor[j] >> (depths[j] - entry.h[j]))
                for j in range(self._dims)
            )
            if entry.ptr is None:
                assert not entry.is_node, "a NIL pointer cannot be a node"
                continue
            if entry.is_node:
                self._check_child_level(node, self._store.peek(entry.ptr))
                total += self._check_node(
                    entry.ptr, child_consumed, child_prefix,
                    seen_pages, seen_nodes,
                )
            else:
                owner = seen_pages.setdefault(entry.ptr, id(entry))
                assert owner == id(entry), (
                    f"page {entry.ptr} shared by two regions"
                )
                page = self._store.peek(entry.ptr)
                assert 0 < len(page) <= self._page_capacity, (
                    "page empty or overflowing"
                )
                total += len(page)
                for codes in page.keys():
                    for j in range(self._dims):
                        spent = child_consumed[j]
                        got = codes[j] >> (self._widths[j] - spent)
                        assert got == child_prefix[j], (
                            f"key {codes} violates prefix on axis {j} "
                            f"in page {entry.ptr}"
                        )
        return total

    def _check_child_level(self, parent: Node, child: Node) -> None:
        """Scheme-specific level relationship between parent and child."""
