"""Order-preserving one-dimensional extendible hashing (paper §2.1).

The variant the paper builds everything on: Fagin et al.'s extendible
hashing with two changes — no randomizing hash function (the key's own
bits address the directory, preserving order) and the local depth stored
in the directory element rather than in the page (so an emptied page can
be dropped without touching it).

Structurally this is exactly the multidimensional scheme at d = 1, so it
is implemented as such; the class adds the scalar-key convenience API the
one-dimensional setting deserves.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.storage import PageStore
from repro.core.mdeh import MDEH


class ExtendibleHashFile(MDEH):
    """A single-attribute order-preserving extendible hash file."""

    def __init__(
        self,
        page_capacity: int,
        width: int = 32,
        store: PageStore | None = None,
        dir_page_entries: int = 64,
    ) -> None:
        super().__init__(
            dims=1,
            page_capacity=page_capacity,
            widths=(width,),
            store=store,
            dir_page_entries=dir_page_entries,
        )

    @property
    def global_depth(self) -> int:
        """The directory header ``D.H`` of Figure 1."""
        return self.global_depths[0]

    @staticmethod
    def _wrap(key: int | tuple[int, ...]) -> tuple[int, ...]:
        return key if isinstance(key, tuple) else (key,)

    def insert(self, key: int | tuple[int, ...], value: Any = None) -> None:
        super().insert(self._wrap(key), value)

    def search(self, key: int | tuple[int, ...]) -> Any:
        return super().search(self._wrap(key))

    def delete(self, key: int | tuple[int, ...]) -> Any:
        return super().delete(self._wrap(key))

    def __contains__(self, key: int | tuple[int, ...]) -> bool:
        return super().__contains__(self._wrap(key))

    def scan_range(self, low: int, high: int) -> Iterator[tuple[int, Any]]:
        """All records with ``low <= key <= high`` as scalar pairs."""
        for codes, value in self.range_search((low,), (high,)):
            yield codes[0], value
