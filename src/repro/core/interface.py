"""Common interface and shared mechanics of the multidimensional indexes.

Every scheme stores records keyed by d-tuples of fixed-width pseudo-key
codes (produced by a :class:`~repro.encoding.KeyCodec` or supplied raw, as
in the paper's experiments) and supports exact-match search, insertion,
deletion and partial-range retrieval.  The mechanics every scheme shares —
validating keys, choosing the next split dimension cyclically, and
physically splitting a data page on a pseudo-key bit — live here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from contextlib import AbstractContextManager
from repro.bits import bit_at, interleave
from repro.errors import CapacityError, KeyDimensionError
from repro.storage import DataPage, PageStore

KeyCodes = tuple[int, ...]
Record = tuple[KeyCodes, Any]


@dataclass(frozen=True)
class LeafRegion:
    """One rectangle of the rectilinear partition an index induces.

    The region covers, on each dimension ``j``, the code interval whose
    first ``depths[j]`` bits equal ``prefixes[j]``; ``page`` is the data
    page storing its records (``None`` for an unallocated region).  The
    set of leaf regions tiles the whole attribute space — the structure
    the paper draws in Figure 5 and the unit of Theorem 4's range cost.
    """

    prefixes: KeyCodes
    depths: tuple[int, ...]
    page: int | None

    def bounds(self, widths: Sequence[int]) -> tuple[KeyCodes, KeyCodes]:
        """Inclusive (lows, highs) code bounds of the rectangle."""
        lows = []
        highs = []
        for prefix, depth, width in zip(self.prefixes, self.depths, widths):
            rest = width - depth
            low = prefix << rest
            lows.append(low)
            highs.append(low | ((1 << rest) - 1))
        return tuple(lows), tuple(highs)

    def volume(self, widths: Sequence[int]) -> int:
        """Number of code points the rectangle covers."""
        size = 1
        for depth, width in zip(self.depths, widths):
            size <<= width - depth
        return size


class MultidimensionalIndex(ABC):
    """Abstract base of MDEH, MEH-tree, BMEH-tree and the 1-d scheme."""

    def __init__(
        self,
        dims: int,
        page_capacity: int,
        widths: Sequence[int] | int = 32,
        store: PageStore | None = None,
    ) -> None:
        if dims < 1:
            raise KeyDimensionError("an index needs at least one dimension")
        if page_capacity < 1:
            raise ValueError("page capacity must be at least 1")
        if isinstance(widths, int):
            widths = (widths,) * dims
        if len(widths) != dims:
            raise KeyDimensionError("one pseudo-key width per dimension required")
        if any(not 1 <= w <= 64 for w in widths):
            raise ValueError("pseudo-key widths must be in 1..64")
        self._dims = dims
        self._page_capacity = page_capacity
        self._widths = tuple(widths)
        self._owns_store = store is None
        self._store = store or PageStore()
        self._num_keys = 0

    # -- shape / state -------------------------------------------------------

    @property
    def dims(self) -> int:
        return self._dims

    @property
    def page_capacity(self) -> int:
        """The paper's ``b``: records per data page."""
        return self._page_capacity

    @property
    def widths(self) -> tuple[int, ...]:
        """Pseudo-key bits per dimension (the paper's ``w``)."""
        return self._widths

    @property
    def store(self) -> PageStore:
        return self._store

    @property
    def owns_store(self) -> bool:
        """Whether the index created its store (nothing else allocates in
        it) — the precondition for the sanitizer's page-leak check."""
        return self._owns_store

    def __len__(self) -> int:
        return self._num_keys

    @property
    @abstractmethod
    def directory_size(self) -> int:
        """The paper's σ: directory elements for the one-level scheme,
        node count × 2^φ reserved slots for the tree schemes."""

    @property
    @abstractmethod
    def data_page_count(self) -> int:
        """Number of allocated data pages."""

    @property
    def load_factor(self) -> float:
        """The paper's α: keys stored / (data pages × b)."""
        pages = self.data_page_count
        return self._num_keys / (pages * self._page_capacity) if pages else 0.0

    # -- operations ----------------------------------------------------------

    @abstractmethod
    def insert(self, key: Sequence[int], value: Any = None) -> None:
        """Insert a record; duplicates raise
        :class:`~repro.errors.DuplicateKeyError`."""

    @abstractmethod
    def search(self, key: Sequence[int]) -> Any:
        """Exact-match search; raises
        :class:`~repro.errors.KeyNotFoundError` when absent."""

    @abstractmethod
    def delete(self, key: Sequence[int]) -> Any:
        """Remove a record and return its value."""

    @abstractmethod
    def range_search(
        self, lows: Sequence[int], highs: Sequence[int]
    ) -> Iterator[Record]:
        """Partial-range retrieval: all records with
        ``lows[j] <= key[j] <= highs[j]`` on every dimension."""

    @abstractmethod
    def items(self) -> Iterator[Record]:
        """Every stored record (directory order, charged like a scan)."""

    @abstractmethod
    def check_invariants(self) -> None:
        """Verify structural invariants; raises AssertionError on breakage.
        Uses uncharged reads so it never distorts the I/O ledger."""

    @abstractmethod
    def leaf_regions(self) -> Iterator[LeafRegion]:
        """The rectilinear partition of the attribute space (uncharged);
        regions tile the space exactly — ``repro.analysis.space`` checks
        this as a global invariant."""

    def __contains__(self, key: Sequence[int]) -> bool:
        from repro.errors import KeyNotFoundError

        try:
            self.search(key)
            return True
        except KeyNotFoundError:
            return False

    # -- batched operations --------------------------------------------------

    def _zorder_key(self, codes: KeyCodes) -> int:
        """Z-order (bit-interleaved) sort key of a validated code tuple.

        Consecutive keys in this order land in the same or adjacent leaf
        regions (the shuffle order follows the splitting sequence), so a
        batch sorted by it maximizes shared-prefix descent reuse.
        """
        return interleave(codes, self._widths)

    def _commit_metadata(self) -> bytes | None:
        """Metadata provider for group commits (invoked at commit time).

        Returns ``None`` for schemes without snapshot metadata support —
        the group then commits its page records without binding an
        index-level recovery point.
        """
        from repro.errors import SerializationError
        from repro.storage.wal import metadata_blob

        try:
            return metadata_blob(self)
        except SerializationError:
            return None

    def _group_commit(self) -> AbstractContextManager[None]:
        """One durability scope for a whole batch: on a WAL backend the
        batch's records coalesce under a single COMMIT carrying this
        index's metadata; elsewhere a transparent no-op."""
        return self._store.group(metadata=self._commit_metadata)

    def insert_many(
        self, pairs: Sequence[tuple[Sequence[int], Any]]
    ) -> int:
        """Insert a batch of ``(key, value)`` records; returns the count.

        The batch is validated up front, sorted into z-order (the
        locality order of the index's splitting sequence) and applied
        under one group commit.  Partial failure: the first error (e.g.
        a :class:`~repro.errors.DuplicateKeyError`) propagates; records
        preceding the failing one *in z-order* — not input order — are
        already applied and, on a WAL backend, the interrupted group is
        rolled back to the previous commit point on recovery.

        Subclasses override this with shared-prefix descent; this
        default provides the same semantics at op-at-a-time cost.
        """
        batch = [(self._check_key(key), value) for key, value in pairs]
        batch.sort(key=lambda pair: self._zorder_key(pair[0]))
        with self._group_commit():
            for codes, value in batch:
                self.insert(codes, value)
        return len(batch)

    def search_many(self, keys: Sequence[Sequence[int]]) -> list[Any]:
        """Exact-match search for a batch of keys.

        Results are returned in *input* order; internally the probes run
        in z-order so consecutive lookups share directory paths.  A
        missing key raises :class:`~repro.errors.KeyNotFoundError`,
        exactly as :meth:`search` would.
        """
        batch = [self._check_key(key) for key in keys]
        order = sorted(range(len(batch)), key=lambda i: self._zorder_key(batch[i]))
        results: list[Any] = [None] * len(batch)
        for i in order:
            results[i] = self.search(batch[i])
        return results

    def delete_many(self, keys: Sequence[Sequence[int]]) -> list[Any]:
        """Delete a batch of keys, returning their values in input order.

        Applied in z-order under one group commit; partial-failure
        semantics match :meth:`insert_many` (the z-order prefix before
        the failing key is applied, the error propagates).
        """
        batch = [self._check_key(key) for key in keys]
        order = sorted(range(len(batch)), key=lambda i: self._zorder_key(batch[i]))
        results: list[Any] = [None] * len(batch)
        with self._group_commit():
            for i in order:
                results[i] = self.delete(batch[i])
        return results

    # -- shared mechanics -----------------------------------------------------

    def _check_key(self, key: Sequence[int]) -> KeyCodes:
        if len(key) != self._dims:
            raise KeyDimensionError(
                f"key has {len(key)} components, index has {self._dims}"
            )
        codes = []
        for j, (code, width) in enumerate(zip(key, self._widths)):
            if not isinstance(code, int) or isinstance(code, bool):
                raise KeyDimensionError(f"component {j} is not an int: {code!r}")
            if not 0 <= code < (1 << width):
                raise KeyDimensionError(
                    f"component {j} = {code} outside [0, 2^{width})"
                )
            codes.append(code)
        return tuple(codes)

    def _next_split_dim(self, after: int, total_depths: Sequence[int]) -> int:
        """Cyclic split-dimension choice, skipping exhausted dimensions.

        ``after`` is the region's stored ``m``; the successor is
        ``(m+1) mod d`` (the paper updates ``m`` before using it), moving
        on — as the paper prescribes for shorter key encodings — past any
        dimension whose full ``w_j`` bits are already consumed.
        """
        for offset in range(1, self._dims + 1):
            dim = (after + offset) % self._dims
            if total_depths[dim] < self._widths[dim]:
                return dim
        raise CapacityError(
            f"more than b={self._page_capacity} keys share all "
            f"{sum(self._widths)} pseudo-key bits"
        )

    def _split_page(
        self, page: DataPage, dim: int, overall_depth: int
    ) -> DataPage:
        """Rehash ``page`` on bit ``overall_depth`` of dimension ``dim``.

        Keys whose bit is 1 move to the returned new page; keys with bit 0
        stay.  ``overall_depth`` is 1-indexed from the MSB — it is the
        region's *new* total depth along ``dim``.
        """
        sibling = DataPage(self._page_capacity)
        width = self._widths[dim]
        moving = [
            key
            for key in page.keys()
            if bit_at(key[dim], width, overall_depth)
        ]
        for key in moving:
            sibling.put(key, page.remove(key))
        return sibling
