"""Partial-range query descriptions (paper §1 and §4.4).

A :class:`RangeQuery` is the predicate
``F = AND_{j in S} (alpha_j <= k_j <= beta_j)`` — a box constraint over a
subset ``S`` of the dimensions.  Unconstrained dimensions take the
all-zeros / all-ones bounds, exactly the paper's substitution, so every
query becomes a full box in pseudo-key space.  Exact-match and
partial-match queries are the degenerate cases where intervals collapse
to points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.bits import low_mask
from repro.errors import KeyDimensionError


@dataclass(frozen=True)
class RangeQuery:
    """A box predicate over pseudo-key codes.

    Attributes:
        lows: per-dimension inclusive lower code bounds.
        highs: per-dimension inclusive upper code bounds.
    """

    lows: tuple[int, ...]
    highs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise KeyDimensionError("bounds of different dimensionality")

    @property
    def dims(self) -> int:
        return len(self.lows)

    @property
    def is_empty(self) -> bool:
        return any(lo > hi for lo, hi in zip(self.lows, self.highs))

    @classmethod
    def box(
        cls,
        widths: Sequence[int],
        constraints: dict[int, tuple[int | None, int | None]],
    ) -> "RangeQuery":
        """Build a partial-range query from per-dimension constraints.

        ``constraints`` maps a dimension index to ``(alpha, beta)``;
        ``None`` on either side (or an absent dimension) leaves that side
        unconstrained.
        """
        lows = []
        highs = []
        for j, width in enumerate(widths):
            alpha, beta = constraints.get(j, (None, None))
            lows.append(0 if alpha is None else alpha)
            highs.append(low_mask(width) if beta is None else beta)
        return cls(tuple(lows), tuple(highs))

    @classmethod
    def exact(cls, codes: Sequence[int]) -> "RangeQuery":
        """The exact-match special case."""
        return cls(tuple(codes), tuple(codes))

    @classmethod
    def partial_match(
        cls, widths: Sequence[int], fixed: dict[int, int]
    ) -> "RangeQuery":
        """The partial-match special case: some dimensions pinned to a
        value, the others free."""
        return cls.box(widths, {j: (v, v) for j, v in fixed.items()})

    def contains(self, codes: Sequence[int]) -> bool:
        return all(
            lo <= c <= hi for lo, c, hi in zip(self.lows, codes, self.highs)
        )

    def run(self, index: Any) -> Iterator[Any]:
        """Execute against any index exposing ``range_search``."""
        if self.is_empty:
            return iter(())
        return index.range_search(self.lows, self.highs)
