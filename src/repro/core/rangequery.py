"""Partial-range query descriptions (paper §1 and §4.4).

A :class:`RangeQuery` is the predicate
``F = AND_{j in S} (alpha_j <= k_j <= beta_j)`` — a box constraint over a
subset ``S`` of the dimensions.  Unconstrained dimensions take the
all-zeros / all-ones bounds, exactly the paper's substitution, so every
query becomes a full box in pseudo-key space.  Exact-match and
partial-match queries are the degenerate cases where intervals collapse
to points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.bits import low_mask
from repro.errors import KeyDimensionError


@dataclass(frozen=True)
class RangeQuery:
    """A box predicate over pseudo-key codes.

    Attributes:
        lows: per-dimension inclusive lower code bounds.
        highs: per-dimension inclusive upper code bounds.
    """

    lows: tuple[int, ...]
    highs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise KeyDimensionError("bounds of different dimensionality")

    @property
    def dims(self) -> int:
        return len(self.lows)

    @property
    def is_empty(self) -> bool:
        return any(lo > hi for lo, hi in zip(self.lows, self.highs))

    @classmethod
    def box(
        cls,
        widths: Sequence[int],
        constraints: dict[int, tuple[int | None, int | None]],
    ) -> "RangeQuery":
        """Build a partial-range query from per-dimension constraints.

        ``constraints`` maps a dimension index to ``(alpha, beta)``;
        ``None`` on either side (or an absent dimension) leaves that side
        unconstrained.
        """
        lows = []
        highs = []
        for j, width in enumerate(widths):
            alpha, beta = constraints.get(j, (None, None))
            lows.append(0 if alpha is None else alpha)
            highs.append(low_mask(width) if beta is None else beta)
        return cls(tuple(lows), tuple(highs))

    @classmethod
    def exact(cls, codes: Sequence[int]) -> "RangeQuery":
        """The exact-match special case."""
        return cls(tuple(codes), tuple(codes))

    @classmethod
    def partial_match(
        cls, widths: Sequence[int], fixed: dict[int, int]
    ) -> "RangeQuery":
        """The partial-match special case: some dimensions pinned to a
        value, the others free."""
        return cls.box(widths, {j: (v, v) for j, v in fixed.items()})

    def contains(self, codes: Sequence[int]) -> bool:
        return all(
            lo <= c <= hi for lo, c, hi in zip(self.lows, codes, self.highs)
        )

    def run(self, index: Any, parallelism: int | None = None) -> Iterator[Any]:
        """Execute against any index exposing ``range_search``.

        ``parallelism`` > 1 routes through :func:`scan_parallel`, which
        fans the per-page leaf scans across a thread pool (requires an
        index with ``_leaf_tasks``; falls back to the serial scanner
        otherwise).
        """
        if self.is_empty:
            return iter(())
        if parallelism is not None and parallelism > 1:
            return iter(scan_parallel(index, self.lows, self.highs, parallelism))
        return index.range_search(self.lows, self.highs)


def scan_parallel(
    index: Any,
    lows: Sequence[int],
    highs: Sequence[int],
    parallelism: int = 4,
) -> list[tuple[tuple[int, ...], Any]]:
    """Parallel range scan: decompose, fan out, merge deterministically.

    Phase 1 (serial, charged): walk the directory once via the index's
    ``_leaf_tasks`` decomposition, collecting one independent scan task
    per overlapping data page.  Phase 2 (parallel): fan the page scans
    across a ``ThreadPoolExecutor`` — every worker read goes through
    :meth:`PageStore.read_shared`, which holds the store latch's shared
    side so a concurrent flush/group-commit (exclusive side) can never
    interleave with it, and serializes the buffer pool's LRU mutation.

    The merged output is deterministic: ``Executor.map`` preserves task
    order, tasks are generated in directory order, and every page
    belongs to exactly one task — so the result equals the serial
    ``range_search`` output, record for record.  Logical charges are
    also identical: the same directory walk, then each page read once.

    Falls back to the serial scanner when the index has no task
    decomposition or ``parallelism <= 1``.
    """
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    lows = tuple(lows)
    highs = tuple(highs)
    leaf_tasks = getattr(index, "_leaf_tasks", None)
    if leaf_tasks is None or parallelism == 1:
        return list(index.range_search(lows, highs))
    if any(lo > hi for lo, hi in zip(lows, highs)):
        return []
    checked = index._check_key(lows), index._check_key(highs)
    lows, highs = checked
    store = index.store
    # A snapshot overlay active on this thread (see
    # ``StoreSnapshot.reading``) must follow the scan into the pool's
    # worker threads: thread-locals do not propagate, so capture the
    # handle here and re-enter it around every per-page task.
    snap = None
    current = getattr(store, "current_snapshot", None)
    if current is not None:
        snap = current()
    with store.operation():
        tasks = list(leaf_tasks(lows, highs))
    if not tasks:
        return []
    dims = index.dims

    def scan(task: tuple[int, tuple[int, ...], tuple[int, ...]]):
        ptr, task_lows, task_highs = task
        if snap is not None:
            with snap.reading():
                page = snap.read(ptr)
        else:
            page = store.read_shared(ptr)
        return [
            (codes, value)
            for codes, value in page.items()
            if all(
                task_lows[j] <= codes[j] <= task_highs[j]
                for j in range(dims)
            )
        ]

    from concurrent.futures import ThreadPoolExecutor

    workers = min(parallelism, len(tasks))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        chunks = list(pool.map(scan, tasks))
    return [record for chunk in chunks for record in chunk]
