"""Directory entries and region geometry shared by every scheme.

A *directory element* (paper §2.1) carries d local depths ``h_j``, the
dimension ``m`` of the most recent expansion, and a pointer.  All cells of
one *region* — the rectangle of cells addressing the same child — share a
single :class:`DirEntry` object; refining a region replaces the object in
the affected cells.  Sharing makes the region structure explicit (two
cells belong to the same region iff they hold the same entry object),
which both the algorithms and the invariant checkers exploit.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

__all__ = ["DirEntry", "region_indices", "region_size"]


class DirEntry:
    """One region's directory state.

    Attributes:
        h: local depths per dimension — how many of the addressing bits at
            this directory level actually discriminate the region.
        m: the dimension (0-based) along which the region last expanded;
            the next split dimension is chosen cyclically after it.
        ptr: page id of the child (a data page or a directory node), or
            ``None`` for an unallocated region.
        is_node: whether ``ptr`` names a directory node rather than a data
            page.
    """

    __slots__ = ("h", "m", "ptr", "is_node")

    def __init__(
        self,
        h: Sequence[int],
        m: int,
        ptr: int | None,
        is_node: bool = False,
    ) -> None:
        self.h = list(h)
        self.m = m
        self.ptr = ptr
        self.is_node = is_node

    def clone(self) -> "DirEntry":
        return DirEntry(self.h, self.m, self.ptr, self.is_node)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "node" if self.is_node else "page"
        return f"DirEntry(h={self.h}, m={self.m}, {kind}:{self.ptr})"


def region_indices(
    depths: Sequence[int], anchor: Sequence[int], h: Sequence[int]
) -> Iterator[tuple[int, ...]]:
    """All cell indices of the region containing ``anchor``.

    A directory with global depths ``depths`` addresses cells by
    ``depths[j]`` bits per dimension; a region of local depths ``h`` fixes
    the top ``h[j]`` of them, so its cells form a contiguous per-dimension
    block of ``2^(depths[j] - h[j])`` indices around the anchor.
    """
    spans = []
    for j, (H_j, h_j) in enumerate(zip(depths, h)):
        free = H_j - h_j
        if free < 0:
            raise ValueError(f"local depth {h_j} exceeds global {H_j} on axis {j}")
        base = (anchor[j] >> free) << free
        spans.append(range(base, base + (1 << free)))
    return itertools.product(*spans)


def region_size(depths: Sequence[int], h: Sequence[int]) -> int:
    """Number of cells in a region of local depths ``h``."""
    size = 1
    for H_j, h_j in zip(depths, h):
        size <<= H_j - h_j
    return size
