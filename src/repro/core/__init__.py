"""The index schemes: the paper's contribution and its baselines."""

from repro.core.interface import MultidimensionalIndex
from repro.core.directory import DirEntry, region_indices, region_size
from repro.core.node import Node, NodeCodec
from repro.core.ehash import ExtendibleHashFile
from repro.core.mdeh import MDEH
from repro.core.hashtree import HashTreeBase, default_xi
from repro.core.meh_tree import MEHTree
from repro.core.bmeh_tree import BMEHTree
from repro.core.quadtree import BalancedBinaryTrie
from repro.core.rangequery import RangeQuery
from repro.core.facade import MultiKeyFile
from repro.core.bulk import bulk_load

__all__ = [
    "MultidimensionalIndex",
    "DirEntry",
    "region_indices",
    "region_size",
    "Node",
    "NodeCodec",
    "ExtendibleHashFile",
    "MDEH",
    "HashTreeBase",
    "default_xi",
    "MEHTree",
    "BMEHTree",
    "BalancedBinaryTrie",
    "RangeQuery",
    "MultiKeyFile",
    "bulk_load",
]
