"""Application-facing facade: a multikey file over typed attributes.

The index classes speak pseudo-key code tuples; :class:`MultiKeyFile`
pairs one of them with a :class:`~repro.encoding.KeyCodec` so callers
insert and query with their own attribute values (floats, strings,
datetimes, ...).  This is the class the examples use.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence, Type

from repro.encoding import KeyCodec
from repro.errors import KeyDimensionError
from repro.storage import PageStore
from repro.core.bmeh_tree import BMEHTree
from repro.core.interface import MultidimensionalIndex


class MultiKeyFile:
    """A typed multidimensional file on top of an index scheme.

    Args:
        codec: per-dimension attribute encoders.
        page_capacity: records per data page.
        scheme: index class (default :class:`BMEHTree`, the paper's
            contribution).
        store: page store to build on (fresh in-memory one by default).
        **scheme_options: forwarded to the scheme constructor
            (``xi``, ``node_policy``, ``dir_page_entries``, ...).
    """

    def __init__(
        self,
        codec: KeyCodec,
        page_capacity: int = 32,
        scheme: Type[MultidimensionalIndex] = BMEHTree,
        store: PageStore | None = None,
        **scheme_options: Any,
    ) -> None:
        self._codec = codec
        self._index = scheme(
            dims=codec.dimensions,
            page_capacity=page_capacity,
            widths=codec.widths,
            store=store,
            **scheme_options,
        )

    @classmethod
    def from_index(
        cls, codec: KeyCodec, index: MultidimensionalIndex
    ) -> "MultiKeyFile":
        """Wrap an already-built index (e.g. one returned by
        :func:`repro.storage.wal.recover_index`) in a typed facade.

        The codec must match the index's shape; a served index reopened
        after a crash keeps its data but needs the application's codec
        re-attached.
        """
        if codec.dimensions != index.dims or codec.widths != index.widths:
            raise KeyDimensionError(
                f"codec shape {codec.dimensions}d/{codec.widths} does not "
                f"match index shape {index.dims}d/{index.widths}"
            )
        file = cls.__new__(cls)
        file._codec = codec
        file._index = index
        return file

    @property
    def codec(self) -> KeyCodec:
        return self._codec

    @property
    def index(self) -> MultidimensionalIndex:
        """The underlying index, for stats and invariant checks."""
        return self._index

    @property
    def store(self) -> PageStore:
        return self._index.store

    def __len__(self) -> int:
        return len(self._index)

    def insert(self, key: Sequence[Any], value: Any = None) -> None:
        self._index.insert(self._codec.encode(key), value)

    def search(self, key: Sequence[Any]) -> Any:
        return self._index.search(self._codec.encode(key))

    def delete(self, key: Sequence[Any]) -> Any:
        return self._index.delete(self._codec.encode(key))

    def insert_many(
        self, pairs: Sequence[tuple[Sequence[Any], Any]]
    ) -> int:
        """Batched insert: encode each key and delegate to the index's
        batch executor (z-order walk, shared-prefix descent, one group
        commit).  Returns the number of records inserted."""
        return self._index.insert_many(
            [(self._codec.encode(key), value) for key, value in pairs]
        )

    def search_many(self, keys: Sequence[Sequence[Any]]) -> list[Any]:
        """Batched exact-match search; results in input order."""
        return self._index.search_many(
            [self._codec.encode(key) for key in keys]
        )

    def delete_many(self, keys: Sequence[Sequence[Any]]) -> list[Any]:
        """Batched delete; returns the removed values in input order."""
        return self._index.delete_many(
            [self._codec.encode(key) for key in keys]
        )

    def __contains__(self, key: Sequence[Any]) -> bool:
        return self._codec.encode(key) in self._index

    def range_search(
        self,
        lows: Sequence[Any | None],
        highs: Sequence[Any | None],
        parallelism: int | None = None,
    ) -> Iterator[tuple[tuple[Any, ...], Any]]:
        """Partial-range retrieval over attribute values.

        ``None`` bounds leave a side unconstrained.  Yields
        ``(decoded key, value)`` pairs.  ``parallelism`` > 1 fans the
        per-page leaf scans across a thread pool (see
        :func:`repro.core.rangequery.scan_parallel`); the merged output
        is identical to the serial scan.
        """
        lo_codes, hi_codes = self._codec.encode_range(lows, highs)
        if parallelism is not None and parallelism > 1:
            from repro.core.rangequery import scan_parallel

            records: Iterator[tuple[tuple[int, ...], Any]] = iter(
                scan_parallel(self._index, lo_codes, hi_codes, parallelism)
            )
        else:
            records = self._index.range_search(lo_codes, hi_codes)
        for codes, value in records:
            yield self._codec.decode(codes), value

    def items(self) -> Iterator[tuple[tuple[Any, ...], Any]]:
        """Every stored record, decoded, from a point-in-time snapshot.

        Built on :meth:`PageStore.snapshot` (MVCC): opening the snapshot
        briefly takes the latch's exclusive side to align with an
        operation boundary, but the iteration itself reads preserved
        page versions latch-free — a concurrent writer is never blocked
        by a long scan, and the scan sees exactly the open-time state.
        """
        with self.store.snapshot() as snap, snap.reading():
            snapshot = list(self._index.items())
        for codes, value in snapshot:
            yield self._codec.decode(codes), value
