"""Bulk loading: build a BMEH-tree bottom-up from a key set.

Incremental insertion pays a root-to-leaf traversal plus split I/O per
record.  For an initially-known key set the final partition can be
computed directly — with pure insertions it depends only on the final
key set (a region is refined iff its parent holds more than ``b`` keys),
not on arrival order — and the directory assembled bottom-up so every
data page and directory node is written exactly once.

The loader works in three stages:

1. **split trie** — refine the record set with the exact incremental
   rules (cyclic split dimension, exhausted-axis skipping, empty halves
   as NIL), so the leaf partition is *identical* to what one-by-one
   insertion would produce;
2. **layer packing** — repeatedly absorb maximal packable subtries
   (those whose per-dimension bit shapes fit one node's budget) into
   directory nodes, bottom layer first.  Every packed unit of layer k
   has height exactly k, so the result is perfectly balanced with no
   padding;
3. **materialization** — each packed subtrie expands into one node
   through the same region-refinement moves the incremental path uses.

Result: the same partition and height as incremental insertion, a
similar node count, at a fraction of the I/O.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.bits import bit_at
from repro.errors import DuplicateKeyError
from repro.storage import DataPage
from repro.core.bmeh_tree import BMEHTree
from repro.core.directory import DirEntry, region_indices
from repro.core.node import Node


class _Split:
    """Interior split-trie node."""

    __slots__ = ("dim", "low", "high")

    def __init__(self, dim: int, low, high) -> None:
        self.dim = dim
        self.low = low
        self.high = high


class _Built:
    """A finished unit: a data page, a directory node, or NIL."""

    __slots__ = ("ptr", "is_node")

    def __init__(self, ptr: int | None, is_node: bool) -> None:
        self.ptr = ptr
        self.is_node = is_node


def bulk_load(
    index: BMEHTree,
    items: Iterable[tuple[Sequence[int], Any]],
) -> BMEHTree:
    """Populate an *empty* BMEH-tree from ``(key, value)`` pairs.

    Raises:
        ValueError: if the index already holds records.
        DuplicateKeyError: on repeated keys in ``items``.
        CapacityError: if more than ``b`` records share every
            addressable pseudo-key bit.
    """
    if len(index) != 0:
        raise ValueError("bulk_load needs an empty index")
    records = []
    seen: set[tuple[int, ...]] = set()
    for key, value in items:
        codes = index._check_key(key)
        if codes in seen:
            raise DuplicateKeyError(f"key {codes} appears twice")
        seen.add(codes)
        records.append((codes, value))
    if not records:
        return index

    with index.store.operation():
        trie = _build_trie(index, records, [0] * index.dims, index.dims - 1)
        level = 1
        while not (isinstance(trie, _Built) and trie.is_node):
            trie = _pack_layer(index, trie, level)
            level += 1
        built = index.store.peek(trie.ptr)
        index.store.write(index.root_id, built)
        index.store.free(trie.ptr)
        index._node_count -= 1
    index._num_keys = len(records)
    return index


def _build_trie(index: BMEHTree, records, depths, m):
    """Refine a record set with the index's split rules; pages are
    allocated immediately (each is written exactly once)."""
    if len(records) <= index.page_capacity:
        if not records:
            return _Built(None, False)
        page = DataPage(index.page_capacity)
        for codes, value in records:
            page.put(codes, value)
        ptr = index.store.allocate(page)
        index._data_pages += 1
        return _Built(ptr, False)
    dim = index._next_split_dim(m, depths)
    position = depths[dim] + 1
    width = index.widths[dim]
    low, high = [], []
    for record in records:
        (high if bit_at(record[0][dim], width, position) else low).append(
            record
        )
    child_depths = list(depths)
    child_depths[dim] += 1
    return _Split(
        dim,
        _build_trie(index, low, child_depths, dim),
        _build_trie(index, high, child_depths, dim),
    )


def _packable(index: BMEHTree, shape: Sequence[int]) -> bool:
    if sum(shape) > index.phi:
        return False
    if index._node_policy == "per_dim":
        return all(s <= x for s, x in zip(shape, index.xi))
    return True


def _pack_layer(index: BMEHTree, trie, level: int):
    """Replace maximal packable subtries with height-``level`` nodes."""
    if isinstance(trie, _Built):
        if trie.ptr is None:
            return trie  # NIL needs no node at any level
        return _materialize(index, trie, level)
    shape = _layer_shape(index, trie)
    if _packable(index, shape):
        return _materialize(index, trie, level)
    return _Split(
        trie.dim,
        _pack_layer(index, trie.low, level),
        _pack_layer(index, trie.high, level),
    )


def _layer_shape(index: BMEHTree, trie) -> tuple[int, ...]:
    if isinstance(trie, _Built):
        return (0,) * index.dims
    low = _layer_shape(index, trie.low)
    high = _layer_shape(index, trie.high)
    merged = [max(a, b) for a, b in zip(low, high)]
    merged[trie.dim] += 1
    return tuple(merged)


def _materialize(index: BMEHTree, trie, level: int) -> _Built:
    """Expand one packable subtrie into a single directory node using
    the same region-refinement moves as incremental insertion."""
    node = Node(index.dims, index.xi, level)
    root_entry = DirEntry([0] * index.dims, index.dims - 1, trie, True)
    node.array.set_at(0, root_entry)
    frontier = [root_entry]
    while frontier:
        next_frontier = []
        for entry in frontier:
            subtrie = entry.ptr
            if isinstance(subtrie, _Built):
                entry.ptr = subtrie.ptr
                entry.is_node = subtrie.is_node
                continue
            m = subtrie.dim
            new_depth = entry.h[m] + 1
            if new_depth > node.array.depths[m]:
                node.array.grow_rehash(m)
            anchor = _anchor_of(node, entry)
            depths = node.array.depths
            shift = depths[m] - new_depth
            sides = (
                DirEntry(entry.h, m, subtrie.low, True),
                DirEntry(entry.h, m, subtrie.high, True),
            )
            for side in sides:
                side.h[m] = new_depth
            for cell in region_indices(depths, anchor, entry.h):
                bit = (cell[m] >> shift) & 1
                node.array[cell] = sides[bit]
            next_frontier.extend(sides)
        frontier = next_frontier
    node_id = index.store.allocate(node)
    index._node_count += 1
    return _Built(node_id, True)


def _anchor_of(node: Node, entry: DirEntry) -> tuple[int, ...]:
    for address in range(len(node.array)):
        if node.array.get_at(address) is entry:
            return node.array.index_of(address)
    raise AssertionError("entry vanished from its node during assembly")
