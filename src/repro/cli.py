"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables [--table 2|3|4] [--n N] [--schemes ...]`` — regenerate the
  paper's evaluation tables (measured next to published values);
* ``figures [--figure 6|7] [--n N]`` — the directory-growth series;
* ``stats --scheme S --workload W [--n N] [-b B]`` — build one index and
  print its structural profile;
* ``bench [--n N] [--out PATH] [--compare BASELINE [--tolerance T]]
  [--speedup-vs BASELINE [--speedup-min R]]
  [--modes single batched rangepar served sharded migration replication]
  [--batch-size K]
  [--parallelism P]``
  — run the benchmark suite over memory / file / file+pool / file+wal
  storage configurations, including the batched-execution cells
  (``insert_many`` + group commit vs op-at-a-time), the parallel
  range-scanner cells and the served cells (a real TCP server under
  concurrent clients, gating write coalescing), write a
  ``BENCH_*.json`` baseline, or gate against a committed one (exit 1 on
  regressions);
* ``serve [--host H] [--port P] [--wal PATH] [--dims D] [--widths W]
  [-b B] [--window MS] [--max-batch K] [--max-inflight N]
  [--pipeline N] [--shards N] [--workdir DIR]`` — serve an index over
  the wire protocol; with ``--wal`` the page file is durable and an
  existing file is reopened through WAL recovery.  With ``--shards N``
  (N > 1) the z-order keyspace is range-partitioned across N worker
  processes — each with its own page store, WAL and write aggregator —
  behind a scatter-gather router; ``--workdir`` makes the cluster
  durable (per-shard WALs plus the persisted partition).  Prints
  ``serving on HOST:PORT`` once bound and drains gracefully on
  SIGTERM/SIGINT;
* ``ping [--host H] --port P`` — round-trip a served index and print
  its shape;
* ``topology [--host H] --port P`` — print a served endpoint's shard
  topology (epoch, z-range cuts, worker addresses);
* ``rebalance [--host H] --port P [split|merge|promote|status]
  [--shard S] [--cut Z]`` — drive an online shard split or merge
  against a running sharded cluster (zero acked-write loss; see
  ``repro.server.migrate``), promote a dead shard's most-caught-up
  read replica to primary (``promote --shard S``; see
  ``repro.server.replica``), or print the rebalance status.  ``serve
  --shards N --workdir DIR --auto-split-keys K [--max-shards M]`` does
  the split automatically whenever a shard outgrows ``K`` keys, and
  ``--auto-failover`` promotes automatically when a primary dies;
* ``lint [paths...]`` — the repo-specific static pass (backend bypasses,
  float equality, mutable defaults, missing core annotations);
* ``analyze [paths...] [--graph PATH]`` — the dataflow static analyzer:
  alias-aware REP101/105/106, the REP2xx concurrency rules (blocking
  calls in async code, latch leaks, lock-order cycles) and the REP3xx
  durability rules (group-commit pairing); ``--graph`` writes the
  lock-order graph as DOT;
* ``typecheck`` — mypy strict gate over ``storage/`` and ``server/``
  (skipped cleanly when mypy is not installed);
* ``check [--n N] [--seed S]`` — lint + analyze + typecheck plus a
  sanitizer-instrumented random workload over every index scheme
  (structural smoke test);
* ``demo`` — a 30-second guided tour of the API.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.stats import (
    format_histogram,
    node_level_profile,
    page_fill_histogram,
    region_depth_histogram,
    summarize,
)


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.bench import PAPER_TABLES, format_table, run_table_cell
    from repro.bench.harness import TABLE_EXPERIMENTS
    from repro.bench.paper_data import PAGE_CAPACITIES

    wanted = [f"table{t}" for t in args.table] if args.table else list(
        TABLE_EXPERIMENTS
    )
    for name in wanted:
        experiment = TABLE_EXPERIMENTS[name]
        measured = {}
        for scheme in args.schemes:
            for b in PAGE_CAPACITIES:
                print(
                    f"running {name} {scheme} b={b} ...",
                    file=sys.stderr,
                    flush=True,
                )
                measured[(scheme, b)] = run_table_cell(
                    experiment, scheme, b, n=args.n
                )
        print()
        print(format_table(name, measured, PAPER_TABLES[name]))
        print()
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench import format_series, growth_series
    from repro.bench.harness import FIGURE_EXPERIMENTS

    wanted = [f"fig{f}" for f in args.figure] if args.figure else list(
        FIGURE_EXPERIMENTS
    )
    for name in wanted:
        experiment = FIGURE_EXPERIMENTS[name]
        series = []
        for scheme in args.schemes:
            print(f"running {name} {scheme} ...", file=sys.stderr, flush=True)
            _, curve = growth_series(experiment, scheme, n=args.n)
            series.append(curve)
        print()
        print(format_series(name, series))
        print()
    return 0


def _build_for_stats(args: argparse.Namespace):
    from repro import (
        BMEHTree,
        BalancedBinaryTrie,
        GridFile,
        KDBTree,
        MDEH,
        MEHTree,
    )
    from repro.workloads import (
        clustered_keys,
        normal_keys,
        uniform_keys,
        unique,
    )

    schemes = {
        "mdeh": MDEH,
        "meh": MEHTree,
        "bmeh": BMEHTree,
        "quadtree": BalancedBinaryTrie,
        "gridfile": GridFile,
        "kdb": KDBTree,
    }
    workloads = {
        "uniform": uniform_keys,
        "normal": normal_keys,
        "clustered": clustered_keys,
    }
    keys = unique(workloads[args.workload](args.n, dims=args.dims))
    index = schemes[args.scheme](args.dims, args.page_capacity, widths=31)
    for key in keys:
        index.insert(key)
    return index


def _cmd_stats(args: argparse.Namespace) -> int:
    index = _build_for_stats(args)
    summary = summarize(index)
    print("\n".join(summary.as_lines()))
    print("\nregion depth histogram (bits):")
    print(format_histogram(region_depth_histogram(index)))
    print("\npage fill histogram (records/page):")
    print(format_histogram(page_fill_histogram(index)))
    from repro.core.hashtree import HashTreeBase

    if isinstance(index, HashTreeBase):
        print("\nper-level directory profile:")
        for level, row in node_level_profile(index).items():
            print(
                f"  level {level}: {row['nodes']:>5.0f} nodes, "
                f"{row['mean_cells']:.1f} cells, "
                f"{row['mean_regions']:.1f} regions each"
            )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.bench.profiling import DEFAULT_PROFILE_CELLS, profile_cells

    cells = DEFAULT_PROFILE_CELLS
    if args.modes:
        cells = tuple(c for c in cells if c.mode in args.modes)
        if not cells:
            print(f"no profile cells for modes {args.modes}",
                  file=sys.stderr)
            return 2

    def progress(label: str) -> None:
        print(f"profiling {label} ...", file=sys.stderr, flush=True)

    report = profile_cells(
        cells, args.n, top=args.top, sort=args.sort, progress=progress
    )
    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.batched import (
        batched_efficiency_failures,
        parallel_consistency_failures,
    )
    from repro.bench.served import served_coalescing_failures
    from repro.bench.sharded import sharded_scaling_failures
    from repro.bench.migration import migration_loss_failures
    from repro.bench.replication import replication_scaling_failures
    from repro.bench.regression import (
        BenchCell,
        DEFAULT_CELLS,
        binary_speedup_failures,
        compare_with_baseline,
        format_results,
        load_baseline,
        pool_efficiency_failures,
        run_cells,
        wal_transparency_failures,
        write_baseline,
    )
    from repro.bench.harness import experiment_scale

    def progress(label: str) -> None:
        print(f"running {label} ...", file=sys.stderr, flush=True)

    def speedup_failures(results) -> list:
        if not args.speedup_vs:
            return []
        try:
            reference = load_baseline(args.speedup_vs)
        except (OSError, ValueError) as exc:
            return [
                f"cannot load speedup reference {args.speedup_vs}: {exc}"
            ]
        return binary_speedup_failures(
            results, reference, min_ratio=args.speedup_min
        )

    if args.compare:
        try:
            baseline = load_baseline(args.compare)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline {args.compare}: {exc}",
                  file=sys.stderr)
            return 2
        failures, results = compare_with_baseline(
            baseline, tolerance=args.tolerance, progress=progress
        )
        print()
        print(format_results(results))
        if args.out:
            write_baseline(
                args.out, results, baseline["n"],
                pool_capacity=baseline.get("pool_capacity", 256),
                page_size=baseline.get("page_size", 8192),
            )
            print(f"\nwrote {args.out}")
        failures.extend(speedup_failures(results))
        if failures:
            print(
                f"\n{len(failures)} regression(s) vs {args.compare}:",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\ncompare vs {args.compare}: OK "
              f"(tolerance {args.tolerance:.1%})")
        return 0

    if args.experiments or args.schemes or args.backends or args.modes:
        experiments = args.experiments or ["table2"]
        schemes = args.schemes or ["MDEH", "MEHTree", "BMEHTree"]
        backends = args.backends or ["memory"]
        modes = args.modes or ["single"]
        cells = tuple(
            BenchCell(e, s, args.page_capacity, backend, mode)
            for e in experiments
            for s in schemes
            for backend in backends
            for mode in modes
        )
    else:
        cells = DEFAULT_CELLS
    n = args.n or experiment_scale()
    results = run_cells(
        cells,
        n=n,
        pool_capacity=args.pool_capacity,
        progress=progress,
        batch_size=args.batch_size,
        parallelism=args.parallelism,
    )
    print()
    print(format_results(results))
    out = args.out or f"BENCH_{args.label}.json"
    write_baseline(out, results, n, pool_capacity=args.pool_capacity)
    print(f"\nwrote {out}")
    failures = pool_efficiency_failures(results)
    failures.extend(wal_transparency_failures(results))
    failures.extend(batched_efficiency_failures(results))
    failures.extend(parallel_consistency_failures(results))
    failures.extend(served_coalescing_failures(results))
    failures.extend(sharded_scaling_failures(results))
    failures.extend(migration_loss_failures(results))
    failures.extend(replication_scaling_failures(results))
    failures.extend(speedup_failures(results))
    if failures:
        print(f"\n{len(failures)} problem(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os
    import signal

    from repro.core import MultiKeyFile
    from repro.encoding import KeyCodec, UIntEncoder
    from repro.server import QueryServer
    from repro.storage import BufferPool, PageStore
    from repro.storage.wal import WALBackend, recover_index

    # Replicas and the failover watchdog need worker processes to ship
    # from / promote over, so they force the cluster path even at one
    # shard (a plain in-process server has nothing to replicate).
    if args.shards > 1 or args.replicas or args.auto_failover:
        return _serve_sharded(args)
    if args.wal and os.path.exists(args.wal):
        index = recover_index(args.wal, pool_capacity=args.pool_pages or None)
        codec = KeyCodec([UIntEncoder(w) for w in index.widths])
        file = MultiKeyFile.from_index(codec, index)
        print(
            f"recovered {len(index)} keys from {args.wal}",
            file=sys.stderr,
            flush=True,
        )
    else:
        codec = KeyCodec([UIntEncoder(args.widths) for _ in range(args.dims)])
        store = None
        if args.wal:
            pool = BufferPool(args.pool_pages) if args.pool_pages else None
            store = PageStore(backend=WALBackend(args.wal), pool=pool)
        file = MultiKeyFile(
            codec, page_capacity=args.page_capacity, store=store
        )

    async def run() -> None:
        server = QueryServer(
            file,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            session_pipeline=args.pipeline,
            coalesce_window=args.window / 1000.0,
            max_batch=args.max_batch,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        async with server:
            host, port = server.address
            print(f"serving on {host}:{port}", flush=True)
            await stop.wait()
            print("draining ...", file=sys.stderr, flush=True)
        print("served state is durable, exiting", file=sys.stderr, flush=True)

    asyncio.run(run())
    return 0


def _serve_sharded(args: argparse.Namespace) -> int:
    """``repro serve --shards N``: workers + scatter-gather router.

    The manager forks before the event loop starts (fork under a live
    loop is unsafe); the router then runs in this process and drains on
    SIGTERM/SIGINT, after which the workers get their own SIGTERM and
    checkpoint their WALs.
    """
    import asyncio
    import signal

    from repro.server.router import ShardRouter
    from repro.server.shard import ShardManager

    if args.wal:
        print(
            "--wal is the single-server page file; sharded clusters "
            "take --workdir (one WAL per shard)",
            file=sys.stderr,
        )
        return 2
    if args.replicas and not args.workdir:
        print(
            "--replicas needs --workdir: WAL shipping replicates the "
            "durable per-shard WALs",
            file=sys.stderr,
        )
        return 2
    manager = ShardManager(
        args.shards,
        dims=args.dims,
        widths=args.widths,
        page_capacity=args.page_capacity,
        workdir=args.workdir,
        coalesce_window=args.window / 1000.0,
        max_batch=args.max_batch,
    )
    specs = manager.start()
    for spec in specs:
        print(
            f"shard {spec.shard}: pid {spec.pid} on "
            f"{spec.host}:{spec.port} "
            f"z [{spec.z_low:#x}, {spec.z_high:#x}]",
            file=sys.stderr,
            flush=True,
        )
    replicas = None
    if args.replicas:
        from repro.server.replica import ReplicaManager

        replicas = ReplicaManager(manager, args.replicas)
        for shard, rspecs in replicas.start().items():
            for rspec in rspecs:
                print(
                    f"shard {shard} replica {rspec.replica}: pid "
                    f"{rspec.pid} on {rspec.host}:{rspec.port}",
                    file=sys.stderr,
                    flush=True,
                )

    async def run() -> None:
        router = ShardRouter(
            manager,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            session_pipeline=args.pipeline,
            auto_split_keys=args.auto_split_keys,
            max_shards=args.max_shards,
            replicas=replicas,
            auto_failover=args.auto_failover,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        async with router:
            host, port = router.address
            print(
                f"serving on {host}:{port} ({args.shards} shards)",
                flush=True,
            )
            await stop.wait()
            print("draining router ...", file=sys.stderr, flush=True)

    try:
        asyncio.run(run())
    finally:
        if replicas is not None:
            print("stopping replicas ...", file=sys.stderr, flush=True)
            replicas.stop()
        print("stopping shard workers ...", file=sys.stderr, flush=True)
        manager.stop()
    print("cluster state is durable, exiting", file=sys.stderr, flush=True)
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import QueryClient

    async def run() -> int:
        async with await QueryClient.connect(
            args.host, args.port, negotiate=True
        ) as client:
            topo = await client.topology()
        role = topo.get("role", "server")
        shards = topo.get("shards", [])
        print(
            f"{role} at {args.host}:{args.port}: epoch "
            f"{topo.get('epoch', 0)}, {len(shards)} shard(s)"
        )
        for cut in topo.get("boundaries", []):
            print(f"  cut at z = {cut:#x}")
        for shard in shards:
            where = ""
            if "host" in shard:
                where = f" on {shard['host']}:{shard['port']}"
            z_low, z_high = shard.get("z_low", 0), shard.get("z_high", 0)
            keys = f", {shard['keys']} keys" if "keys" in shard else ""
            print(
                f"  shard {shard.get('shard', 0)}{where}: "
                f"z [{z_low:#x}, {z_high:#x}]{keys}"
            )
        return 0

    try:
        return asyncio.run(run())
    except (ConnectionError, OSError) as exc:
        print(f"topology failed: {exc}", file=sys.stderr)
        return 1


def _cmd_rebalance(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import QueryClient

    async def run() -> int:
        async with await QueryClient.connect(
            args.host, args.port, negotiate=True
        ) as client:
            fields: dict = {}
            if args.shard is not None:
                fields["shard"] = args.shard
            if args.cut is not None:
                fields["cut"] = args.cut
            reply = await client.migrate(args.action, **fields)
        if args.action == "status":
            state = "migrating" if reply.get("migrating") else "idle"
            print(
                f"epoch {reply.get('epoch', 0)}, "
                f"{reply.get('shards', 0)} shard(s), {state}, "
                f"{reply.get('migrations', 0)} migration(s) completed"
            )
            return 0
        if args.action == "promote":
            chosen = reply.get("chosen")
            source = (
                f"replica {chosen} (lsn {reply.get('chosen_lsn')})"
                if chosen is not None
                else "the primary's durable WAL alone"
            )
            print(
                f"promoted shard {reply.get('shard')}: worker "
                f"{reply.get('old_worker')} -> {reply.get('worker')} from "
                f"{source}, {reply.get('pages', 0)} page(s) caught up, "
                f"now at epoch {reply.get('epoch', 0)}"
            )
            return 0
        what = reply.get("action", args.action)
        where = f"shard {reply.get('shard')}"
        if what == "split":
            where += f" at z = {reply.get('cut', 0):#x}"
        else:
            where += f" into shard {reply.get('absorber')}"
        print(
            f"{what} {where}: moved {reply.get('moved', 0)} key(s) in "
            f"{reply.get('delta_rounds', 0)} delta round(s); now "
            f"{reply.get('shards', 0)} shard(s) at epoch "
            f"{reply.get('epoch', 0)}"
        )
        return 0

    from repro.errors import ReproError

    try:
        return asyncio.run(run())
    except (ConnectionError, OSError, ReproError) as exc:
        print(f"rebalance failed: {exc}", file=sys.stderr)
        return 1


def _cmd_ping(args: argparse.Namespace) -> int:
    import asyncio
    import time

    from repro.server import QueryClient

    async def run() -> int:
        async with await QueryClient.connect(args.host, args.port) as client:
            start = time.perf_counter()
            reply = await client.ping()
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            stats = await client.stats()
        print(
            f"pong (protocol v{reply['version']}) in {elapsed_ms:.2f} ms: "
            f"{stats['scheme']} {stats['dims']}d, {stats['keys']} keys, "
            f"load factor {stats['load_factor']:.2f}"
        )
        return 0

    try:
        return asyncio.run(run())
    except (ConnectionError, OSError) as exc:
        print(f"ping failed: {exc}", file=sys.stderr)
        return 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.sanitize import format_issues, lint_paths

    issues = lint_paths(args.paths or None)
    if issues:
        print(format_issues(issues))
        print(f"\n{len(issues)} issue(s) found", file=sys.stderr)
        return 1
    print("lint: OK")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.sanitize import analyze_paths, format_issues

    report = analyze_paths(args.paths or None)
    if args.graph:
        with open(args.graph, "w", encoding="utf-8") as handle:
            handle.write(report.graph.to_dot())
        print(f"wrote lock-order graph to {args.graph}", file=sys.stderr)
    if report.issues:
        print(format_issues(report.issues))
        print(f"\n{len(report.issues)} finding(s)", file=sys.stderr)
        return 1
    edges = len(report.graph.edges)
    print(f"analyze: OK (lock-order graph: {len(report.graph.nodes)} "
          f"locks, {edges} edges, acyclic)")
    return 0


def _run_typecheck() -> int:
    """mypy strict over storage/ and server/; 0 when mypy is absent so
    offline environments stay green (CI installs mypy and gates)."""
    try:
        from mypy import api
    except ModuleNotFoundError:
        print("typecheck: SKIPPED (mypy not installed)")
        return 0
    from repro.sanitize.lint import repo_source_root

    root = repo_source_root()
    argv = [str(root / "storage"), str(root / "server")]
    config = root.parent.parent / "pyproject.toml"
    if config.exists():
        argv = ["--config-file", str(config), *argv]
    stdout, stderr, status = api.run(argv)
    if stdout:
        print(stdout, end="")
    if stderr:
        print(stderr, end="", file=sys.stderr)
    if status == 0:
        print("typecheck: OK")
    return status


def _cmd_typecheck(_args: argparse.Namespace) -> int:
    return _run_typecheck()


def _cmd_check(args: argparse.Namespace) -> int:
    """Lint + a sanitized random workload over every index scheme."""
    import random

    from repro import (
        BMEHTree,
        GridFile,
        InvariantViolation,
        KDBTree,
        MDEH,
        MEHTree,
    )
    from repro.sanitize import (
        analyze_paths,
        format_issues,
        lint_paths,
        sanitized,
    )

    status = 0
    if not args.skip_lint:
        issues = lint_paths(None)
        if issues:
            print(format_issues(issues))
            status = 1
        else:
            print("lint: OK")
        report = analyze_paths(None)
        if report.issues:
            print(format_issues(report.issues))
            status = 1
        else:
            print("analyze: OK")
        if _run_typecheck() != 0:
            status = 1
    schemes = {
        "mdeh": MDEH,
        "meh": MEHTree,
        "bmeh": BMEHTree,
        "gridfile": GridFile,
        "kdb": KDBTree,
    }
    for name, cls in schemes.items():
        rng = random.Random(args.seed)
        index = cls(2, 4, widths=12)
        keys: list[tuple[int, int]] = []
        inserted = 0
        try:
            with sanitized(index, rate=args.rate):
                while len(index) < args.n:
                    key = (rng.randrange(4096), rng.randrange(4096))
                    if key in index:
                        continue
                    index.insert(key, inserted)
                    inserted += 1
                    keys.append(key)
                    # Interleave deletions to exercise the merge paths.
                    if inserted % 3 == 0:
                        victim = keys.pop(rng.randrange(len(keys)))
                        index.delete(victim)
                for _ in range(5):
                    low = rng.randrange(2048)
                    sum(1 for _ in index.range_search(
                        (low, low), (low + 512, low + 512)
                    ))
                while keys:
                    index.delete(keys.pop())
        except InvariantViolation as violation:
            print(f"{name}: FAIL {violation}", file=sys.stderr)
            status = 1
            continue
        print(f"{name}: OK ({args.n} keys inserted, all deleted, "
              "invariants held throughout)")
    return status


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro import BMEHTree
    from repro.workloads import uniform_keys, unique

    print("Building a BMEH-tree over 2,000 uniform 2-d keys ...")
    index = BMEHTree(2, 8, widths=16)
    keys = unique(uniform_keys(2_000, 2, seed=1, domain=1 << 16))
    for i, key in enumerate(keys):
        index.insert(key, i)
    print("\n".join(summarize(index).as_lines()))
    probe = keys[77]
    before = index.store.stats.snapshot()
    index.search(probe)
    print(
        f"\nexact-match search: {index.store.stats.delta(before).reads} "
        "disk reads (root pinned)"
    )
    hits = sum(1 for _ in index.range_search((0, 0), (9999, 9999)))
    print(f"range query over one corner: {hits} records")
    index.check_invariants()
    print("invariants: OK")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BMEH-tree (PODS 1986) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    tables = commands.add_parser("tables", help="regenerate Tables 2-4")
    tables.add_argument("--table", type=int, action="append",
                        choices=(2, 3, 4))
    tables.add_argument("--n", type=int, default=None,
                        help="insertions per run (default: REPRO_N or 40000)")
    tables.add_argument("--schemes", nargs="+",
                        default=["MDEH", "MEHTree", "BMEHTree"])
    tables.set_defaults(handler=_cmd_tables)

    figures = commands.add_parser("figures", help="regenerate Figures 6-7")
    figures.add_argument("--figure", type=int, action="append",
                         choices=(6, 7))
    figures.add_argument("--n", type=int, default=None)
    figures.add_argument("--schemes", nargs="+",
                         default=["MDEH", "MEHTree", "BMEHTree"])
    figures.set_defaults(handler=_cmd_figures)

    bench = commands.add_parser(
        "bench",
        help="benchmark baselines + regression gate (BENCH_*.json)",
    )
    bench.add_argument("--n", type=int, default=None,
                       help="insertions per cell (default: REPRO_N or 40000)")
    bench.add_argument("--experiments", nargs="+", default=None,
                       help="table2/table3/table4/fig6/fig7 "
                            "(default: the committed-baseline suite)")
    bench.add_argument("--schemes", nargs="+", default=None)
    bench.add_argument("--modes", nargs="+", default=None,
                       choices=["single", "batched", "rangepar", "served",
                                "sharded", "migration", "replication"],
                       help="measurement protocols for ad-hoc cells")
    bench.add_argument("--batch-size", type=int, default=None,
                       help="keys per measured batch in batched cells "
                            "(default 64)")
    bench.add_argument("--parallelism", type=int, default=None,
                       help="thread-pool width for rangepar cells "
                            "(default 4); client concurrency for served "
                            "cells (default 8)")
    bench.add_argument("--backends", nargs="+", default=None,
                       choices=["memory", "file", "file+pool", "file+wal"])
    bench.add_argument("-b", "--page-capacity", type=int, default=8)
    bench.add_argument("--pool-capacity", type=int, default=256)
    bench.add_argument("--label", default="run",
                       help="baseline name: writes BENCH_<label>.json")
    bench.add_argument("--out", default=None,
                       help="explicit output path (overrides --label)")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="re-run a baseline's cells and flag regressions")
    bench.add_argument("--tolerance", type=float, default=0.05,
                       help="relative regression tolerance (default 0.05)")
    bench.add_argument("--speedup-vs", default=None, metavar="BASELINE",
                       help="absolute gate: served cells must beat this "
                            "(pre-binary) baseline's throughput by "
                            "--speedup-min in both directions")
    bench.add_argument("--speedup-min", type=float, default=5.0,
                       help="required served ops/s ratio for "
                            "--speedup-vs (default 5.0)")
    bench.set_defaults(handler=_cmd_bench)

    profile = commands.add_parser(
        "profile",
        help="cProfile the bench workloads (hot-loop ranking report)",
    )
    profile.add_argument("--n", type=int, default=2000,
                         help="insertions per profiled cell (default 2000)")
    profile.add_argument("--modes", nargs="+", default=None,
                         choices=["single", "batched", "rangepar", "served"],
                         help="restrict to these measurement protocols "
                              "(default: the standard profile suite)")
    profile.add_argument("--top", type=int, default=25,
                         help="functions per report section (default 25)")
    profile.add_argument("--sort", default="cumulative",
                         choices=["cumulative", "tottime"],
                         help="ranking order (default cumulative)")
    profile.add_argument("--out", default=None,
                         help="also write the report to this path")
    profile.set_defaults(handler=_cmd_profile)

    stats = commands.add_parser("stats", help="profile one built index")
    stats.add_argument(
        "--scheme", default="bmeh",
        choices=["mdeh", "meh", "bmeh", "quadtree", "gridfile", "kdb"],
    )
    stats.add_argument("--workload", default="uniform",
                       choices=["uniform", "normal", "clustered"])
    stats.add_argument("--n", type=int, default=10_000)
    stats.add_argument("--dims", type=int, default=2)
    stats.add_argument("-b", "--page-capacity", type=int, default=8)
    stats.set_defaults(handler=_cmd_stats)

    serve = commands.add_parser(
        "serve", help="serve an index over the wire protocol"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0: pick an ephemeral port)")
    serve.add_argument("--wal", default=None, metavar="PATH",
                       help="durable page file; reopened via WAL recovery "
                            "when it already exists")
    serve.add_argument("--dims", type=int, default=2,
                       help="key dimensions for a fresh index (default 2)")
    serve.add_argument("--widths", type=int, default=16,
                       help="bits per dimension for a fresh index "
                            "(default 16)")
    serve.add_argument("-b", "--page-capacity", type=int, default=32)
    serve.add_argument("--window", type=float, default=2.0,
                       help="write-coalescing window in milliseconds "
                            "(default 2.0)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="mutations per coalesced commit (default 64)")
    serve.add_argument("--pool-pages", type=int, default=256,
                       help="buffer-pool frames in front of the WAL store "
                            "(default 256; 0 disables the pool)")
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="global in-flight request budget (default 64)")
    serve.add_argument("--pipeline", type=int, default=16,
                       help="per-session pipelining limit (default 16)")
    serve.add_argument("--shards", type=int, default=1,
                       help="range-partition the keyspace across N worker "
                            "processes behind a scatter-gather router "
                            "(default 1: a single in-process server)")
    serve.add_argument("--workdir", default=None, metavar="DIR",
                       help="durable cluster directory: per-shard WALs plus "
                            "the persisted partition (sharded mode only)")
    serve.add_argument("--auto-split-keys", type=int, default=None,
                       metavar="K",
                       help="split the hottest shard online whenever it "
                            "holds more than K keys (sharded durable mode "
                            "only; default: no auto-split)")
    serve.add_argument("--max-shards", type=int, default=8,
                       help="auto-split ceiling (default 8)")
    serve.add_argument("--replicas", type=int, default=0,
                       help="WAL-shipped read replicas per shard (sharded "
                            "durable mode only; default 0)")
    serve.add_argument("--auto-failover", action="store_true",
                       help="promote a shard's most-caught-up replica "
                            "automatically when its primary dies")
    serve.set_defaults(handler=_cmd_serve)

    ping = commands.add_parser(
        "ping", help="round-trip a served index and print its shape"
    )
    ping.add_argument("--host", default="127.0.0.1")
    ping.add_argument("--port", type=int, required=True)
    ping.set_defaults(handler=_cmd_ping)

    topology = commands.add_parser(
        "topology", help="print a served endpoint's shard topology"
    )
    topology.add_argument("--host", default="127.0.0.1")
    topology.add_argument("--port", type=int, required=True)
    topology.set_defaults(handler=_cmd_topology)

    rebalance = commands.add_parser(
        "rebalance",
        help="online shard split/merge against a running cluster",
    )
    rebalance.add_argument("action", nargs="?", default="status",
                           choices=["split", "merge", "promote", "status"],
                           help="what to do (default: status)")
    rebalance.add_argument("--host", default="127.0.0.1")
    rebalance.add_argument("--port", type=int, required=True)
    rebalance.add_argument("--shard", type=int, default=None,
                           help="source shard (default: the hottest for "
                                "split, the coldest for merge)")
    rebalance.add_argument("--cut", type=int, default=None,
                           help="split point in z space (default: the "
                                "sampled median of the source shard)")
    rebalance.set_defaults(handler=_cmd_rebalance)

    lint = commands.add_parser(
        "lint", help="repo-specific static checks (exit 1 on findings)"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories (default: the installed repro package)",
    )
    lint.set_defaults(handler=_cmd_lint)

    analyze = commands.add_parser(
        "analyze",
        help="dataflow static analyzer: concurrency + durability rules "
             "(exit 1 on findings)",
    )
    analyze.add_argument(
        "paths", nargs="*",
        help="files or directories (default: the installed repro package)",
    )
    analyze.add_argument(
        "--graph", default=None, metavar="PATH",
        help="write the lock-order acquisition graph as Graphviz DOT",
    )
    analyze.set_defaults(handler=_cmd_analyze)

    typecheck = commands.add_parser(
        "typecheck",
        help="mypy strict gate over storage/ and server/ "
             "(skipped when mypy is absent)",
    )
    typecheck.set_defaults(handler=_cmd_typecheck)

    check = commands.add_parser(
        "check",
        help="lint + sanitizer-instrumented random workload per scheme",
    )
    def rate(text: str) -> float:
        value = float(text)
        if not 0.0 <= value <= 1.0:
            raise argparse.ArgumentTypeError(
                f"sampling rate {value} outside [0, 1]"
            )
        return value

    check.add_argument("--n", type=int, default=400,
                       help="keys per scheme (default 400)")
    check.add_argument("--seed", type=int, default=1986)
    check.add_argument("--rate", type=rate, default=1.0,
                       help="sanitizer sampling rate in [0, 1] (default 1.0)")
    check.add_argument("--skip-lint", action="store_true")
    check.set_defaults(handler=_cmd_check)

    demo = commands.add_parser("demo", help="a quick guided tour")
    demo.set_defaults(handler=_cmd_demo)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
