"""Deterministic fault injection for the storage layer.

The crash-safety claim of the WAL (``repro.storage.wal``) is only worth
what the harness that attacks it is worth.  This module simulates a
power failure at an arbitrary *physical operation* — a file write, a
flush, a truncate — with the three classic disk failure modes:

* ``fail``          — the machine dies at op N; nothing written since the
  last flush survives (clean loss of the volatile page cache);
* ``torn``          — the machine dies at op N and an arbitrary seeded
  *prefix* of the unflushed writes reaches the platter, the last of them
  possibly cut mid-record (a torn write);
* ``dropped-flush`` — from op N on, ``flush()`` silently lies (returns
  success without making anything durable) and the machine dies a few
  operations later — the lying-disk scenario.

The simulation keeps two byte images per file: *durable* (what the disk
guarantees as of the last honoured flush) and *volatile* (what reads
see — the OS page cache).  On crash the injector materializes each
file's durable image (plus, in ``torn`` mode, the seeded prefix of its
pending writes) to the real path, so recovery code can reopen the files
with the ordinary ``open`` and see exactly what a rebooted machine
would.  Everything is deterministic given ``(seed, mode, fail_after)``.

Usage::

    injector = FaultInjector(fail_after=120, mode="torn", seed=7)
    backend = WALBackend(path, opener=injector.open)
    try:
        ... build ...
    except CrashError:
        pass
    recovered = WALBackend(path)   # plain open(): reads the crash image
"""

from __future__ import annotations

import os
import random
from typing import Any

from repro.errors import CrashError, StorageError

MODES = ("fail", "torn", "dropped-flush")


class FaultInjector:
    """A seeded schedule of physical-op faults shared by a set of files.

    ``fail_after=None`` never trips — the injector then only counts ops,
    which is how a harness measures a run's total op count before
    enumerating fault points.  ``ops`` counts every write/flush/truncate
    across all files opened through :meth:`open`.
    """

    def __init__(
        self,
        fail_after: int | None = None,
        mode: str = "fail",
        seed: int = 0,
    ) -> None:
        if mode not in MODES:
            raise StorageError(f"unknown fault mode {mode!r}; choose from {MODES}")
        if fail_after is not None and fail_after < 1:
            raise StorageError("fail_after counts physical ops; must be >= 1")
        self.fail_after = fail_after
        self.mode = mode
        self.seed = seed
        self._rng = random.Random(f"{seed}:{mode}:{fail_after}")
        self.ops = 0
        self.tripped = False
        self.crashed = False
        self._grace: int | None = None
        self._files: list["FaultyFile"] = []

    # -- the opener (pass as FileBackend/WALBackend ``opener=``) -----------

    def open(self, path: str, mode: str = "r+b") -> "FaultyFile":
        if self.crashed:
            raise CrashError("machine is down")
        handle = FaultyFile(path, mode, self)
        self._files.append(handle)
        return handle

    # -- fault schedule ----------------------------------------------------

    def _tick(self) -> str:
        """Advance the op counter; returns ``"ok"``, ``"dropped"`` (this
        and later flushes must be silently skipped) or crashes."""
        if self.crashed:
            raise CrashError("machine is down")
        self.ops += 1
        if self.fail_after is None:
            return "ok"
        if not self.tripped:
            if self.ops < self.fail_after:
                return "ok"
            self.tripped = True
            if self.mode == "dropped-flush":
                self._grace = self.ops + self._rng.randint(1, 6)
                return "dropped"
            self.crash()
        # Already tripped: only reachable in dropped-flush mode.
        if self._grace is not None and self.ops >= self._grace:
            self.crash()
        return "dropped"

    def crash(self) -> None:
        """Simulated power failure: freeze every file at its durable
        image (plus the seeded torn prefix) and raise :class:`CrashError`."""
        if not self.crashed:
            self.crashed = True
            for handle in self._files:
                handle._materialize(self._rng)
        raise CrashError(f"simulated crash after {self.ops} physical ops")


class FaultyFile:
    """A crash-prone file: binary file API over in-memory images.

    Writes land in the volatile image (what reads see) and are recorded
    as pending ops; ``flush()`` promotes volatile to durable.  The real
    file on disk is only touched at :meth:`close` (clean shutdown: the
    volatile image) or at crash (the durable image, possibly plus a torn
    prefix of the pending ops).
    """

    def __init__(self, path: str, mode: str, injector: FaultInjector) -> None:
        self._path = path
        self._injector = injector
        content = b""
        if "w" not in mode and os.path.exists(path):
            with open(path, "rb") as existing:
                content = existing.read()
        self._volatile = bytearray(content)
        self._durable = bytes(content)
        #: ("w", offset, data) | ("t", size, b"") ops since the last flush.
        self._pending: list[tuple[str, int, bytes]] = []
        self._pos = 0
        self._dead = False

    # -- file API ----------------------------------------------------------

    def _check_alive(self) -> None:
        if self._dead or self._injector.crashed:
            raise CrashError("machine is down")

    def read(self, size: int = -1) -> bytes:
        self._check_alive()
        end = len(self._volatile) if size < 0 else min(self._pos + size, len(self._volatile))
        data = bytes(self._volatile[self._pos : end])
        self._pos = end
        return data

    def write(self, data: Any) -> int:
        self._check_alive()
        data = bytes(data)
        # Record first, tick second: the in-flight write is part of the
        # pending set a torn crash may partially persist.
        self._apply_write(self._volatile, self._pos, data)
        self._pending.append(("w", self._pos, data))
        self._pos += len(data)
        self._injector._tick()
        return len(data)

    def truncate(self, size: int | None = None) -> int:
        self._check_alive()
        size = self._pos if size is None else size
        del self._volatile[size:]
        self._pending.append(("t", size, b""))
        self._injector._tick()
        return size

    def flush(self) -> None:
        self._check_alive()
        if self._injector._tick() == "dropped":
            return  # the disk lies: report success, persist nothing
        self._durable = bytes(self._volatile)
        self._pending.clear()

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        self._check_alive()
        if whence == os.SEEK_SET:
            self._pos = offset
        elif whence == os.SEEK_CUR:
            self._pos += offset
        elif whence == os.SEEK_END:
            self._pos = len(self._volatile) + offset
        else:  # pragma: no cover - no other whence is used
            raise ValueError(f"unsupported whence {whence}")
        return self._pos

    def tell(self) -> int:
        self._check_alive()
        return self._pos

    def close(self) -> None:
        if self._dead or self._injector.crashed:
            return  # a dead machine cannot heal its files on close
        self._dead = True
        with open(self._path, "wb") as out:
            out.write(bytes(self._volatile))

    # -- crash materialization ---------------------------------------------

    @staticmethod
    def _apply_write(image: bytearray, offset: int, data: bytes) -> None:
        if offset > len(image):
            image.extend(b"\x00" * (offset - len(image)))
        image[offset : offset + len(data)] = data

    def _materialize(self, rng: random.Random) -> None:
        """Write the post-crash on-disk image to the real path."""
        if self._dead:
            return  # closed cleanly before the crash: contents are final
        image = bytearray(self._durable)
        if self._injector.mode == "torn" and self._pending:
            # A seeded prefix of the unflushed ops reached the platter;
            # the next one (if any) arrives cut mid-record.
            survivors = rng.randint(0, len(self._pending))
            for kind, arg, data in self._pending[:survivors]:
                if kind == "w":
                    self._apply_write(image, arg, data)
                else:
                    del image[arg:]
            if survivors < len(self._pending):
                kind, arg, data = self._pending[survivors]
                if kind == "w" and data:
                    self._apply_write(image, arg, data[: rng.randint(0, len(data))])
        self._dead = True
        with open(self._path, "wb") as out:
            out.write(bytes(image))
