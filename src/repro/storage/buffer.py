"""An LRU buffer pool, integrated into the :class:`~repro.storage.PageStore`.

The paper's root-pinned accounting model assumes a buffer-managed
directory; this module is that buffer manager.  A pool is attached to a
store (``PageStore(backend, pool=BufferPool(256))``) and from then on
every data-path access is routed through it:

* **read-through** — a miss loads from the backend and admits the frame,
  a hit serves the cached object without touching the backend;
* **write-back** — dirtied frames reach the backend on eviction and on
  :meth:`flush`, so repeated updates of a hot page cost one physical
  store instead of many;
* **coherent frees** — :meth:`PageStore.free` drops the frame *and* its
  dirty bit, so a flush can never resurrect a freed page;
* **pinned pages are never evicted** — the paper: "the root node can
  always be retained in memory".

Logical I/O accounting (λ, λ′, ρ) is unaffected: charging happens in the
store, above the pool.  What the pool changes is the *physical* backend
traffic, measured by :attr:`PageStore.backend_stats`; hit/miss counters
make the caching effect observable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.errors import StorageError


class BufferPool:
    """LRU cache of page objects between a :class:`PageStore` and its
    backend.

    The pool is inert until :meth:`bind` is called (the store does this
    when the pool is attached); it never touches a backend directly —
    the store passes in counted load/store callables so every physical
    access is charged to the store's backend ledger.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise StorageError("buffer pool needs capacity >= 1")
        self._capacity = capacity
        self._load: Callable[[int], Any] | None = None
        self._store: Callable[[int, Any], None] | None = None
        self._is_pinned: Callable[[int], bool] = lambda _pid: False
        self._frames: OrderedDict[int, Any] = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0

    # -- wiring ------------------------------------------------------------

    def bind(
        self,
        load: Callable[[int], Any],
        store: Callable[[int, Any], None],
        is_pinned: Callable[[int], bool],
    ) -> None:
        """Attach the pool to a store's physical access path.

        Called by :meth:`PageStore.attach_pool`; a pool serves exactly
        one store for its lifetime.
        """
        if self._load is not None:
            raise StorageError("buffer pool is already bound to a store")
        self._load = load
        self._store = store
        self._is_pinned = is_pinned

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    # -- data path ---------------------------------------------------------

    def read(self, page_id: int) -> Any:
        """Read-through: serve a hit from the pool, admit on miss."""
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        if self._load is None:
            raise StorageError("buffer pool is not bound to a store")
        obj = self._load(page_id)
        self._admit(page_id, obj)
        return obj

    def write(self, page_id: int, obj: Any) -> None:
        """Buffer a dirty page; it reaches the backend on eviction/flush."""
        self._admit(page_id, obj)
        self._dirty.add(page_id)

    def admit_clean(self, page_id: int, obj: Any) -> None:
        """Cache a page already resident in the backend (allocation path:
        the store writes through, so the frame starts clean)."""
        self._admit(page_id, obj)

    def mark_dirty(self, page_id: int) -> None:
        """Flag a resident frame dirty (in-place mutation of its object)."""
        if page_id in self._frames:
            self._dirty.add(page_id)

    def peek(self, page_id: int, default: Any = None) -> Any:
        """The resident frame, or ``default`` — without counting a
        hit/miss or disturbing the LRU order."""
        return self._frames.get(page_id, default)

    def drop(self, page_id: int) -> None:
        """Forget a frame without write-back (the page was freed)."""
        self._frames.pop(page_id, None)
        self._dirty.discard(page_id)

    def flush(self) -> None:
        """Write back every dirty frame (frames stay resident).

        Each dirty bit is dropped as soon as its frame reaches the
        backend — not in one sweep at the end — so a mid-flush failure
        (an oversized image raising ``SerializationError``, a crashed
        file) leaves exactly the unwritten frames dirty.  A retry then
        writes only those, instead of double-writing the frames that
        already landed and inflating the physical ledger.

        The dirty set is written back in sorted page-id order — kept
        deliberately, even though the set itself is unordered, so the
        physical write sequence (and any fault-injection schedule over
        it) is deterministic.
        """
        if not self._dirty:
            return
        if self._store is None:
            raise StorageError("buffer pool is not bound to a store")
        for page_id in sorted(self._dirty):
            self._store(page_id, self._frames[page_id])
            self._dirty.discard(page_id)

    # -- observability -----------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def frame_ids(self) -> frozenset[int]:
        """Resident page ids (read-only view, for the sanitizer)."""
        return frozenset(self._frames)

    def dirty_ids(self) -> frozenset[int]:
        """Resident ids awaiting write-back (read-only view)."""
        return frozenset(self._dirty)

    # -- replacement -------------------------------------------------------

    def _admit(self, page_id: int, obj: Any) -> None:
        self._frames[page_id] = obj
        self._frames.move_to_end(page_id)
        while len(self._frames) > self._capacity:
            if not self._evict_one():
                break  # every frame is pinned: exceed capacity rather
                # than evict the root out from under the index

    def _evict_one(self) -> bool:
        # Amortized O(1): the victim is always the head of the ordered
        # frame map.  A pinned head cannot be evicted and would otherwise
        # be re-scanned on every future miss, so it is rotated to the MRU
        # end instead — pinned pages are resident anyway, their LRU
        # position carries no information.
        for _ in range(len(self._frames)):
            victim = next(iter(self._frames))  # LRU head
            if self._is_pinned(victim):
                self._frames.move_to_end(victim)
                continue
            obj = self._frames.pop(victim)
            if victim in self._dirty:
                if self._store is None:
                    raise StorageError("buffer pool is not bound to a store")
                self._dirty.discard(victim)
                self._store(victim, obj)
            return True
        return False
