"""A small LRU buffer pool.

The paper's measurements assume no caching beyond the pinned root, so the
benchmark harness never installs a pool.  Applications built on the
library (see ``examples/``) can wrap a :class:`PageStore` in a
:class:`BufferPool` to serve repeated reads from memory and batch the
write-back; hit/miss counters make the caching effect observable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.errors import StorageError
from repro.storage.disk import PageStore


class BufferPool:
    """LRU cache of page objects in front of a :class:`PageStore`.

    Reads served from the pool are not charged to the store's I/O ledger —
    that is the point of a buffer.  Dirty pages are written back on
    eviction and on :meth:`flush`.
    """

    def __init__(self, store: PageStore, capacity: int = 64) -> None:
        if capacity < 1:
            raise StorageError("buffer pool needs capacity >= 1")
        self._store = store
        self._capacity = capacity
        self._frames: OrderedDict[int, Any] = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0

    @property
    def store(self) -> PageStore:
        return self._store

    def __len__(self) -> int:
        return len(self._frames)

    def read(self, page_id: int) -> Any:
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        obj = self._store.read(page_id)
        self._admit(page_id, obj)
        return obj

    def write(self, page_id: int, obj: Any) -> None:
        """Buffer a dirty page; it reaches the store on eviction/flush."""
        self._admit(page_id, obj)
        self._dirty.add(page_id)

    def flush(self) -> None:
        """Write back every dirty frame (keeps frames resident)."""
        for page_id in sorted(self._dirty):
            self._store.write(page_id, self._frames[page_id])
        self._dirty.clear()

    def drop(self, page_id: int) -> None:
        """Forget a frame without write-back (caller freed the page)."""
        self._frames.pop(page_id, None)
        self._dirty.discard(page_id)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _admit(self, page_id: int, obj: Any) -> None:
        self._frames[page_id] = obj
        self._frames.move_to_end(page_id)
        while len(self._frames) > self._capacity:
            victim, victim_obj = self._frames.popitem(last=False)
            if victim in self._dirty:
                self._store.write(victim, victim_obj)
                self._dirty.discard(victim)
