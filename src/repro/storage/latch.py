"""A read-write latch guarding concurrent access to a page store.

The library is single-threaded on its mutation paths, but the parallel
range scanner (``repro.core.rangequery.scan_parallel``) fans per-cell
leaf scans across a thread pool.  Even pure reads mutate shared state
here: a read-through :class:`~repro.storage.buffer.BufferPool` reorders
its LRU map and may evict (writing back a dirty frame) on every miss,
and the logical ledger's dedup sets are plain Python containers.  The
discipline is therefore:

* scan workers read pages through :meth:`PageStore.read_shared`, which
  holds this latch's **shared** side (many readers at once) around a
  store-internal mutex that serializes frame/ledger bookkeeping;
* anything that restructures the store underneath readers — a pool
  flush, a group-commit apply — holds the **exclusive** side, so it
  never interleaves with an in-flight scan read.

The latch is writer-preferring (a waiting writer blocks new readers, so
a stream of scans cannot starve a flush) and **not reentrant**: a thread
must not acquire it twice, in any combination of sides.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator


class ReadWriteLatch:
    """Many readers or one writer; writer-preferring; not reentrant."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextlib.contextmanager
    def read(self) -> Iterator[None]:
        """Hold the shared side for a ``with`` block."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextlib.contextmanager
    def write(self) -> Iterator[None]:
        """Hold the exclusive side for a ``with`` block."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    @property
    def active_readers(self) -> int:
        """Readers currently holding the shared side (observability)."""
        with self._cond:
            return self._readers
