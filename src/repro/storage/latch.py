"""A read-write latch guarding concurrent access to a page store.

The library is single-threaded on its mutation paths, but the parallel
range scanner (``repro.core.rangequery.scan_parallel``) fans per-cell
leaf scans across a thread pool, and the query service layer
(:mod:`repro.server`) multiplexes client sessions onto one index.  Even
pure reads mutate shared state here: a read-through
:class:`~repro.storage.buffer.BufferPool` reorders its LRU map and may
evict (writing back a dirty frame) on every miss, and the logical
ledger's dedup sets are plain Python containers.  The discipline is
therefore:

* scan workers read pages through :meth:`PageStore.read_shared`, which
  holds this latch's **shared** side (many readers at once) around a
  store-internal mutex that serializes frame/ledger bookkeeping;
* anything that restructures the store underneath readers — a pool
  flush, a group-commit apply, a service-layer mutation — holds the
  **exclusive** side, so it never interleaves with an in-flight scan
  read or a facade-level snapshot.

The latch is writer-preferring (a waiting writer blocks new readers, so
a stream of scans cannot starve a flush) and **not reentrant**: a thread
must not acquire it twice, in any combination of sides.

Acquisitions accept an optional ``timeout`` (seconds).  On expiry they
raise :class:`~repro.errors.LatchTimeout` with the latch left exactly as
found — a timed-out writer withdraws its preference claim and wakes any
readers it was blocking.  The service layer relies on this to turn a
stuck writer into a clean 503-style backpressure reply instead of a hung
server.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterator

from repro.errors import LatchTimeout


class ReadWriteLatch:
    """Many readers or one writer; writer-preferring; not reentrant."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @staticmethod
    def _deadline(timeout: float | None) -> float | None:
        return None if timeout is None else time.monotonic() + timeout

    @staticmethod
    def _remaining(deadline: float | None, side: str) -> float | None:
        """Seconds left before ``deadline``; raises on expiry."""
        if deadline is None:
            return None
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise LatchTimeout(
                f"could not acquire the {side} side of the latch"
            )
        return remaining

    def acquire_read(self, timeout: float | None = None) -> None:
        """Acquire the shared side; raises
        :class:`~repro.errors.LatchTimeout` if ``timeout`` elapses."""
        deadline = self._deadline(timeout)
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait(self._remaining(deadline, "shared"))
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self, timeout: float | None = None) -> None:
        """Acquire the exclusive side; raises
        :class:`~repro.errors.LatchTimeout` if ``timeout`` elapses.

        A timed-out writer leaves no trace: its preference claim is
        withdrawn and blocked readers are woken, so a latch that timed
        out once is immediately usable by everyone else.
        """
        deadline = self._deadline(timeout)
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait(self._remaining(deadline, "exclusive"))
            except LatchTimeout:
                # Readers blocked purely by this writer's preference
                # claim must be woken once the claim is withdrawn.
                self._cond.notify_all()
                raise
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextlib.contextmanager
    def read(self, timeout: float | None = None) -> Iterator[None]:
        """Hold the shared side for a ``with`` block."""
        self.acquire_read(timeout)
        try:
            yield
        finally:
            self.release_read()

    @contextlib.contextmanager
    def write(self, timeout: float | None = None) -> Iterator[None]:
        """Hold the exclusive side for a ``with`` block."""
        self.acquire_write(timeout)
        try:
            yield
        finally:
            self.release_write()

    @property
    def active_readers(self) -> int:
        """Readers currently holding the shared side (observability)."""
        with self._cond:
            return self._readers

    @property
    def write_active(self) -> bool:
        """Whether a writer currently holds the exclusive side."""
        with self._cond:
            return self._writer_active
