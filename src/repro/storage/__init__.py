"""Simulated disk substrate with logical I/O accounting.

The paper's performance figures (λ, λ′, ρ) are *logical disk access
counts* measured on a simulator; this subpackage is that simulator.  A
:class:`PageStore` hands out page ids, serves reads/writes, and charges
each access to an :class:`~repro.storage.iostats.IOStats` ledger.  Within
one index *operation* (a search, an insertion, ...) a page is charged at
most one read and one write — the operation works on an in-memory copy —
which is the accounting model under which the paper's λ = 2.000 for the
one-level scheme comes out exact.

Pinned pages (the paper: "the root node can always be retained in
memory") are never charged.

Two byte-level backends make the store a real storage manager rather than
a dict with counters: :class:`MemoryBackend` (objects in RAM) and
:class:`FileBackend` (fixed-size page slots in a file, via the codecs in
``repro.storage.serializer``).  An optional LRU :class:`BufferPool`
attaches between the store and its backend
(``PageStore(backend, pool=BufferPool(256))``): reads are served
read-through, writes are buffered write-back, frees drop the frame so a
flush can never resurrect a freed page, and pinned pages are never
evicted.  The pool changes only the *physical* traffic — measured by
``PageStore.backend_stats`` — never the paper's logical accounting.

Crash safety is layered on top of the file backend, not into it:
:class:`WALBackend` wraps a page file with a checksummed write-ahead
sidecar so a crash at any physical operation recovers to the last
committed checkpoint (``repro.storage.wal``), and
:class:`FaultInjector` simulates those crashes — fail-stop, torn write,
lying flush — deterministically (``repro.storage.faults``).
"""

from repro.storage.iostats import IOStats, OperationCounter
from repro.storage.page import DataPage
from repro.storage.disk import PageStore, MemoryBackend, FileBackend
from repro.storage.serializer import (
    PageCodec,
    DataPageCodec,
    PickleValueCodec,
    RawBytesValueCodec,
)
from repro.storage.buffer import BufferPool
from repro.storage.latch import ReadWriteLatch
from repro.storage.snapshot import save_index, load_index
from repro.storage.wal import WALBackend, checkpoint, recover_index
from repro.storage.faults import FaultInjector, FaultyFile

__all__ = [
    "ReadWriteLatch",
    "save_index",
    "load_index",
    "WALBackend",
    "checkpoint",
    "recover_index",
    "FaultInjector",
    "FaultyFile",
    "IOStats",
    "OperationCounter",
    "DataPage",
    "PageStore",
    "MemoryBackend",
    "FileBackend",
    "PageCodec",
    "DataPageCodec",
    "PickleValueCodec",
    "RawBytesValueCodec",
    "BufferPool",
]
