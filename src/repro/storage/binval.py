"""Compact tagged binary encoding for scalar-ish Python values.

One byte of type tag followed by a fixed ``struct`` body (or a length
prefix for variable-size data).  This is the value codec shared by the
v2 data-page layout (:mod:`repro.storage.serializer`) and the protocol
v3 binary wire payloads (:mod:`repro.server.binpayload`): record values
and wire scalars are the same small universe — ``None``, bools, ints,
floats, strings, bytes, and shallow containers — so one codec serves
both and pickle survives only as the fallback tag for anything else.

Decoding works over ``bytes`` *or* ``memoryview`` without copying the
input (strings/bytes are materialized, everything else is unpacked in
place), which is what lets page images decode straight out of a file
slot or WAL overlay buffer.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Union

from repro.errors import SerializationError

Buffer = Union[bytes, bytearray, memoryview]

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT64 = 3
_TAG_BIGINT = 4
_TAG_FLOAT64 = 5
_TAG_STR = 6
_TAG_BYTES = 7
_TAG_LIST = 8
_TAG_TUPLE = 9
_TAG_DICT = 10
_TAG_PICKLE = 11

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_LEN = struct.Struct("<I")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def encode_into(
    out: bytearray, value: Any, *, pickle_fallback: bool = True
) -> None:
    """Append ``value``'s tagged encoding to ``out``.

    With ``pickle_fallback=False`` a value outside the tagged universe
    raises :class:`~repro.errors.SerializationError` instead of being
    pickled — the wire payload codec uses this so a v3 frame never
    carries (or accepts) a pickle, which would be remote code execution
    waiting to happen.
    """
    if value is None:
        out.append(_TAG_NONE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif type(value) is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(_TAG_INT64)
            out += _I64.pack(value)
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "little", signed=True
            )
            out.append(_TAG_BIGINT)
            out += _LEN.pack(len(raw))
            out += raw
    elif type(value) is float:
        out.append(_TAG_FLOAT64)
        out += _F64.pack(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        out += _LEN.pack(len(raw))
        out += raw
    elif type(value) is bytes or type(value) is bytearray:
        out.append(_TAG_BYTES)
        out += _LEN.pack(len(value))
        out += value
    elif type(value) is list:
        out.append(_TAG_LIST)
        out += _LEN.pack(len(value))
        for item in value:
            encode_into(out, item, pickle_fallback=pickle_fallback)
    elif type(value) is tuple:
        out.append(_TAG_TUPLE)
        out += _LEN.pack(len(value))
        for item in value:
            encode_into(out, item, pickle_fallback=pickle_fallback)
    elif type(value) is dict:
        out.append(_TAG_DICT)
        out += _LEN.pack(len(value))
        for key, item in value.items():
            encode_into(out, key, pickle_fallback=pickle_fallback)
            encode_into(out, item, pickle_fallback=pickle_fallback)
    elif not pickle_fallback:
        raise SerializationError(
            f"no tagged binary encoding for {type(value).__name__}"
        )
    else:
        raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        out.append(_TAG_PICKLE)
        out += _LEN.pack(len(raw))
        out += raw


def encode(value: Any) -> bytes:
    """``value`` as one self-contained tagged blob."""
    out = bytearray()
    encode_into(out, value)
    return bytes(out)


def decode_from(
    buf: Buffer, offset: int, *, allow_pickle: bool = True
) -> tuple[Any, int]:
    """Decode one tagged value at ``offset``; returns ``(value, end)``.

    ``allow_pickle=False`` rejects the pickle tag outright — required
    for any input that crossed a trust boundary (wire frames).
    """
    try:
        tag = buf[offset]
        offset += 1
        if tag == _TAG_NONE:
            return None, offset
        if tag == _TAG_FALSE:
            return False, offset
        if tag == _TAG_TRUE:
            return True, offset
        if tag == _TAG_INT64:
            return _I64.unpack_from(buf, offset)[0], offset + _I64.size
        if tag == _TAG_FLOAT64:
            return _F64.unpack_from(buf, offset)[0], offset + _F64.size
        if tag in (_TAG_BIGINT, _TAG_STR, _TAG_BYTES, _TAG_PICKLE):
            (length,) = _LEN.unpack_from(buf, offset)
            offset += _LEN.size
            end = offset + length
            raw = buf[offset:end]
            if len(raw) < length:
                raise SerializationError("tagged value truncated")
            if tag == _TAG_STR:
                return str(raw, "utf-8"), end
            if tag == _TAG_BYTES:
                return bytes(raw), end
            if tag == _TAG_PICKLE:
                if not allow_pickle:
                    raise SerializationError(
                        "pickled value refused on this input"
                    )
                return pickle.loads(raw), end
            return int.from_bytes(bytes(raw), "little", signed=True), end
        if tag in (_TAG_LIST, _TAG_TUPLE):
            (count,) = _LEN.unpack_from(buf, offset)
            offset += _LEN.size
            items = []
            for _ in range(count):
                item, offset = decode_from(
                    buf, offset, allow_pickle=allow_pickle
                )
                items.append(item)
            return (tuple(items) if tag == _TAG_TUPLE else items), offset
        if tag == _TAG_DICT:
            (count,) = _LEN.unpack_from(buf, offset)
            offset += _LEN.size
            mapping: dict[Any, Any] = {}
            for _ in range(count):
                key, offset = decode_from(
                    buf, offset, allow_pickle=allow_pickle
                )
                value, offset = decode_from(
                    buf, offset, allow_pickle=allow_pickle
                )
                mapping[key] = value
            return mapping, offset
    except (struct.error, IndexError, UnicodeDecodeError,
            pickle.UnpicklingError, EOFError) as exc:
        raise SerializationError(f"corrupt tagged value: {exc}") from exc
    raise SerializationError(f"unknown value tag {tag:#x}")


def decode(buf: Buffer, *, allow_pickle: bool = True) -> Any:
    """Decode exactly one tagged blob; trailing garbage is an error."""
    value, end = decode_from(buf, 0, allow_pickle=allow_pickle)
    if end != len(buf):
        raise SerializationError(
            f"{len(buf) - end} trailing byte(s) after tagged value"
        )
    return value
