"""Logical I/O ledgers.

``IOStats`` is a plain counter pair; ``OperationCounter`` scopes the
dedup-within-an-operation rule: the first read of a page during an
operation costs one access, later touches of the same page are free (the
page sits in the operation's workspace), and each dirtied page costs one
write when the operation completes.  The paper counts accesses the same
way — e.g. an exact-match search is "directory page + data page = 2".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable


@dataclass
class IOStats:
    """Cumulative logical read/write counters."""

    reads: int = 0
    writes: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses; the paper's ρ counts reads and writes alike."""
        return self.reads + self.writes

    def snapshot(self) -> "IOStats":
        return IOStats(self.reads, self.writes)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Accesses since ``earlier`` (a prior :meth:`snapshot`)."""
        return IOStats(self.reads - earlier.reads, self.writes - earlier.writes)

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(self.reads + other.reads, self.writes + other.writes)

    def as_dict(self) -> "dict[str, int]":
        """Plain-dict view for benchmark rows and JSON baselines."""
        return {"reads": self.reads, "writes": self.writes}


@dataclass
class OperationCounter:
    """Per-operation access dedup.

    Tokens are arbitrary hashables — real page ids, or virtual tokens such
    as ``("dir", 3)`` for the one-level scheme's directory pages, which
    are an addressing structure rather than stored objects.
    """

    stats: IOStats
    _seen_reads: set[Hashable] = field(default_factory=set)
    _seen_writes: set[Hashable] = field(default_factory=set)

    def count_read(self, token: Hashable) -> None:
        if token not in self._seen_reads:
            self._seen_reads.add(token)
            self.stats.reads += 1

    def count_write(self, token: Hashable) -> None:
        if token not in self._seen_writes:
            self._seen_writes.add(token)
            self.stats.writes += 1

    def forget(self, token: Hashable) -> None:
        """Drop a token from the dedup sets (used when a page is freed and
        its id may be recycled within the same operation)."""
        self._seen_reads.discard(token)
        self._seen_writes.discard(token)
