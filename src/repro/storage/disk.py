"""The page store: allocation, pinning, buffering and charged page access."""

from __future__ import annotations

import contextlib
import os
import struct
import threading
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterator

from repro.errors import SerializationError, StorageError
from repro.storage.iostats import IOStats, OperationCounter
from repro.storage.latch import ReadWriteLatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.storage.buffer import BufferPool


class Backend(ABC):
    """Physical placement of page images; no accounting, no policy."""

    @abstractmethod
    def store(self, page_id: int, obj: Any) -> None: ...

    @abstractmethod
    def load(self, page_id: int) -> Any: ...

    @abstractmethod
    def discard(self, page_id: int) -> None: ...

    @abstractmethod
    def __contains__(self, page_id: int) -> bool: ...

    @abstractmethod
    def page_ids(self) -> Iterator[int]: ...

    def close(self) -> None:
        """Release any external resources (files)."""


_MISSING = object()


class MemoryBackend(Backend):
    """Pages held as live Python objects — the benchmark configuration."""

    def __init__(self) -> None:
        self._pages: dict[int, Any] = {}

    def store(self, page_id: int, obj: Any) -> None:
        self._pages[page_id] = obj

    def load(self, page_id: int) -> Any:
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(f"page {page_id} does not exist") from None

    def discard(self, page_id: int) -> None:
        if self._pages.pop(page_id, _MISSING) is _MISSING:
            raise StorageError(f"page {page_id} does not exist")

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def page_ids(self) -> Iterator[int]:
        return iter(list(self._pages))


class FileBackend(Backend):
    """Fixed-size page slots in a single file.

    Slot ``i`` lives at byte offset ``header + i * page_size``; each slot
    starts with ``u32`` image length (0 ⇒ free slot) followed by the coded
    image from a :class:`~repro.storage.serializer.CodecRegistry`.  A page
    image larger than its slot raises :class:`SerializationError` — the
    fixed page size is the whole point of the paper's design space.
    """

    _MAGIC = b"BMEH"
    _HEADER = struct.Struct("<4sI")  # magic, page_size
    _SLOT = struct.Struct("<I")

    def __init__(
        self,
        path: str,
        page_size: int = 4096,
        registry: Any | None = None,
        opener: Callable[[str, str], Any] | None = None,
    ) -> None:
        if page_size < 64:
            raise StorageError("page size too small to hold any record")
        if registry is None:
            from repro.storage.serializer import default_registry

            registry = default_registry()
        self._registry = registry
        self._path = path
        self._page_size = page_size
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        #: ``opener(path, mode)`` replaces the builtin ``open`` — the
        #: fault-injection harness passes ``FaultInjector.open`` here to
        #: make every physical write/flush a potential crash point.
        self._file = (opener or open)(path, "r+b" if exists else "w+b")
        #: Cached slot count and live-slot map: membership checks and
        #: loads must not seek to EOF / re-read slot headers per call.
        self._slots = 0
        self._live: set[int] = set()
        if exists:
            magic, stored_size = self._HEADER.unpack(
                self._file.read(self._HEADER.size)
            )
            if magic != self._MAGIC:
                raise StorageError(f"{path} is not a page file")
            if stored_size != page_size:
                raise StorageError(
                    f"{path} was created with page size {stored_size}"
                )
            self._file.seek(0, os.SEEK_END)
            payload = self._file.tell() - self._HEADER.size
            # Ceiling division: the final slot may be written unpadded
            # (store_image stops at the image's last byte), so a partial
            # trailing slot is still a live slot.
            self._slots = -(-max(payload, 0) // self._page_size)
            self._scan_live_slots()
        else:
            self._file.write(self._HEADER.pack(self._MAGIC, page_size))
            self._file.flush()

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def payload_capacity(self) -> int:
        """Largest page image a slot can hold (page size minus header)."""
        return self._page_size - self._SLOT.size

    @property
    def registry(self) -> Any:
        """The codec registry used to encode/decode page images."""
        return self._registry

    def _offset(self, page_id: int) -> int:
        return self._HEADER.size + page_id * self._page_size

    def _slot_count(self) -> int:
        return self._slots

    def _scan_live_slots(self) -> None:
        """One pass over the slot headers at open; after this the live
        map is maintained incrementally by ``store``/``discard``."""
        for page_id in range(self._slots):
            self._file.seek(self._offset(page_id))
            header = self._file.read(self._SLOT.size)
            if len(header) < self._SLOT.size:
                break  # truncated final slot: treat as free
            if self._SLOT.unpack(header)[0] > 0:
                self._live.add(page_id)

    def store(self, page_id: int, obj: Any) -> None:
        self.store_image(page_id, self._registry.encode(obj))

    def store_image(self, page_id: int, image: bytes | memoryview) -> None:
        """Write an already-encoded image into its slot.

        The write path of :meth:`store`, split out so the write-ahead
        log can apply committed images at checkpoint/recovery without
        re-encoding (or even being able to decode) them.  The slot is
        written unpadded (header + image in one ``write()``): readers
        bound decoding by the stored length, so stale tail bytes are
        inert and the page-size pad copy is saved.
        """
        if len(image) > self.payload_capacity:
            raise SerializationError(
                f"page image of {len(image)} bytes exceeds the "
                f"{self._page_size}-byte slot"
            )
        self._file.seek(self._offset(page_id))
        self._file.write(b"".join((self._SLOT.pack(len(image)), image)))
        if page_id >= self._slots:
            self._slots = page_id + 1
        self._live.add(page_id)

    def load(self, page_id: int) -> Any:
        if page_id not in self._live:
            raise StorageError(f"page {page_id} does not exist")
        self._file.seek(self._offset(page_id))
        slot = self._file.read(self._page_size)
        (length,) = self._SLOT.unpack_from(slot, 0)
        if length == 0:
            raise StorageError(f"page {page_id} does not exist")
        if self._SLOT.size + length > min(len(slot), self._page_size):
            raise StorageError(
                f"page {page_id}: corrupt slot — stored length {length} "
                f"exceeds the {self._page_size - self._SLOT.size}-byte "
                "slot payload"
            )
        # Zero-copy decode: the codecs slice the slot through a
        # memoryview instead of copying the image out of it.
        view = memoryview(slot)
        return self._registry.decode(
            view[self._SLOT.size : self._SLOT.size + length]
        )

    def discard(self, page_id: int) -> None:
        if page_id not in self._live:
            raise StorageError(f"page {page_id} does not exist")
        self.apply_discard(page_id)

    def apply_discard(self, page_id: int) -> None:
        """Mark a slot free without requiring it to be live.

        WAL replay re-applies committed discards after a crash; the
        target slot may hold a torn image, a stale image, or already be
        free — the zeroed length must land regardless (idempotence).
        """
        if page_id < self._slots:
            self._file.seek(self._offset(page_id))
            self._file.write(self._SLOT.pack(0))
        self._live.discard(page_id)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._live

    def page_ids(self) -> Iterator[int]:
        return iter(sorted(self._live))

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.flush()
        self._file.close()


class PageStore:
    """Allocation + charged access on top of a backend.

    Page ids are monotonically increasing and never recycled, so an id is
    a valid dedup token for the lifetime of the store.  The paper's
    accounting conventions live here:

    * :meth:`operation` opens a scope in which each page costs at most one
      read and one write;
    * :meth:`pin` marks a page memory-resident (the root node) — pinned
      pages are charged nothing;
    * :meth:`count_virtual_read` / :meth:`count_virtual_write` charge
      accesses to *virtual* pages (the one-level scheme's directory is an
      addressing array, not a stored object, but its page traffic is real).

    Two ledgers: :attr:`stats` counts *logical* accesses under the paper's
    model (λ, λ′, ρ); :attr:`backend_stats` counts *physical* backend
    loads/stores on the data path.  Without a pool the two track each
    other; with a :class:`~repro.storage.buffer.BufferPool` attached
    (``pool=`` or :meth:`attach_pool`) reads are served read-through,
    writes are buffered write-back, and the physical ledger shows the
    saving.  :meth:`free` drops the page's frame before discarding the
    backend slot, so a later :meth:`flush` cannot resurrect a freed page.
    """

    def __init__(
        self, backend: Backend | None = None, pool: "BufferPool | None" = None
    ) -> None:
        self._backend = backend or MemoryBackend()
        self.stats = IOStats()
        self.backend_stats = IOStats()
        self._pinned: set[int] = set()
        self._op: OperationCounter | None = None
        self._pool: "BufferPool | None" = None
        #: Reader/mutator discipline for multi-threaded scans; see
        #: :mod:`repro.storage.latch` and :meth:`read_shared`.
        self._latch = ReadWriteLatch()
        self._frame_lock = threading.Lock()
        existing = list(self._backend.page_ids())
        self._next_id = max(existing) + 1 if existing else 0
        self._live = len(existing)
        self._allocated_ever = self._next_id
        if pool is not None:
            self.attach_pool(pool)

    # -- buffering ---------------------------------------------------------

    @property
    def backend(self) -> Backend:
        """The physical backend (read-only view, for the sanitizer)."""
        return self._backend

    @property
    def pool(self) -> "BufferPool | None":
        """The attached buffer pool, if any."""
        return self._pool

    def attach_pool(self, pool: "BufferPool") -> "BufferPool":
        """Install ``pool`` between this store and its backend.

        The pool receives *counted* load/store callables, so every
        physical access it makes is charged to :attr:`backend_stats`,
        and the store's pinned set, so pinned pages are never evicted.
        """
        if self._pool is not None:
            raise StorageError("a buffer pool is already attached")
        pool.bind(self._backend_load, self._backend_store, self.is_pinned)
        self._pool = pool
        return pool

    def _backend_load(self, page_id: int) -> Any:
        obj = self._backend.load(page_id)
        self.backend_stats.reads += 1
        return obj

    def _backend_store(self, page_id: int, obj: Any) -> None:
        self._backend.store(page_id, obj)
        self.backend_stats.writes += 1

    def flush(self) -> None:
        """Write back every dirty frame and flush the backend.

        Holds the exclusive latch side: a flush restructures frame and
        backend state and must never interleave with in-flight
        :meth:`read_shared` calls from scan workers.
        """
        with self._latch.write():
            if self._pool is not None:
                self._pool.flush()
            backend_flush = getattr(self._backend, "flush", None)
            if backend_flush is not None:
                backend_flush()

    @contextlib.contextmanager
    def group(
        self, metadata: Callable[[], bytes | None] | None = None
    ) -> Iterator[None]:
        """Group-commit scope: one durability point for a whole batch.

        On a WAL backend, every record staged inside the block is
        coalesced under a single COMMIT + flush at exit (see
        :meth:`~repro.storage.wal.WALBackend.begin_group`); on any other
        backend the scope is a transparent no-op.  ``metadata`` is a
        provider called *at commit time* — after the batch's last
        mutation — so the staged metadata blob can never be stale; it
        may return ``None`` to commit without staging metadata.

        If the block (or the write-back at exit) raises, nothing is
        committed: recovery rolls back to the previous commit point, the
        batch's partial-failure contract.
        """
        begin = getattr(self._backend, "begin_group", None)
        if begin is None:
            yield
            return
        begin()
        try:
            yield
        except BaseException:
            self._backend.end_group(commit=False)
            raise
        else:
            try:
                # Pool write-back + backend flush; the backend-level
                # flush is deferred inside the group, so this only
                # stages the batch's remaining dirty frames.
                self.flush()
            except BaseException:
                self._backend.end_group(commit=False)
                raise
            self._backend.end_group(commit=True, metadata=metadata)

    # -- lifecycle ---------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of live pages."""
        return self._live

    @property
    def pages_allocated(self) -> int:
        """Total pages ever allocated (frees do not decrement)."""
        return self._allocated_ever

    def allocate(self, obj: Any) -> int:
        """Create a page holding ``obj``; charges one write.

        Allocation writes through even with a pool attached — the
        backend's slot catalogue stays authoritative for existence —
        and the fresh page is admitted as a clean frame (a just-split
        page is about to be hot).
        """
        page_id = self._next_id
        self._next_id += 1
        self._allocated_ever += 1
        self._live += 1
        self._backend_store(page_id, obj)
        if self._pool is not None:
            self._pool.admit_clean(page_id, obj)
        self._charge_write(page_id)
        return page_id

    def free(self, page_id: int) -> None:
        """Drop a page.  Deallocation is a catalogue update; the paper
        charges no data access for it.

        The page's buffer frame (and dirty bit) is dropped *before* the
        backend slot is discarded: a stale dirty frame surviving a free
        would re-``store()`` the page on the next flush/eviction —
        resurrecting a ghost page and corrupting the live count.
        """
        if page_id in self._pinned:
            raise StorageError(f"cannot free pinned page {page_id}")
        if self._pool is not None:
            self._pool.drop(page_id)
        self._backend.discard(page_id)
        self._live -= 1

    # -- access ------------------------------------------------------------

    def read(self, page_id: int) -> Any:
        if self._pool is not None:
            obj = self._pool.read(page_id)
        else:
            obj = self._backend_load(page_id)
        self._charge_read(page_id)
        return obj

    @property
    def latch(self) -> ReadWriteLatch:
        """The store's read-write latch (see :mod:`repro.storage.latch`)."""
        return self._latch

    def read_shared(self, page_id: int) -> Any:
        """A charged read that is safe to issue from scan worker threads.

        Holds the latch's shared side (so an exclusive holder — a flush,
        a group commit — is never interleaved) and a store-internal
        mutex that serializes the non-thread-safe bookkeeping a read
        performs: buffer-pool LRU movement and eviction, hit/miss
        counters, and the logical ledger's dedup sets.  Accounting is
        identical to :meth:`read`.  Single-threaded code should keep
        calling :meth:`read`; concurrent readers must all come through
        here.
        """
        with self._latch.read():
            with self._frame_lock:
                return self.read(page_id)

    def write(self, page_id: int, obj: Any | None = None) -> None:
        """Mark a page dirty (and optionally replace its object).

        With the in-memory backend, index code mutates the loaded object
        directly and calls ``write(pid)`` to record the access; with a
        byte backend the updated object must be passed so the image is
        re-encoded.  With a pool attached the write is buffered dirty
        and reaches the backend on eviction or flush.

        Only :meth:`allocate` creates pages: a write to an id that was
        never allocated (or was freed) raises on *both* paths.  Without
        the check, the ``obj`` path would silently materialize a page —
        the pool would buffer it dirty, a byte backend would create the
        slot — desyncing :attr:`page_count` / the backend's live map
        from reality and breaking the sanitizer's reachability census.
        """
        if page_id not in self._backend:
            raise StorageError(f"page {page_id} does not exist")
        if obj is not None:
            if self._pool is not None:
                self._pool.write(page_id, obj)
            else:
                self._backend_store(page_id, obj)
        elif not isinstance(self._backend, MemoryBackend):
            raise StorageError(
                "byte backends need the page object passed to write()"
            )
        elif self._pool is not None:
            self._pool.mark_dirty(page_id)
        self._charge_write(page_id)

    def peek(self, page_id: int) -> Any:
        """Uncharged read, for invariant checks and analysis tooling.

        Coherent with the pool: a buffered frame is newer than the
        backend image, so a resident frame wins.  Peeks stay off both
        ledgers and do not disturb the LRU order.
        """
        if self._pool is not None:
            frame = self._pool.peek(page_id, _MISSING)
            if frame is not _MISSING:
                return frame
        return self._backend.load(page_id)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._backend

    def page_ids(self) -> Iterator[int]:
        return self._backend.page_ids()

    def close(self) -> None:
        self.flush()
        self._backend.close()

    # -- accounting --------------------------------------------------------

    def pin(self, page_id: int) -> None:
        if page_id not in self._backend:
            raise StorageError(f"page {page_id} does not exist")
        self._pinned.add(page_id)

    def unpin(self, page_id: int) -> None:
        self._pinned.discard(page_id)

    def is_pinned(self, page_id: int) -> bool:
        return page_id in self._pinned

    def pinned_ids(self) -> frozenset[int]:
        """The pinned page ids (read-only view, for the sanitizer)."""
        return frozenset(self._pinned)

    @contextlib.contextmanager
    def operation(self) -> Iterator[OperationCounter]:
        """Open a dedup scope; nested scopes join the outermost one."""
        if self._op is not None:
            yield self._op
            return
        self._op = OperationCounter(self.stats)
        try:
            yield self._op
        finally:
            self._op = None

    def count_virtual_read(self, token: Hashable) -> None:
        self._charge_read(("virtual", token))

    def count_virtual_write(self, token: Hashable) -> None:
        self._charge_write(("virtual", token))

    def _charge_read(self, token: Hashable) -> None:
        if token in self._pinned:
            return
        if self._op is not None:
            self._op.count_read(token)
        else:
            self.stats.reads += 1

    def _charge_write(self, token: Hashable) -> None:
        if token in self._pinned:
            return
        if self._op is not None:
            self._op.count_write(token)
        else:
            self.stats.writes += 1
