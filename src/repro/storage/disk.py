"""The page store: allocation, pinning, buffering and charged page access."""

from __future__ import annotations

import contextlib
import copy
import os
import struct
import threading
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterator

from repro.errors import SerializationError, StorageError
from repro.storage.iostats import IOStats, OperationCounter
from repro.storage.latch import ReadWriteLatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.storage.buffer import BufferPool


class Backend(ABC):
    """Physical placement of page images; no accounting, no policy."""

    @abstractmethod
    def store(self, page_id: int, obj: Any) -> None: ...

    @abstractmethod
    def load(self, page_id: int) -> Any: ...

    @abstractmethod
    def discard(self, page_id: int) -> None: ...

    @abstractmethod
    def __contains__(self, page_id: int) -> bool: ...

    @abstractmethod
    def page_ids(self) -> Iterator[int]: ...

    def close(self) -> None:
        """Release any external resources (files)."""


_MISSING = object()


class MemoryBackend(Backend):
    """Pages held as live Python objects — the benchmark configuration."""

    def __init__(self) -> None:
        self._pages: dict[int, Any] = {}

    def store(self, page_id: int, obj: Any) -> None:
        self._pages[page_id] = obj

    def load(self, page_id: int) -> Any:
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(f"page {page_id} does not exist") from None

    def discard(self, page_id: int) -> None:
        if self._pages.pop(page_id, _MISSING) is _MISSING:
            raise StorageError(f"page {page_id} does not exist")

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def page_ids(self) -> Iterator[int]:
        return iter(list(self._pages))


class FileBackend(Backend):
    """Fixed-size page slots in a single file.

    Slot ``i`` lives at byte offset ``header + i * page_size``; each slot
    starts with ``u32`` image length (0 ⇒ free slot) followed by the coded
    image from a :class:`~repro.storage.serializer.CodecRegistry`.  A page
    image larger than its slot raises :class:`SerializationError` — the
    fixed page size is the whole point of the paper's design space.
    """

    _MAGIC = b"BMEH"
    _HEADER = struct.Struct("<4sI")  # magic, page_size
    _SLOT = struct.Struct("<I")

    def __init__(
        self,
        path: str,
        page_size: int = 4096,
        registry: Any | None = None,
        opener: Callable[[str, str], Any] | None = None,
    ) -> None:
        if page_size < 64:
            raise StorageError("page size too small to hold any record")
        if registry is None:
            from repro.storage.serializer import default_registry

            registry = default_registry()
        self._registry = registry
        self._path = path
        self._page_size = page_size
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        #: ``opener(path, mode)`` replaces the builtin ``open`` — the
        #: fault-injection harness passes ``FaultInjector.open`` here to
        #: make every physical write/flush a potential crash point.
        self._file = (opener or open)(path, "r+b" if exists else "w+b")
        #: Cached slot count and live-slot map: membership checks and
        #: loads must not seek to EOF / re-read slot headers per call.
        self._slots = 0
        self._live: set[int] = set()
        if exists:
            magic, stored_size = self._HEADER.unpack(
                self._file.read(self._HEADER.size)
            )
            if magic != self._MAGIC:
                raise StorageError(f"{path} is not a page file")
            if stored_size != page_size:
                raise StorageError(
                    f"{path} was created with page size {stored_size}"
                )
            self._file.seek(0, os.SEEK_END)
            payload = self._file.tell() - self._HEADER.size
            # Ceiling division: the final slot may be written unpadded
            # (store_image stops at the image's last byte), so a partial
            # trailing slot is still a live slot.
            self._slots = -(-max(payload, 0) // self._page_size)
            self._scan_live_slots()
        else:
            self._file.write(self._HEADER.pack(self._MAGIC, page_size))
            self._file.flush()

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def payload_capacity(self) -> int:
        """Largest page image a slot can hold (page size minus header)."""
        return self._page_size - self._SLOT.size

    @property
    def registry(self) -> Any:
        """The codec registry used to encode/decode page images."""
        return self._registry

    def _offset(self, page_id: int) -> int:
        return self._HEADER.size + page_id * self._page_size

    def _slot_count(self) -> int:
        return self._slots

    def _scan_live_slots(self) -> None:
        """One pass over the slot headers at open; after this the live
        map is maintained incrementally by ``store``/``discard``."""
        for page_id in range(self._slots):
            self._file.seek(self._offset(page_id))
            header = self._file.read(self._SLOT.size)
            if len(header) < self._SLOT.size:
                break  # truncated final slot: treat as free
            if self._SLOT.unpack(header)[0] > 0:
                self._live.add(page_id)

    def store(self, page_id: int, obj: Any) -> None:
        self.store_image(page_id, self._registry.encode(obj))

    def store_image(self, page_id: int, image: bytes | memoryview) -> None:
        """Write an already-encoded image into its slot.

        The write path of :meth:`store`, split out so the write-ahead
        log can apply committed images at checkpoint/recovery without
        re-encoding (or even being able to decode) them.  The slot is
        written unpadded (header + image in one ``write()``): readers
        bound decoding by the stored length, so stale tail bytes are
        inert and the page-size pad copy is saved.
        """
        if len(image) > self.payload_capacity:
            raise SerializationError(
                f"page image of {len(image)} bytes exceeds the "
                f"{self._page_size}-byte slot"
            )
        self._file.seek(self._offset(page_id))
        self._file.write(b"".join((self._SLOT.pack(len(image)), image)))
        if page_id >= self._slots:
            self._slots = page_id + 1
        self._live.add(page_id)

    def load(self, page_id: int) -> Any:
        if page_id not in self._live:
            raise StorageError(f"page {page_id} does not exist")
        self._file.seek(self._offset(page_id))
        slot = self._file.read(self._page_size)
        (length,) = self._SLOT.unpack_from(slot, 0)
        if length == 0:
            raise StorageError(f"page {page_id} does not exist")
        if self._SLOT.size + length > min(len(slot), self._page_size):
            raise StorageError(
                f"page {page_id}: corrupt slot — stored length {length} "
                f"exceeds the {self._page_size - self._SLOT.size}-byte "
                "slot payload"
            )
        # Zero-copy decode: the codecs slice the slot through a
        # memoryview instead of copying the image out of it.
        view = memoryview(slot)
        return self._registry.decode(
            view[self._SLOT.size : self._SLOT.size + length]
        )

    def discard(self, page_id: int) -> None:
        if page_id not in self._live:
            raise StorageError(f"page {page_id} does not exist")
        self.apply_discard(page_id)

    def apply_discard(self, page_id: int) -> None:
        """Mark a slot free without requiring it to be live.

        WAL replay re-applies committed discards after a crash; the
        target slot may hold a torn image, a stale image, or already be
        free — the zeroed length must land regardless (idempotence).
        """
        if page_id < self._slots:
            self._file.seek(self._offset(page_id))
            self._file.write(self._SLOT.pack(0))
        self._live.discard(page_id)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._live

    def page_ids(self) -> Iterator[int]:
        return iter(sorted(self._live))

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.flush()
        self._file.close()


class StoreSnapshot:
    """A pinned, consistent view of a :class:`PageStore` at open time.

    Returned by :meth:`PageStore.snapshot`.  Reads through it resolve to
    the page contents as of the snapshot's open — copy-on-write version
    entries preserved by later writers, or the live page when it has not
    changed since — with **no read latch held**: a writer is never
    blocked by a snapshot scan, and a snapshot scan never times out
    waiting on a writer.  Reads are charged to the store's logical
    ledger exactly like :meth:`PageStore.read`.

    The returned page objects are shared, frozen views: callers must
    not mutate them.  Use as a context manager (closing releases the
    pinned version epoch so the store can retire preserved copies), and
    wrap index traversals in :meth:`reading` so their internal
    ``store.read()`` calls transparently resolve against this snapshot.
    """

    __slots__ = ("_store", "epoch", "_live", "_closed")

    def __init__(
        self, store: "PageStore", epoch: int, live_ids: frozenset[int]
    ) -> None:
        self._store = store
        #: The pinned version epoch: every page whose content was
        #: committed at or before this epoch is visible.
        self.epoch = epoch
        self._live = live_ids
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._live

    def page_ids(self) -> Iterator[int]:
        """The pages that were live when the snapshot opened."""
        return iter(sorted(self._live))

    def read(self, page_id: int) -> Any:
        """The page's content as of the snapshot; charged like a read."""
        if self._closed:
            raise StorageError("snapshot is closed")
        if page_id not in self._live:
            raise StorageError(
                f"page {page_id} is not part of this snapshot"
            )
        return self._store._snapshot_read(page_id, self.epoch)

    @contextlib.contextmanager
    def reading(self) -> Iterator["StoreSnapshot"]:
        """Route this thread's ``store.read()`` calls through the
        snapshot for the scope of the block.

        The overlay is thread-local, so concurrent writers in other
        threads keep reading (and preserving) live state; fan-out
        helpers (:func:`~repro.core.rangequery.scan_parallel`) re-enter
        the overlay in their worker threads via
        :meth:`PageStore.current_snapshot`.
        """
        store = self._store
        previous = getattr(store._tls, "snapshot", None)
        store._tls.snapshot = self
        try:
            yield self
        finally:
            store._tls.snapshot = previous

    def close(self) -> None:
        """Release the pinned epoch; idempotent.  Once the last snapshot
        pinning an epoch closes, the store retires every preserved page
        version no remaining snapshot can see."""
        if not self._closed:
            self._closed = True
            self._store._release_snapshot(self.epoch)

    def __enter__(self) -> "StoreSnapshot":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class PageStore:
    """Allocation + charged access on top of a backend.

    Page ids are monotonically increasing and never recycled, so an id is
    a valid dedup token for the lifetime of the store.  The paper's
    accounting conventions live here:

    * :meth:`operation` opens a scope in which each page costs at most one
      read and one write;
    * :meth:`pin` marks a page memory-resident (the root node) — pinned
      pages are charged nothing;
    * :meth:`count_virtual_read` / :meth:`count_virtual_write` charge
      accesses to *virtual* pages (the one-level scheme's directory is an
      addressing array, not a stored object, but its page traffic is real).

    Two ledgers: :attr:`stats` counts *logical* accesses under the paper's
    model (λ, λ′, ρ); :attr:`backend_stats` counts *physical* backend
    loads/stores on the data path.  Without a pool the two track each
    other; with a :class:`~repro.storage.buffer.BufferPool` attached
    (``pool=`` or :meth:`attach_pool`) reads are served read-through,
    writes are buffered write-back, and the physical ledger shows the
    saving.  :meth:`free` drops the page's frame before discarding the
    backend slot, so a later :meth:`flush` cannot resurrect a freed page.
    """

    def __init__(
        self, backend: Backend | None = None, pool: "BufferPool | None" = None
    ) -> None:
        self._backend = backend or MemoryBackend()
        self.stats = IOStats()
        self.backend_stats = IOStats()
        self._pinned: set[int] = set()
        self._op: OperationCounter | None = None
        self._pool: "BufferPool | None" = None
        #: Reader/mutator discipline for multi-threaded scans; see
        #: :mod:`repro.storage.latch` and :meth:`read_shared`.
        self._latch = ReadWriteLatch()
        #: The store-internal mutex (reentrant: a shared read holds it
        #: across the pool *and* the backend hop).  Serializes buffer
        #: LRU movement, ledger dedup sets, the byte backends' seeking
        #: file handle, and all MVCC version bookkeeping.
        self._frame_lock = threading.RLock()
        #: MVCC state.  ``_mvcc_epoch`` bumps once per snapshot open;
        #: ``_page_stamp[pid]`` is the epoch at which a page's content
        #: last changed; ``_pinned_epochs`` maps a pinned epoch to its
        #: open-snapshot refcount; ``_versions[pid]`` holds preserved
        #: ``(valid_from_stamp, frozen object)`` copies — appended by
        #: writers (copy-on-write) before they supersede content some
        #: open snapshot still needs, retired when the last snapshot
        #: that could see them closes.
        self._mvcc_epoch = 0
        self._page_stamp: dict[int, int] = {}
        self._pinned_epochs: dict[int, int] = {}
        self._versions: dict[int, list[tuple[int, Any]]] = {}
        #: Thread-local snapshot overlay (see :meth:`StoreSnapshot.reading`).
        self._tls = threading.local()
        existing = list(self._backend.page_ids())
        self._next_id = max(existing) + 1 if existing else 0
        self._live = len(existing)
        self._allocated_ever = self._next_id
        if pool is not None:
            self.attach_pool(pool)

    # -- buffering ---------------------------------------------------------

    @property
    def backend(self) -> Backend:
        """The physical backend (read-only view, for the sanitizer)."""
        return self._backend

    @property
    def pool(self) -> "BufferPool | None":
        """The attached buffer pool, if any."""
        return self._pool

    @property
    def io_lock(self) -> threading.RLock:
        """The store-internal mutex, for callers that must touch the
        physical backend directly (the replication checkpoint transfer
        enumerating committed images) without racing the pool's or the
        snapshot machinery's backend hops."""
        return self._frame_lock

    def attach_pool(self, pool: "BufferPool") -> "BufferPool":
        """Install ``pool`` between this store and its backend.

        The pool receives *counted* load/store callables, so every
        physical access it makes is charged to :attr:`backend_stats`,
        and the store's pinned set, so pinned pages are never evicted.
        """
        if self._pool is not None:
            raise StorageError("a buffer pool is already attached")
        pool.bind(self._backend_load, self._backend_store, self.is_pinned)
        self._pool = pool
        return pool

    def _backend_load(self, page_id: int) -> Any:
        # Under the frame lock: byte backends share one seeking file
        # handle, and latch-free snapshot reads may hit it concurrently.
        with self._frame_lock:
            obj = self._backend.load(page_id)
            self.backend_stats.reads += 1
        return obj

    def _backend_store(self, page_id: int, obj: Any) -> None:
        with self._frame_lock:
            self._backend.store(page_id, obj)
            self.backend_stats.writes += 1

    def flush(self) -> None:
        """Write back every dirty frame and flush the backend.

        Holds the exclusive latch side: a flush restructures frame and
        backend state and must never interleave with in-flight
        :meth:`read_shared` calls from scan workers.  The frame lock is
        additionally held across the pool write-back so a latch-free
        snapshot read never interleaves with eviction traffic.
        """
        with self._latch.write():
            with self._frame_lock:
                if self._pool is not None:
                    self._pool.flush()
                backend_flush = getattr(self._backend, "flush", None)
                if backend_flush is not None:
                    backend_flush()

    @contextlib.contextmanager
    def group(
        self, metadata: Callable[[], bytes | None] | None = None
    ) -> Iterator[None]:
        """Group-commit scope: one durability point for a whole batch.

        On a WAL backend, every record staged inside the block is
        coalesced under a single COMMIT + flush at exit (see
        :meth:`~repro.storage.wal.WALBackend.begin_group`); on any other
        backend the scope is a transparent no-op.  ``metadata`` is a
        provider called *at commit time* — after the batch's last
        mutation — so the staged metadata blob can never be stale; it
        may return ``None`` to commit without staging metadata.

        If the block (or the write-back at exit) raises, nothing is
        committed: recovery rolls back to the previous commit point, the
        batch's partial-failure contract.
        """
        begin = getattr(self._backend, "begin_group", None)
        if begin is None:
            yield
            return
        begin()
        try:
            yield
        except BaseException:
            with self._frame_lock:
                self._backend.end_group(commit=False)
            raise
        else:
            try:
                # Pool write-back + backend flush; the backend-level
                # flush is deferred inside the group, so this only
                # stages the batch's remaining dirty frames.
                self.flush()
            except BaseException:
                with self._frame_lock:
                    self._backend.end_group(commit=False)
                raise
            # Committing checkpoints the batch into the inner page file
            # — seeking writes on the handle latch-free snapshot reads
            # also seek, so the frame lock must cover it.  Taken only
            # here, never around ``self.flush()`` above (flush acquires
            # latch then frame lock; inverting that order deadlocks).
            with self._frame_lock:
                self._backend.end_group(commit=True, metadata=metadata)

    # -- lifecycle ---------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of live pages."""
        return self._live

    @property
    def pages_allocated(self) -> int:
        """Total pages ever allocated (frees do not decrement)."""
        return self._allocated_ever

    def allocate(self, obj: Any) -> int:
        """Create a page holding ``obj``; charges one write.

        Allocation writes through even with a pool attached — the
        backend's slot catalogue stays authoritative for existence —
        and the fresh page is admitted as a clean frame (a just-split
        page is about to be hot).
        """
        page_id = self._next_id
        self._next_id += 1
        self._allocated_ever += 1
        self._live += 1
        self._backend_store(page_id, obj)
        if self._pool is not None:
            self._pool.admit_clean(page_id, obj)
        if self._pinned_epochs:
            # A page born after a snapshot opened is stamped past that
            # snapshot's epoch (and is outside its live set anyway).
            with self._frame_lock:
                self._page_stamp[page_id] = self._mvcc_epoch
        self._charge_write(page_id)
        return page_id

    def free(self, page_id: int) -> None:
        """Drop a page.  Deallocation is a catalogue update; the paper
        charges no data access for it.

        The page's buffer frame (and dirty bit) is dropped *before* the
        backend slot is discarded: a stale dirty frame surviving a free
        would re-``store()`` the page on the next flush/eviction —
        resurrecting a ghost page and corrupting the live count.
        """
        if page_id in self._pinned:
            raise StorageError(f"cannot free pinned page {page_id}")
        if self._pinned_epochs:
            with self._frame_lock:
                # Preserve the doomed content for open snapshots before
                # the slot disappears.
                self._preserve(page_id)
                self._page_stamp[page_id] = self._mvcc_epoch
                if self._pool is not None:
                    self._pool.drop(page_id)
                self._backend.discard(page_id)
        else:
            with self._frame_lock:
                if self._pool is not None:
                    self._pool.drop(page_id)
                # A WAL discard can trip the checkpoint threshold and
                # rewrite the inner file; keep it off the seeking handle
                # while a snapshot read is mid-``load``.
                self._backend.discard(page_id)
        self._live -= 1

    # -- access ------------------------------------------------------------

    def read(self, page_id: int) -> Any:
        snap = getattr(self._tls, "snapshot", None)
        if snap is not None:
            # The thread entered a snapshot overlay: resolve against the
            # pinned version instead of live state (latch-free).
            return snap.read(page_id)
        if self._pinned_epochs:
            # Copy-on-first-access: the caller may mutate the returned
            # object in place (the memory-backend idiom), so a version
            # an open snapshot still needs must be preserved *now*,
            # before the read returns.
            with self._frame_lock:
                self._preserve(page_id)
                return self._read_live(page_id)
        return self._read_live(page_id)

    def _read_live(self, page_id: int) -> Any:
        if self._pool is not None:
            obj = self._pool.read(page_id)
        else:
            obj = self._backend_load(page_id)
        self._charge_read(page_id)
        return obj

    @property
    def latch(self) -> ReadWriteLatch:
        """The store's read-write latch (see :mod:`repro.storage.latch`)."""
        return self._latch

    def read_shared(self, page_id: int) -> Any:
        """A charged read that is safe to issue from scan worker threads.

        Holds the latch's shared side (so an exclusive holder — a flush,
        a group commit — is never interleaved) and a store-internal
        mutex that serializes the non-thread-safe bookkeeping a read
        performs: buffer-pool LRU movement and eviction, hit/miss
        counters, and the logical ledger's dedup sets.  Accounting is
        identical to :meth:`read`.  Single-threaded code should keep
        calling :meth:`read`; concurrent readers must all come through
        here.  A thread inside a snapshot overlay skips the latch
        entirely — snapshot reads are consistent by construction and
        must never wait on (or be timed out by) a writer.
        """
        if getattr(self._tls, "snapshot", None) is not None:
            return self.read(page_id)
        with self._latch.read():
            with self._frame_lock:
                return self.read(page_id)

    def write(self, page_id: int, obj: Any | None = None) -> None:
        """Mark a page dirty (and optionally replace its object).

        With the in-memory backend, index code mutates the loaded object
        directly and calls ``write(pid)`` to record the access; with a
        byte backend the updated object must be passed so the image is
        re-encoded.  With a pool attached the write is buffered dirty
        and reaches the backend on eviction or flush.

        Only :meth:`allocate` creates pages: a write to an id that was
        never allocated (or was freed) raises on *both* paths.  Without
        the check, the ``obj`` path would silently materialize a page —
        the pool would buffer it dirty, a byte backend would create the
        slot — desyncing :attr:`page_count` / the backend's live map
        from reality and breaking the sanitizer's reachability census.
        """
        if page_id not in self._backend:
            raise StorageError(f"page {page_id} does not exist")
        if self._pinned_epochs:
            with self._frame_lock:
                # Blind replacement path (obj without a prior read):
                # the superseded content may still be the version an
                # open snapshot needs — preserve before overwriting.
                # No-op when the writer's own read() already did.
                self._preserve(page_id)
                self._page_stamp[page_id] = self._mvcc_epoch
                self._write_live(page_id, obj)
        else:
            self._write_live(page_id, obj)
        self._charge_write(page_id)

    def _write_live(self, page_id: int, obj: Any | None) -> None:
        if obj is not None:
            if self._pool is not None:
                self._pool.write(page_id, obj)
            else:
                self._backend_store(page_id, obj)
        elif not isinstance(self._backend, MemoryBackend):
            raise StorageError(
                "byte backends need the page object passed to write()"
            )
        elif self._pool is not None:
            self._pool.mark_dirty(page_id)

    def peek(self, page_id: int) -> Any:
        """Uncharged read, for invariant checks and analysis tooling.

        Coherent with the pool: a buffered frame is newer than the
        backend image, so a resident frame wins.  Peeks stay off both
        ledgers and do not disturb the LRU order.
        """
        if self._pool is not None:
            frame = self._pool.peek(page_id, _MISSING)
            if frame is not _MISSING:
                return frame
        with self._frame_lock:
            return self._backend.load(page_id)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._backend

    def page_ids(self) -> Iterator[int]:
        return self._backend.page_ids()

    def close(self) -> None:
        self.flush()
        self._backend.close()

    # -- MVCC snapshots ----------------------------------------------------

    def snapshot(self, timeout: float | None = None) -> StoreSnapshot:
        """Open a consistent point-in-time view of the store.

        Bumps the version epoch and pins the previous one: from here on,
        any writer about to supersede content stamped at or before the
        pinned epoch first preserves a copy (copy-on-write), so reads
        through the returned :class:`StoreSnapshot` see exactly the
        open-time state — with no latch held during the reads and zero
        writer blocking.  Preserved copies are retired when the last
        snapshot pinning them closes.

        Opening holds the exclusive latch side *briefly* (never during
        the snapshot's reads), so it aligns with operation boundaries
        under the same convention checkpoints use: callers that mutate
        from other threads must wrap whole index operations in
        ``latch.write()`` (the service layer's aggregator discipline)
        or a snapshot could capture a half-applied split.
        """
        with self._latch.write(timeout=timeout):
            with self._frame_lock:
                epoch = self._mvcc_epoch
                self._mvcc_epoch = epoch + 1
                self._pinned_epochs[epoch] = (
                    self._pinned_epochs.get(epoch, 0) + 1
                )
                live = frozenset(self.page_ids())
                # Pinned pages (the root) may be mutated through a
                # retained reference before any store access re-touches
                # them; preserve their open-time state eagerly.
                for page_id in self._pinned:
                    self._preserve(page_id)
        return StoreSnapshot(self, epoch, live)

    def current_snapshot(self) -> StoreSnapshot | None:
        """The snapshot overlay active on *this* thread, if any (set by
        :meth:`StoreSnapshot.reading`; fan-out helpers propagate it to
        their worker threads)."""
        return getattr(self._tls, "snapshot", None)

    @property
    def open_snapshots(self) -> int:
        """Number of currently pinned snapshot handles."""
        return sum(self._pinned_epochs.values())

    @property
    def preserved_versions(self) -> int:
        """Preserved page-version copies currently retained (testing and
        sanitizer visibility into retirement)."""
        with self._frame_lock:
            return sum(len(v) for v in self._versions.values())

    def _preserve(self, page_id: int) -> None:
        """Copy-on-write hook; caller holds the frame lock.

        If some open snapshot can still see the page's current content
        (its last-change stamp is at or before a pinned epoch) and no
        copy for that stamp exists yet, capture one now — before the
        caller mutates, replaces or frees the live page.
        """
        if not self._pinned_epochs:
            return
        stamp = self._page_stamp.get(page_id, 0)
        if not any(epoch >= stamp for epoch in self._pinned_epochs):
            return
        entries = self._versions.get(page_id)
        if entries is not None and any(v == stamp for v, _ in entries):
            return
        if page_id not in self._backend:
            return
        frozen = self._capture_live(page_id)
        self._versions.setdefault(page_id, []).append((stamp, frozen))

    def _capture_live(self, page_id: int) -> Any:
        """A private copy of the page's live content (frame lock held).

        Pool frames and memory-backend pages are live objects a writer
        will mutate in place — deep-copy them; a byte backend decodes a
        fresh object per load, which is already private.
        """
        if self._pool is not None:
            frame = self._pool.peek(page_id, _MISSING)
            if frame is not _MISSING:
                return copy.deepcopy(frame)
        obj = self._backend.load(page_id)
        if isinstance(self._backend, MemoryBackend):
            return copy.deepcopy(obj)
        return obj

    def _snapshot_read(self, page_id: int, epoch: int) -> Any:
        """Resolve one page at a pinned epoch (charged)."""
        with self._frame_lock:
            stamp = self._page_stamp.get(page_id, 0)
            if stamp <= epoch:
                # The live content has not changed since the snapshot
                # opened: it *is* the snapshot's version.  Memoize a
                # frozen copy (the same entry a writer would preserve)
                # so later mutations cannot reach what we return.
                self._preserve(page_id)
                for v, obj in self._versions.get(page_id, ()):
                    if v == stamp:
                        self._charge_read(page_id)
                        return obj
                raise StorageError(
                    f"page {page_id} vanished while a snapshot at epoch "
                    f"{epoch} was reading it"
                )
            best: tuple[int, Any] | None = None
            for v, obj in self._versions.get(page_id, ()):
                if v <= epoch and (best is None or v > best[0]):
                    best = (v, obj)
            if best is None:
                raise StorageError(
                    f"page {page_id}: no version visible at snapshot "
                    f"epoch {epoch}"
                )
            self._charge_read(page_id)
            return best[1]

    def _release_snapshot(self, epoch: int) -> None:
        """Unpin one snapshot handle; retire unreachable versions."""
        with self._frame_lock:
            count = self._pinned_epochs.get(epoch, 0) - 1
            if count > 0:
                self._pinned_epochs[epoch] = count
                return
            self._pinned_epochs.pop(epoch, None)
            if not self._pinned_epochs:
                # Last snapshot gone: every preserved copy (and every
                # stamp — an absent stamp reads as "ancient", which only
                # causes a fresh preserve on the next snapshot) retires.
                self._versions.clear()
                self._page_stamp.clear()
                return
            pinned = sorted(self._pinned_epochs)
            for page_id in list(self._versions):
                entries = self._versions[page_id]
                stamp = self._page_stamp.get(page_id, 0)
                keep: set[int] = set()
                for pin in pinned:
                    if stamp <= pin:
                        keep.add(stamp)  # the memoized live-state entry
                        continue
                    best = max(
                        (v for v, _ in entries if v <= pin), default=None
                    )
                    if best is not None:
                        keep.add(best)
                kept = [(v, obj) for v, obj in entries if v in keep]
                if kept:
                    self._versions[page_id] = kept
                else:
                    del self._versions[page_id]

    # -- accounting --------------------------------------------------------

    def pin(self, page_id: int) -> None:
        if page_id not in self._backend:
            raise StorageError(f"page {page_id} does not exist")
        self._pinned.add(page_id)

    def unpin(self, page_id: int) -> None:
        self._pinned.discard(page_id)

    def is_pinned(self, page_id: int) -> bool:
        return page_id in self._pinned

    def pinned_ids(self) -> frozenset[int]:
        """The pinned page ids (read-only view, for the sanitizer)."""
        return frozenset(self._pinned)

    @contextlib.contextmanager
    def operation(self) -> Iterator[OperationCounter]:
        """Open a dedup scope; nested scopes join the outermost one."""
        if self._op is not None:
            yield self._op
            return
        self._op = OperationCounter(self.stats)
        try:
            yield self._op
        finally:
            self._op = None

    def count_virtual_read(self, token: Hashable) -> None:
        self._charge_read(("virtual", token))

    def count_virtual_write(self, token: Hashable) -> None:
        self._charge_write(("virtual", token))

    def _charge_read(self, token: Hashable) -> None:
        if token in self._pinned:
            return
        if self._op is not None:
            self._op.count_read(token)
        else:
            self.stats.reads += 1

    def _charge_write(self, token: Hashable) -> None:
        if token in self._pinned:
            return
        if self._op is not None:
            self._op.count_write(token)
        else:
            self.stats.writes += 1
