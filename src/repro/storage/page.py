"""Data pages: the level-0 record containers of every scheme."""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import DuplicateKeyError, KeyNotFoundError, StorageError

KeyCodes = tuple[int, ...]


class DataPage:
    """A fixed-capacity bucket of ``(pseudo-key codes, value)`` records.

    The paper's parameter ``b`` is :attr:`capacity`.  Records are keyed by
    their full code vector; the *region* a page covers (prefix + depths)
    is directory state, not page state — this reproduction follows the
    paper's design choice of keeping local depths in the directory so an
    emptied page can be dropped without touching it (§2.1).
    """

    __slots__ = ("capacity", "records")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise StorageError("page capacity must be at least 1")
        self.capacity = capacity
        self.records: dict[KeyCodes, Any] = {}

    def __len__(self) -> int:
        return len(self.records)

    @property
    def is_full(self) -> bool:
        return len(self.records) >= self.capacity

    def __contains__(self, key: KeyCodes) -> bool:
        return key in self.records

    def get(self, key: KeyCodes) -> Any:
        try:
            return self.records[key]
        except KeyError:
            raise KeyNotFoundError(f"key {key} not in page") from None

    def put(self, key: KeyCodes, value: Any, *, replace: bool = False) -> None:
        """Store a record; full pages and duplicates are the caller's
        responsibility to split/reject, mirroring the paper's insert."""
        if key in self.records:
            if not replace:
                raise DuplicateKeyError(f"key {key} already present")
            self.records[key] = value
            return
        if self.is_full:
            raise StorageError("page overflow: split before storing")
        self.records[key] = value

    def remove(self, key: KeyCodes) -> Any:
        try:
            return self.records.pop(key)
        except KeyError:
            raise KeyNotFoundError(f"key {key} not in page") from None

    def items(self) -> Iterator[tuple[KeyCodes, Any]]:
        return iter(self.records.items())

    def keys(self) -> Iterator[KeyCodes]:
        return iter(self.records)

    def take_all(self) -> dict[KeyCodes, Any]:
        """Remove and return every record (the paper's copy-to-Q step)."""
        drained = self.records
        self.records = {}
        return drained

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DataPage({len(self.records)}/{self.capacity})"
