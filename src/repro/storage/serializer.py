"""Byte-level page codecs for the file-backed store.

Each page image starts with a one-byte type tag so a heterogeneous file
(data pages interleaved with directory nodes) can be decoded slot by
slot.  Codecs self-register in a :class:`CodecRegistry`; the directory
node codec lives with the node structure in ``repro.core.node`` and
registers itself there, keeping the storage layer free of index
knowledge.
"""

from __future__ import annotations

import pickle
import struct
from abc import ABC, abstractmethod
from typing import Any

from repro.errors import SerializationError
from repro.storage.page import DataPage


class ValueCodec(ABC):
    """Encodes record payloads (the opaque part of a data page)."""

    @abstractmethod
    def encode(self, value: Any) -> bytes: ...

    @abstractmethod
    def decode(self, data: bytes) -> Any: ...


class PickleValueCodec(ValueCodec):
    """Default payload codec: any picklable Python value."""

    def encode(self, value: Any) -> bytes:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes) -> Any:
        return pickle.loads(data)


class RawBytesValueCodec(ValueCodec):
    """Zero-copy payload codec for applications that store bytes."""

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, (bytes, bytearray)):
            raise SerializationError(f"raw codec needs bytes, got {type(value)}")
        return bytes(value)

    def decode(self, data: bytes) -> bytes:
        return data


class PageCodec(ABC):
    """Encodes one page object type, identified by a unique tag byte."""

    tag: int = 0

    @abstractmethod
    def handles(self, obj: Any) -> bool: ...

    @abstractmethod
    def encode_body(self, obj: Any) -> bytes: ...

    @abstractmethod
    def decode_body(self, data: bytes) -> Any: ...


class DataPageCodec(PageCodec):
    """Struct layout for :class:`~repro.storage.page.DataPage`.

    ``u32 capacity | u32 count | u16 dims`` then per record
    ``dims * u64`` pseudo-key codes, ``u32`` payload length, payload.
    Pseudo-key widths are at most 64 bits throughout the library, so a
    fixed u64 per component is exact.
    """

    tag = 0x01
    _HEADER = struct.Struct("<IIH")

    def __init__(self, value_codec: ValueCodec | None = None) -> None:
        self._values = value_codec or PickleValueCodec()

    def handles(self, obj: Any) -> bool:
        return isinstance(obj, DataPage)

    def encode_body(self, page: DataPage) -> bytes:
        records = list(page.items())
        dims = len(records[0][0]) if records else 0
        parts = [self._HEADER.pack(page.capacity, len(records), dims)]
        for codes, value in records:
            if len(codes) != dims:
                raise SerializationError("mixed key arity within one page")
            parts.append(struct.pack(f"<{dims}Q", *codes) if dims else b"")
            payload = self._values.encode(value)
            parts.append(struct.pack("<I", len(payload)))
            parts.append(payload)
        return b"".join(parts)

    def decode_body(self, data: bytes) -> DataPage:
        try:
            capacity, count, dims = self._HEADER.unpack_from(data, 0)
            offset = self._HEADER.size
            page = DataPage(capacity)
            for _ in range(count):
                codes = struct.unpack_from(f"<{dims}Q", data, offset)
                offset += 8 * dims
                (length,) = struct.unpack_from("<I", data, offset)
                offset += 4
                value = self._values.decode(data[offset : offset + length])
                offset += length
                page.put(tuple(codes), value)
            return page
        except (struct.error, pickle.UnpicklingError) as exc:
            raise SerializationError(f"corrupt data page image: {exc}") from exc


class CodecRegistry:
    """Dispatches page objects to codecs by type, and images by tag."""

    def __init__(self) -> None:
        self._by_tag: dict[int, PageCodec] = {}

    def register(self, codec: PageCodec) -> None:
        if codec.tag in self._by_tag:
            raise SerializationError(f"duplicate codec tag {codec.tag:#x}")
        self._by_tag[codec.tag] = codec

    def encode(self, obj: Any) -> bytes:
        for codec in self._by_tag.values():
            if codec.handles(obj):
                return bytes([codec.tag]) + codec.encode_body(obj)
        raise SerializationError(f"no codec for {type(obj).__name__}")

    def decode(self, image: bytes) -> Any:
        if not image:
            raise SerializationError("empty page image")
        codec = self._by_tag.get(image[0])
        if codec is None:
            raise SerializationError(f"unknown page tag {image[0]:#x}")
        return codec.decode_body(image[1:])


def default_registry(value_codec: ValueCodec | None = None) -> CodecRegistry:
    """A registry with the data-page codec plus the directory-node codec
    (imported lazily to keep storage independent of the index layer)."""
    registry = CodecRegistry()
    registry.register(DataPageCodec(value_codec))
    # Late imports: the index layers depend on storage, not vice versa.
    from repro.core.node import NodeCodec
    from repro.kdb.kdbtree import RegionPageCodec

    registry.register(NodeCodec())
    registry.register(RegionPageCodec())
    return registry
