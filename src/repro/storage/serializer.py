"""Byte-level page codecs for the file-backed store.

Each page image starts with a one-byte type tag so a heterogeneous file
(data pages interleaved with directory nodes) can be decoded slot by
slot.  Codecs self-register in a :class:`CodecRegistry`; the directory
node codec lives with the node structure in ``repro.core.node`` and
registers itself there, keeping the storage layer free of index
knowledge.
"""

from __future__ import annotations

import pickle
import struct
from abc import ABC, abstractmethod
from typing import Any

from repro.errors import SerializationError
from repro.storage import binval
from repro.storage.page import DataPage

#: Format-version byte carried by every v2 page image (tags >= 0x10).
#: Legacy tags (0x01-0x03) have no version byte and stay decodable, so
#: snapshots and WALs written before the struct layouts keep working.
PAGE_FORMAT_VERSION = 1


class ValueCodec(ABC):
    """Encodes record payloads (the opaque part of a data page)."""

    @abstractmethod
    def encode(self, value: Any) -> bytes: ...

    @abstractmethod
    def decode(self, data: bytes) -> Any: ...


class PickleValueCodec(ValueCodec):
    """Default payload codec: any picklable Python value."""

    def encode(self, value: Any) -> bytes:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes) -> Any:
        return pickle.loads(data)


class RawBytesValueCodec(ValueCodec):
    """Zero-copy payload codec for applications that store bytes."""

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, (bytes, bytearray)):
            raise SerializationError(f"raw codec needs bytes, got {type(value)}")
        return bytes(value)

    def decode(self, data: bytes) -> bytes:
        return data


class PageCodec(ABC):
    """Encodes one page object type, identified by a unique tag byte."""

    tag: int = 0

    @abstractmethod
    def handles(self, obj: Any) -> bool: ...

    @abstractmethod
    def encode_body(self, obj: Any) -> bytes: ...

    @abstractmethod
    def decode_body(self, data: bytes) -> Any: ...


class DataPageCodec(PageCodec):
    """Struct layout for :class:`~repro.storage.page.DataPage`.

    ``u32 capacity | u32 count | u16 dims`` then per record
    ``dims * u64`` pseudo-key codes, ``u32`` payload length, payload.
    Pseudo-key widths are at most 64 bits throughout the library, so a
    fixed u64 per component is exact.
    """

    tag = 0x01
    _HEADER = struct.Struct("<IIH")

    def __init__(self, value_codec: ValueCodec | None = None) -> None:
        self._values = value_codec or PickleValueCodec()

    def handles(self, obj: Any) -> bool:
        return isinstance(obj, DataPage)

    def encode_body(self, page: DataPage) -> bytes:
        records = list(page.items())
        dims = len(records[0][0]) if records else 0
        parts = [self._HEADER.pack(page.capacity, len(records), dims)]
        for codes, value in records:
            if len(codes) != dims:
                raise SerializationError("mixed key arity within one page")
            parts.append(struct.pack(f"<{dims}Q", *codes) if dims else b"")
            payload = self._values.encode(value)
            parts.append(struct.pack("<I", len(payload)))
            parts.append(payload)
        return b"".join(parts)

    def decode_body(self, data: bytes) -> DataPage:
        try:
            capacity, count, dims = self._HEADER.unpack_from(data, 0)
            offset = self._HEADER.size
            page = DataPage(capacity)
            for _ in range(count):
                codes = struct.unpack_from(f"<{dims}Q", data, offset)
                offset += 8 * dims
                (length,) = struct.unpack_from("<I", data, offset)
                offset += 4
                value = self._values.decode(data[offset : offset + length])
                offset += length
                page.put(tuple(codes), value)
            return page
        except (struct.error, pickle.UnpicklingError) as exc:
            raise SerializationError(f"corrupt data page image: {exc}") from exc


class DataPageCodecV2(PageCodec):
    """v2 struct layout for :class:`~repro.storage.page.DataPage`.

    ``u8 format-version | u32 capacity | u32 count | u16 dims`` then per
    record ``dims * u64`` pseudo-key codes followed by the record value
    in the tagged binary encoding of :mod:`repro.storage.binval` — no
    pickle round-trip for the common scalar values, and the decode path
    slices a ``memoryview`` instead of copying the image.
    """

    tag = 0x11
    _HEADER = struct.Struct("<IIH")

    def handles(self, obj: Any) -> bool:
        return isinstance(obj, DataPage)

    def encode_body(self, page: DataPage) -> bytes:
        records = list(page.items())
        dims = len(records[0][0]) if records else 0
        out = bytearray()
        out.append(PAGE_FORMAT_VERSION)
        out += self._HEADER.pack(page.capacity, len(records), dims)
        pack = struct.Struct(f"<{dims}Q").pack if dims else None
        encode_value = binval.encode_into
        for codes, value in records:
            if len(codes) != dims:
                raise SerializationError("mixed key arity within one page")
            if pack is not None:
                out += pack(*codes)
            encode_value(out, value)
        return bytes(out)

    def decode_body(self, data: bytes | memoryview) -> DataPage:
        try:
            if data[0] != PAGE_FORMAT_VERSION:
                raise SerializationError(
                    f"unsupported data-page format version {data[0]}"
                )
            capacity, count, dims = self._HEADER.unpack_from(data, 1)
            offset = 1 + self._HEADER.size
            page = DataPage(capacity)
            packer = struct.Struct(f"<{dims}Q")
            for _ in range(count):
                codes = packer.unpack_from(data, offset)
                offset += packer.size
                value, offset = binval.decode_from(data, offset)
                page.put(codes, value)
            return page
        except (struct.error, IndexError) as exc:
            raise SerializationError(f"corrupt data page image: {exc}") from exc


class CodecRegistry:
    """Dispatches page objects to codecs by type, and images by tag.

    Encoding picks the first registered codec whose ``handles()`` claims
    the object (registration order is priority order — current formats
    first, legacy decoders after); decoding dispatches on the leading
    tag byte and hands the codec a zero-copy ``memoryview`` of the body.
    """

    def __init__(self) -> None:
        self._by_tag: dict[int, PageCodec] = {}

    def register(self, codec: PageCodec) -> None:
        if codec.tag in self._by_tag:
            raise SerializationError(f"duplicate codec tag {codec.tag:#x}")
        self._by_tag[codec.tag] = codec

    def encode(self, obj: Any) -> bytes:
        for codec in self._by_tag.values():
            if codec.handles(obj):
                return bytes([codec.tag]) + codec.encode_body(obj)
        raise SerializationError(f"no codec for {type(obj).__name__}")

    def decode(self, image: bytes | memoryview) -> Any:
        if not len(image):
            raise SerializationError("empty page image")
        view = image if isinstance(image, memoryview) else memoryview(image)
        codec = self._by_tag.get(view[0])
        if codec is None:
            raise SerializationError(f"unknown page tag {view[0]:#x}")
        return codec.decode_body(view[1:])


def default_registry(value_codec: ValueCodec | None = None) -> CodecRegistry:
    """A registry with the data-page codecs plus the directory-node and
    region-page codecs (imported lazily to keep storage independent of
    the index layer).

    v2 struct codecs are registered first, so they serve every encode;
    the legacy codecs stay registered decode-only, keeping pre-existing
    snapshots and WALs readable.  A custom ``value_codec`` opts the data
    pages back into the legacy pickle-framed layout (the tagged v2
    encoding fixes its own value format).
    """
    registry = CodecRegistry()
    if value_codec is None:
        registry.register(DataPageCodecV2())
        registry.register(DataPageCodec())
    else:
        registry.register(DataPageCodec(value_codec))
        registry.register(DataPageCodecV2())
    # Late imports: the index layers depend on storage, not vice versa.
    from repro.core.node import LegacyNodeCodec, NodeCodec
    from repro.kdb.kdbtree import LegacyRegionPageCodec, RegionPageCodec

    registry.register(NodeCodec())
    registry.register(LegacyNodeCodec())
    registry.register(RegionPageCodec())
    registry.register(LegacyRegionPageCodec())
    return registry
