"""Whole-index snapshots: save any scheme to a file, load it back.

Tree schemes serialize naturally — their directory *is* a set of pages
(nodes + data pages), written through the byte codecs into a
:class:`FileBackend`-formatted page file with a JSON header page for the
index-level metadata (scheme, dims, widths, b, ξ, policy, root id,
counters).

The one-level MDEH directory is not page-resident in this implementation
(it is the in-memory extendible array the paper addresses with Theorem
1), so a snapshot serializes it as a dedicated stream appended after the
page file: the doubling history plus the region groups, in the same
group encoding the node codec uses.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.errors import SerializationError, StorageError
from repro.storage.disk import FileBackend, MemoryBackend, PageStore
from repro.storage.serializer import default_registry

_MAGIC = b"BMEHSNAP"
_HEADER = struct.Struct("<8sI")  # magic, json length


def _index_metadata(index: Any) -> dict:
    from repro.core.hashtree import HashTreeBase
    from repro.core.mdeh import MDEH

    meta: dict[str, Any] = {
        "scheme": type(index).__name__,
        "dims": index.dims,
        "page_capacity": index.page_capacity,
        "widths": list(index.widths),
        "num_keys": len(index),
        "data_pages": index.data_page_count,
    }
    if isinstance(index, HashTreeBase):
        meta.update(
            kind="tree",
            xi=list(index.xi),
            node_policy=index._node_policy,
            root_id=index.root_id,
            node_count=index.node_count,
        )
    elif isinstance(index, MDEH):
        meta.update(
            kind="onelevel",
            dir_page_entries=index._epp,
            element_granular=index._element_granular,
        )
    else:  # pragma: no cover - future schemes must opt in
        raise SerializationError(f"cannot snapshot {type(index).__name__}")
    return meta


def _encode_mdeh_directory(index: Any) -> bytes:
    array = index._dir
    axes = bytes(axis for axis, _ in array.history())
    parts = [struct.pack("<I", len(axes)), axes]
    groups: dict[int, tuple[Any, list[int]]] = {}
    for address in range(len(array)):
        entry = array.get_at(address)
        groups.setdefault(id(entry), (entry, []))[1].append(address)
    parts.append(struct.pack("<I", len(groups)))
    dims = index.dims
    record = struct.Struct(f"<{dims}BBqI")
    for entry, addresses in groups.values():
        ptr = -1 if entry.ptr is None else entry.ptr
        parts.append(record.pack(*entry.h, entry.m, ptr, len(addresses)))
        parts.append(struct.pack(f"<{len(addresses)}I", *addresses))
    return b"".join(parts)


def _decode_mdeh_directory(index: Any, data: bytes) -> None:
    from repro.core.directory import DirEntry
    from repro.extarray import ExtendibleArray

    (axis_count,) = struct.unpack_from("<I", data, 0)
    offset = 4
    axes = data[offset : offset + axis_count]
    offset += axis_count
    array = ExtendibleArray(index.dims, fill=None)
    for axis in axes:
        array.grow(axis)
    (group_count,) = struct.unpack_from("<I", data, offset)
    offset += 4
    dims = index.dims
    record = struct.Struct(f"<{dims}BBqI")
    for _ in range(group_count):
        fields = record.unpack_from(data, offset)
        offset += record.size
        h = fields[:dims]
        m, ptr, cell_count = fields[dims:]
        entry = DirEntry(h, m, None if ptr < 0 else ptr)
        addresses = struct.unpack_from(f"<{cell_count}I", data, offset)
        offset += 4 * cell_count
        for address in addresses:
            array.set_at(address, entry)
    index._dir = array


def save_index(index: Any, path: str, page_size: int = 65536) -> None:
    """Snapshot ``index`` (tree or one-level) into ``path``.

    ``page_size`` bounds the byte image of any single page; the default
    is generous because snapshot files favour simplicity over the tight
    disk layout of a live system.
    """
    meta = _index_metadata(index)
    registry = default_registry()
    with open(path, "wb") as out:
        blob = json.dumps(meta).encode("utf-8")
        out.write(_HEADER.pack(_MAGIC, len(blob)))
        out.write(blob)
        pages = {pid: index.store.peek(pid) for pid in index.store.page_ids()}
        out.write(struct.pack("<I", len(pages)))
        for pid in sorted(pages):
            image = registry.encode(pages[pid])
            if len(image) > page_size:
                raise SerializationError(
                    f"page {pid} image of {len(image)} bytes exceeds "
                    f"snapshot page size {page_size}"
                )
            out.write(struct.pack("<QI", pid, len(image)))
            out.write(image)
        if meta["kind"] == "onelevel":
            directory = _encode_mdeh_directory(index)
            out.write(struct.pack("<I", len(directory)))
            out.write(directory)


def load_index(path: str) -> Any:
    """Restore an index saved by :func:`save_index`."""
    from repro.core import BMEHTree, BalancedBinaryTrie, MDEH, MEHTree
    from repro.core.ehash import ExtendibleHashFile

    schemes = {
        cls.__name__: cls
        for cls in (MDEH, MEHTree, BMEHTree, BalancedBinaryTrie)
    }
    schemes["ExtendibleHashFile"] = ExtendibleHashFile
    registry = default_registry()
    with open(path, "rb") as inp:
        magic, meta_len = _HEADER.unpack(inp.read(_HEADER.size))
        if magic != _MAGIC:
            raise StorageError(f"{path} is not an index snapshot")
        meta = json.loads(inp.read(meta_len))
        cls = schemes.get(meta["scheme"])
        if cls is None:
            raise SerializationError(f"unknown scheme {meta['scheme']!r}")
        store = PageStore(MemoryBackend())
        (page_count,) = struct.unpack("<I", inp.read(4))
        pages = {}
        for _ in range(page_count):
            pid, length = struct.unpack("<QI", inp.read(12))
            pages[pid] = registry.decode(inp.read(length))
        for pid in sorted(pages):
            # Preserve original ids: fill gaps with placeholders, drop them.
            while store.pages_allocated < pid:
                store.free(store.allocate(None))
            store.allocate(pages[pid])
        if meta["kind"] == "tree":
            index = cls.__new__(cls)
            _restore_tree(index, cls, meta, store)
        else:
            index = _restore_onelevel(cls, meta, store, inp)
        index.store.stats.reset()
        return index


def _restore_tree(index: Any, cls: type, meta: dict, store: PageStore) -> None:
    from repro.core.hashtree import HashTreeBase

    HashTreeBase.__init__(
        index,
        dims=meta["dims"],
        page_capacity=meta["page_capacity"],
        widths=tuple(meta["widths"]),
        store=PageStore(),  # throwaway; replaced below
        xi=tuple(meta["xi"]),
        node_policy=meta["node_policy"],
    )
    index._store = store
    index._root_id = meta["root_id"]
    store.pin(index._root_id)
    index._node_count = meta["node_count"]
    index._data_pages = meta["data_pages"]
    index._num_keys = meta["num_keys"]


def _restore_onelevel(cls: type, meta: dict, store: PageStore, inp) -> Any:
    from repro.core.ehash import ExtendibleHashFile

    if cls is ExtendibleHashFile:
        index = cls(
            page_capacity=meta["page_capacity"],
            width=meta["widths"][0],
            store=store,
            dir_page_entries=meta["dir_page_entries"],
        )
    else:
        index = cls(
            dims=meta["dims"],
            page_capacity=meta["page_capacity"],
            widths=tuple(meta["widths"]),
            store=store,
            dir_page_entries=meta["dir_page_entries"],
            element_granular_updates=meta["element_granular"],
        )
    (dir_len,) = struct.unpack("<I", inp.read(4))
    _decode_mdeh_directory(index, inp.read(dir_len))
    index._data_pages = meta["data_pages"]
    index._num_keys = meta["num_keys"]
    return index
