"""Whole-index snapshots: save any scheme to a file, load it back.

Tree schemes serialize naturally — their directory *is* a set of pages
(nodes + data pages), written through the byte codecs into a
:class:`FileBackend`-formatted page file with a JSON header page for the
index-level metadata (scheme, dims, widths, b, ξ, policy, root id,
counters).

The one-level MDEH directory is not page-resident in this implementation
(it is the in-memory extendible array the paper addresses with Theorem
1), so a snapshot serializes it as a dedicated stream appended after the
page file: the doubling history plus the region groups, in the same
group encoding the node codec uses.

Two format versions exist.  Version 1 (magic ``BMEHSNAP``) packed each
hash component of a directory entry as an unsigned byte, which silently
wraps once a local depth exceeds 8 bits of prefix — version 2 (magic
``BMEHSNP2``, the default writer) widens the component field to 16 bits.
The loader reads both; writing version 1 is still possible for
compatibility and raises :class:`SerializationError` instead of wrapping
when an entry does not fit.

The metadata/restoration halves of this module are shared with the
write-ahead log (:mod:`repro.storage.wal`): a WAL commit record carries
the same :func:`index_metadata` JSON (plus :func:`encode_directory`
stream for one-level schemes) that a snapshot header does, and crash
recovery rehydrates through the same :func:`restore_from_metadata`.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable

from repro.errors import SerializationError, StorageError
from repro.storage.disk import MemoryBackend, PageStore
from repro.storage.serializer import default_registry

_MAGIC_V1 = b"BMEHSNAP"
_MAGIC_V2 = b"BMEHSNP2"
_HEADER = struct.Struct("<8sI")  # magic, json length

#: Directory entry record per format version: hash components, local
#: depth m, page pointer, cell count.  v1's unsigned-byte components
#: overflow above 8-bit prefixes; v2 widens them to 16 bits.
_DIR_RECORD_FMT = {1: "B", 2: "H"}
_DIR_COMPONENT_MAX = {1: 0xFF, 2: 0xFFFF}


def index_metadata(index: Any) -> dict:
    """The index-level state a snapshot header (or WAL commit) records."""
    from repro.core.hashtree import HashTreeBase
    from repro.core.mdeh import MDEH

    meta: dict[str, Any] = {
        "scheme": type(index).__name__,
        "dims": index.dims,
        "page_capacity": index.page_capacity,
        "widths": list(index.widths),
        "num_keys": len(index),
        "data_pages": index.data_page_count,
    }
    if isinstance(index, HashTreeBase):
        meta.update(
            kind="tree",
            xi=list(index.xi),
            node_policy=index._node_policy,
            root_id=index.root_id,
            node_count=index.node_count,
        )
    elif isinstance(index, MDEH):
        meta.update(
            kind="onelevel",
            dir_page_entries=index._epp,
            element_granular=index._element_granular,
        )
    else:  # pragma: no cover - future schemes must opt in
        raise SerializationError(f"cannot snapshot {type(index).__name__}")
    return meta


def encode_directory(index: Any, version: int = 2) -> bytes:
    """Serialize a one-level index's extendible directory array."""
    fmt = _DIR_RECORD_FMT.get(version)
    if fmt is None:
        raise SerializationError(f"unknown snapshot version {version}")
    limit = _DIR_COMPONENT_MAX[version]
    array = index._dir
    axes = bytes(axis for axis, _ in array.history())
    parts = [struct.pack("<I", len(axes)), axes]
    groups: dict[int, tuple[Any, list[int]]] = {}
    for address in range(len(array)):
        entry = array.get_at(address)
        groups.setdefault(id(entry), (entry, []))[1].append(address)
    parts.append(struct.pack("<I", len(groups)))
    dims = index.dims
    record = struct.Struct(f"<{dims}{fmt}BqI")
    for entry, addresses in groups.values():
        if any(component > limit for component in entry.h):
            raise SerializationError(
                f"directory entry component {max(entry.h)} exceeds the "
                f"{limit}-max field of snapshot version {version}; "
                f"write version 2"
            )
        ptr = -1 if entry.ptr is None else entry.ptr
        parts.append(record.pack(*entry.h, entry.m, ptr, len(addresses)))
        parts.append(struct.pack(f"<{len(addresses)}I", *addresses))
    return b"".join(parts)


def _decode_directory(index: Any, data: bytes, version: int = 2) -> None:
    from repro.core.directory import DirEntry
    from repro.extarray import ExtendibleArray

    fmt = _DIR_RECORD_FMT.get(version)
    if fmt is None:
        raise SerializationError(f"unknown snapshot version {version}")
    try:
        (axis_count,) = struct.unpack_from("<I", data, 0)
        offset = 4
        axes = data[offset : offset + axis_count]
        offset += axis_count
        array = ExtendibleArray(index.dims, fill=None)
        for axis in axes:
            array.grow(axis)
        (group_count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        dims = index.dims
        record = struct.Struct(f"<{dims}{fmt}BqI")
        for _ in range(group_count):
            fields = record.unpack_from(data, offset)
            offset += record.size
            h = fields[:dims]
            m, ptr, cell_count = fields[dims:]
            entry = DirEntry(h, m, None if ptr < 0 else ptr)
            addresses = struct.unpack_from(f"<{cell_count}I", data, offset)
            offset += 4 * cell_count
            for address in addresses:
                array.set_at(address, entry)
    except struct.error as exc:
        raise SerializationError(
            f"corrupt directory stream in snapshot: {exc}"
        ) from exc
    index._dir = array


def _read_exact(inp: Any, count: int, what: str) -> bytes:
    data = inp.read(count)
    if len(data) < count:
        raise SerializationError(
            f"truncated snapshot: expected {count} bytes of {what}, "
            f"got {len(data)}"
        )
    return data


def save_index(
    index: Any,
    path: str,
    page_size: int = 65536,
    opener: Callable[[str, str], Any] | None = None,
    version: int = 2,
) -> None:
    """Snapshot ``index`` (tree or one-level) into ``path``.

    ``page_size`` bounds the byte image of any single page; the default
    is generous because snapshot files favour simplicity over the tight
    disk layout of a live system.  ``opener`` substitutes for ``open``
    (fault-injection harnesses).  ``version`` selects the on-disk
    format; version 1 exists for compatibility and rejects directories
    it cannot represent instead of silently wrapping them.
    """
    if version == 2:
        magic = _MAGIC_V2
    elif version == 1:
        magic = _MAGIC_V1
    else:
        raise SerializationError(f"unknown snapshot version {version}")
    meta = index_metadata(index)
    registry = default_registry()
    out = (opener or open)(path, "wb")
    try:
        blob = json.dumps(meta).encode("utf-8")
        out.write(_HEADER.pack(magic, len(blob)))
        out.write(blob)
        pages = {pid: index.store.peek(pid) for pid in index.store.page_ids()}
        out.write(struct.pack("<I", len(pages)))
        for pid in sorted(pages):
            image = registry.encode(pages[pid])
            if len(image) > page_size:
                raise SerializationError(
                    f"page {pid} image of {len(image)} bytes exceeds "
                    f"snapshot page size {page_size}"
                )
            out.write(struct.pack("<QI", pid, len(image)))
            out.write(image)
        if meta["kind"] == "onelevel":
            directory = encode_directory(index, version=version)
            out.write(struct.pack("<I", len(directory)))
            out.write(directory)
        out.flush()
    finally:
        out.close()


def load_index(
    path: str, opener: Callable[[str, str], Any] | None = None
) -> Any:
    """Restore an index saved by :func:`save_index` (either version)."""
    registry = default_registry()
    inp = (opener or open)(path, "rb")
    try:
        magic, meta_len = _HEADER.unpack(
            _read_exact(inp, _HEADER.size, "header")
        )
        if magic == _MAGIC_V2:
            version = 2
        elif magic == _MAGIC_V1:
            version = 1
        else:
            raise StorageError(f"{path} is not an index snapshot")
        meta = json.loads(_read_exact(inp, meta_len, "metadata"))
        store = PageStore(MemoryBackend())
        (page_count,) = struct.unpack(
            "<I", _read_exact(inp, 4, "page count")
        )
        pages = {}
        for _ in range(page_count):
            pid, length = struct.unpack(
                "<QI", _read_exact(inp, 12, "page record")
            )
            pages[pid] = registry.decode(_read_exact(inp, length, "page image"))
        for pid in sorted(pages):
            # Preserve original ids: fill gaps with placeholders, drop them.
            while store.pages_allocated < pid:
                store.free(store.allocate(None))
            store.allocate(pages[pid])
        directory = None
        if meta["kind"] == "onelevel":
            (dir_len,) = struct.unpack(
                "<I", _read_exact(inp, 4, "directory length")
            )
            directory = _read_exact(inp, dir_len, "directory stream")
    finally:
        inp.close()
    return restore_from_metadata(
        meta, store, directory, directory_version=version
    )


def restore_from_metadata(
    meta: dict,
    store: PageStore,
    directory: bytes | None = None,
    *,
    directory_version: int = 2,
) -> Any:
    """Rehydrate an index from its metadata dict over a populated store.

    The shared back half of :func:`load_index` and WAL crash recovery
    (:func:`repro.storage.wal.recover_index`): ``store`` already holds
    the pages, ``meta`` is the :func:`index_metadata` dict, and
    ``directory`` is the encoded directory stream for one-level schemes.
    Both I/O ledgers are reset — a freshly restored index has performed
    no accountable work yet.
    """
    from repro.core import BMEHTree, BalancedBinaryTrie, MDEH, MEHTree
    from repro.core.ehash import ExtendibleHashFile

    schemes = {
        cls.__name__: cls
        for cls in (MDEH, MEHTree, BMEHTree, BalancedBinaryTrie)
    }
    schemes["ExtendibleHashFile"] = ExtendibleHashFile
    cls = schemes.get(meta["scheme"])
    if cls is None:
        raise SerializationError(f"unknown scheme {meta['scheme']!r}")
    if meta["kind"] == "tree":
        index = cls.__new__(cls)
        _restore_tree(index, cls, meta, store)
    else:
        if directory is None:
            raise SerializationError(
                f"one-level scheme {meta['scheme']} needs a directory stream"
            )
        index = _restore_onelevel(
            cls, meta, store, directory, version=directory_version
        )
    index.store.stats.reset()
    index.store.backend_stats.reset()
    return index


def _restore_tree(index: Any, cls: type, meta: dict, store: PageStore) -> None:
    from repro.core.hashtree import HashTreeBase

    HashTreeBase.__init__(
        index,
        dims=meta["dims"],
        page_capacity=meta["page_capacity"],
        widths=tuple(meta["widths"]),
        store=PageStore(),  # throwaway; replaced below
        xi=tuple(meta["xi"]),
        node_policy=meta["node_policy"],
    )
    index._store = store
    index._root_id = meta["root_id"]
    store.pin(index._root_id)
    index._node_count = meta["node_count"]
    index._data_pages = meta["data_pages"]
    index._num_keys = meta["num_keys"]


def _restore_onelevel(
    cls: type, meta: dict, store: PageStore, directory: bytes, version: int = 2
) -> Any:
    from repro.core.ehash import ExtendibleHashFile

    if cls is ExtendibleHashFile:
        index = cls(
            page_capacity=meta["page_capacity"],
            width=meta["widths"][0],
            store=store,
            dir_page_entries=meta["dir_page_entries"],
        )
    else:
        index = cls(
            dims=meta["dims"],
            page_capacity=meta["page_capacity"],
            widths=tuple(meta["widths"]),
            store=store,
            dir_page_entries=meta["dir_page_entries"],
            element_granular_updates=meta["element_granular"],
        )
    _decode_directory(index, directory, version=version)
    index._data_pages = meta["data_pages"]
    index._num_keys = meta["num_keys"]
    return index
