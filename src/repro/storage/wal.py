"""Crash safety for the page file: a write-ahead log with recovery.

:class:`~repro.storage.disk.FileBackend` updates slots in place — a
crash mid-``store()`` tears a slot and silently corrupts the index.
:class:`WALBackend` wraps the page file so that torn state is always
repairable:

* every ``store``/``discard`` is first appended to a ``<path>.wal``
  sidecar as a checksummed record; until the next checkpoint the page
  file is never touched (reads of uncommitted pages are served from an
  in-memory image overlay);
* ``flush()`` is a **checkpoint**: a COMMIT record (carrying the staged
  index metadata) is appended and flushed — the durability point — then
  the buffered images are applied to the page file, the page file is
  flushed, and a CHECKPOINT marker records that everything up to here
  has been applied;
* on open, the WAL is scanned: committed transactions after the last
  CHECKPOINT marker are **replayed** into the page file (idempotent
  slot writes repair any torn slot), an uncommitted tail is
  **discarded**, and the WAL is compacted — via write-new-then-rename,
  the only atomic primitive the filesystem gives us — to a fresh log
  holding just the recovered metadata.

The guarantee: after a crash at *any* physical operation, reopening the
page file yields exactly the state of the last durable COMMIT — no torn
slot survives (its committed image is replayed over it), no committed
page is lost, no uncommitted page leaks in.  ``checkpoint(index)`` /
``recover_index(path)`` bind those commit points to whole-index states:
the commit record carries the index-level metadata (scheme, root id,
counters — the same record a snapshot stores), so a recovered page file
rehydrates into a working index.  The fault model this is tested under
(every write/flush a crash point; torn writes; dropped flushes) lives
in :mod:`repro.storage.faults`.

Checkpoints should align with index operation boundaries: a checkpoint
taken mid-split would durably commit a structurally inconsistent (though
storage-wise intact) directory.  ``checkpoint_every`` auto-checkpoints
after N physical ops for long unattended runs (benchmarks); crash-safety
harnesses keep it off and checkpoint explicitly between operations.
"""

from __future__ import annotations

import collections
import json
import os
import struct
import threading
import zlib
from typing import Any, Callable, Iterator

from repro.errors import SerializationError, StorageError
from repro.storage.disk import Backend, FileBackend, PageStore, _MISSING

_WAL_MAGIC = b"BMEHWAL1"
_REC_HEAD = struct.Struct("<BQI")  # op, page id, payload length
_REC_CRC = struct.Struct("<I")
_OP_STORE, _OP_DISCARD, _OP_COMMIT, _OP_CHECKPOINT = 1, 2, 3, 4
_OPS = frozenset((_OP_STORE, _OP_DISCARD, _OP_COMMIT, _OP_CHECKPOINT))
#: Upper bound on a record payload we are willing to buffer while
#: scanning: garbage read as a length field must not allocate gigabytes.
_MAX_PAYLOAD = 1 << 28


class ReplicationTap:
    """A bounded subscription to a WAL's committed batches.

    Attached via :meth:`WALBackend.attach_tap`; every checkpoint cycle
    publishes its batch *after* the COMMIT record's durability flush, so
    a tap only ever sees committed (acked-capturable) state — the PR 8
    capture==acked contract carries over to replication unchanged.

    The buffer is bounded: a follower that stops draining does not pin
    unbounded memory on the primary.  On overflow the tap drops its
    backlog and latches :attr:`overflowed`; the follower must
    re-bootstrap (fresh checkpoint transfer) because the tail it missed
    is gone.  While attached, the tap holds a compaction floor on the
    backend, so :meth:`WALBackend.compact` cannot drop records out from
    under a live stream.
    """

    #: Batches buffered before the tap declares overflow.
    LIMIT = 4096

    def __init__(self, tap_id: int, floor_token: int) -> None:
        self.tap_id = tap_id
        self.floor_token = floor_token
        self.overflowed = False
        self._batches: collections.deque = collections.deque()
        self._lock = threading.Lock()

    def publish(self, batch: dict) -> None:
        with self._lock:
            if self.overflowed:
                return  # backlog already lost; buffering more is pointless
            if len(self._batches) >= self.LIMIT:
                self._batches.clear()
                self.overflowed = True
                return
            self._batches.append(batch)

    def drain(self) -> list[dict]:
        """All buffered batches, in commit order (empties the buffer)."""
        with self._lock:
            batches = list(self._batches)
            self._batches.clear()
            return batches

    @property
    def backlog(self) -> int:
        with self._lock:
            return len(self._batches)


class WALBackend(Backend):
    """A crash-safe wrapper around a :class:`FileBackend` page file.

    Drop-in for any :class:`~repro.storage.disk.PageStore` backend; the
    store's ``flush()`` becomes the commit point.  Uncommitted updates
    live in the WAL file and an in-memory *image* overlay (loads decode
    a fresh object per read, preserving byte-backend semantics).
    """

    def __init__(
        self,
        path: str,
        page_size: int = 4096,
        registry: Any | None = None,
        opener: Callable[[str, str], Any] | None = None,
        checkpoint_every: int | None = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise StorageError("checkpoint_every must be >= 1 ops")
        self._opener = opener or open
        self._inner = FileBackend(
            path, page_size=page_size, registry=registry, opener=opener
        )
        self._registry = self._inner.registry
        self._wal_path = path + ".wal"
        #: page id -> encoded image (pending store) or None (tombstone).
        self._pending: dict[int, bytes | None] = {}
        self._staged_meta: bytes | None = None
        self._meta: bytes | None = None
        self._checkpoint_every = checkpoint_every
        self._ops_since_checkpoint = 0
        #: Group-commit state: while ``_group_depth > 0`` every flush is
        #: deferred to the matching ``end_group`` — one COMMIT record and
        #: one durability flush for the whole batch.
        self._group_depth = 0
        self._deferred_flush = False
        self.wal_records = 0
        self.checkpoints = 0
        self.replayed_ops = 0
        self.discarded_tail_ops = 0
        #: Reusable record staging buffer: the append path assembles
        #: head | payload | crc in place, so committing a page allocates
        #: no intermediate ``bytes`` copy of the payload (the buffer
        #: grows to the largest record seen and is then reused).
        self._scratch = bytearray()
        #: Commit sequence number: bumped once per durable COMMIT, so a
        #: replication stream can order batches and measure follower
        #: lag.  In-memory (per-process lifetime): a follower that
        #: reconnects after a primary restart re-bootstraps rather than
        #: resuming mid-stream, so the LSN never needs to be durable.
        self._lsn = 0
        #: Attached replication taps, by tap id.
        self._taps: dict[int, ReplicationTap] = {}
        self._next_tap = 0
        #: Outstanding compaction floors (tokens).  While any is held,
        #: :meth:`compact` refuses: a reader (replication tap, mid-replay
        #: scan) still depends on the current sidecar's records.
        self._floors: set[int] = set()
        self._next_floor = 0
        self._wal = self._recover()

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> Any:
        """Replay-or-discard the sidecar, compact it, return the handle."""
        exists = (
            os.path.exists(self._wal_path)
            and os.path.getsize(self._wal_path) > 0
        )
        if not exists:
            wal = self._opener(self._wal_path, "w+b")
            wal.write(_WAL_MAGIC)
            wal.flush()
            return wal
        wal = self._opener(self._wal_path, "r+b")
        try:
            replay, meta, tail_ops = self._scan(wal)
        finally:
            wal.close()
        for op, page_id, payload in replay:
            if op == _OP_STORE:
                self._inner.store_image(page_id, payload)
            else:
                self._inner.apply_discard(page_id)
        self.replayed_ops = len(replay)
        self.discarded_tail_ops = tail_ops
        self._meta = meta
        self._inner.flush()
        return self._compact(meta)

    @classmethod
    def _scan(
        cls, wal: Any
    ) -> tuple[list[tuple[int, int, bytes]], bytes | None, int]:
        """One pass over the log: committed ops still needing replay (in
        commit order), the last committed metadata, and the size of the
        discarded uncommitted tail."""
        magic = wal.read(len(_WAL_MAGIC))
        if len(magic) < len(_WAL_MAGIC):
            return [], None, 0  # torn at creation: nothing was committed
        if magic != _WAL_MAGIC:
            raise StorageError("WAL sidecar has an unrecognized header")
        replay: list[tuple[int, int, bytes]] = []
        txn: list[tuple[int, int, bytes]] = []
        meta: bytes | None = None
        while True:
            head = wal.read(_REC_HEAD.size)
            if len(head) < _REC_HEAD.size:
                break
            op, page_id, length = _REC_HEAD.unpack(head)
            if op not in _OPS or length > _MAX_PAYLOAD:
                break  # garbage: the valid log ends here
            payload = wal.read(length)
            if len(payload) < length:
                break
            crc = wal.read(_REC_CRC.size)
            if len(crc) < _REC_CRC.size:
                break
            if _REC_CRC.unpack(crc)[0] != zlib.crc32(payload, zlib.crc32(head)):
                break  # torn record: this and everything after is void
            if op in (_OP_STORE, _OP_DISCARD):
                txn.append((op, page_id, payload))
            elif op == _OP_COMMIT:
                replay.extend(txn)
                txn.clear()
                meta = payload or meta
            else:  # CHECKPOINT: everything before it already reached disk
                replay.clear()
        return replay, meta, len(txn)

    def _compact(self, meta: bytes | None) -> Any:
        """Rewrite the sidecar as header + (COMMIT(meta), CHECKPOINT).

        Built as a fresh file and renamed over the old one: rename is
        the filesystem's atomic primitive, so a crash here leaves either
        the old log (replayed again — idempotent) or the new one, never
        a half-truncated log that lost the metadata.
        """
        tmp_path = self._wal_path + ".tmp"
        tmp = self._opener(tmp_path, "w+b")
        tmp.write(_WAL_MAGIC)
        if meta is not None:
            tmp.write(self._record(_OP_COMMIT, 0, meta))
            tmp.write(self._record(_OP_CHECKPOINT, 0))
        tmp.flush()
        tmp.close()
        os.replace(tmp_path, self._wal_path)
        wal = self._opener(self._wal_path, "r+b")
        wal.seek(0, os.SEEK_END)
        return wal

    # -- WAL records -------------------------------------------------------

    @staticmethod
    def _record(
        op: int, page_id: int, payload: bytes | memoryview = b""
    ) -> bytes:
        head = _REC_HEAD.pack(op, page_id, len(payload))
        crc = zlib.crc32(payload, zlib.crc32(head))
        return b"".join((head, payload, _REC_CRC.pack(crc)))

    def _append(
        self, op: int, page_id: int, payload: bytes | memoryview = b""
    ) -> None:
        # Assemble the record in the reusable scratch buffer: the CRC is
        # computed incrementally over head then payload, so the append
        # path never builds a ``head + payload`` bytes copy.
        total = _REC_HEAD.size + len(payload) + _REC_CRC.size
        if len(self._scratch) < total:
            self._scratch = bytearray(total)
        buf = self._scratch
        _REC_HEAD.pack_into(buf, 0, op, page_id, len(payload))
        end = _REC_HEAD.size + len(payload)
        buf[_REC_HEAD.size:end] = payload
        with memoryview(buf) as view:
            crc = zlib.crc32(view[:end])
            _REC_CRC.pack_into(buf, end, crc)
            # One write() call per record: a torn write can cut a record
            # short but never interleave two.
            self._wal.write(view[:total])
        self.wal_records += 1

    # -- Backend API -------------------------------------------------------

    @property
    def page_size(self) -> int:
        return self._inner.page_size

    @property
    def inner(self) -> FileBackend:
        """The wrapped page file (read-only view, for the sanitizer)."""
        return self._inner

    def store(self, page_id: int, obj: Any) -> None:
        image = self._registry.encode(obj)
        if len(image) > self._inner.payload_capacity:
            # Surface the slot overflow at store() time, exactly like the
            # raw FileBackend would — not at some later checkpoint.
            raise SerializationError(
                f"page image of {len(image)} bytes exceeds the "
                f"{self._inner.page_size}-byte slot"
            )
        self._append(_OP_STORE, page_id, image)
        self._pending[page_id] = image
        self._count_op()

    def load(self, page_id: int) -> Any:
        image = self._pending.get(page_id, _MISSING)
        if image is None:
            raise StorageError(f"page {page_id} does not exist")
        if image is not _MISSING:
            return self._registry.decode(image)
        return self._inner.load(page_id)

    def discard(self, page_id: int) -> None:
        if page_id not in self:
            raise StorageError(f"page {page_id} does not exist")
        self._append(_OP_DISCARD, page_id)
        self._pending[page_id] = None
        self._count_op()

    def __contains__(self, page_id: int) -> bool:
        image = self._pending.get(page_id, _MISSING)
        if image is not _MISSING:
            return image is not None
        return page_id in self._inner

    def page_ids(self) -> Iterator[int]:
        live = set(self._inner.page_ids())
        for page_id, image in self._pending.items():
            if image is None:
                live.discard(page_id)
            else:
                live.add(page_id)
        return iter(sorted(live))

    # -- checkpointing -----------------------------------------------------

    def stage_metadata(self, blob: bytes) -> None:
        """Attach application metadata to the next commit (durable with
        it, recovered from it)."""
        self._staged_meta = bytes(blob)

    @property
    def metadata(self) -> bytes | None:
        """The metadata of the last durable commit (``None`` if never
        committed with metadata)."""
        return self._meta

    def pending_store_ids(self) -> frozenset:
        """Uncommitted page ids awaiting store (view, for the sanitizer)."""
        return frozenset(
            pid for pid, image in self._pending.items() if image is not None
        )

    def pending_discard_ids(self) -> frozenset:
        """Uncommitted tombstones (view, for the sanitizer)."""
        return frozenset(
            pid for pid, image in self._pending.items() if image is None
        )

    def _count_op(self) -> None:
        self._ops_since_checkpoint += 1
        if (
            self._checkpoint_every is not None
            and self._ops_since_checkpoint >= self._checkpoint_every
        ):
            self.flush()

    # -- group commit ------------------------------------------------------

    def begin_group(self) -> None:
        """Open a group-commit scope: flushes inside it are deferred to
        the matching :meth:`end_group`, which emits a single COMMIT and
        a single durability flush for the whole batch.  Nests: only the
        outermost ``end_group`` commits."""
        self._group_depth += 1

    def end_group(self, commit: bool = True, metadata: Any = None) -> None:
        """Close a group-commit scope.

        With ``commit=True`` (and work to commit — staged records, a
        staged metadata blob, or a deferred flush request), a single
        checkpoint cycle runs: ``metadata`` (a zero-argument provider,
        invoked *now* so the blob reflects the batch's final state) is
        staged if it returns a blob, then :meth:`flush` appends one
        COMMIT record and applies the batch.  With ``commit=False`` the
        batch stays uncommitted in the WAL tail: recovery discards it,
        rolling back to the previous commit point.
        """
        if self._group_depth == 0:
            raise StorageError("end_group() without a matching begin_group()")
        self._group_depth -= 1
        if self._group_depth:
            return
        deferred = self._deferred_flush
        self._deferred_flush = False
        if not commit:
            return
        if self._pending or self._staged_meta is not None or deferred:
            if metadata is not None:
                blob = metadata()
                if blob is not None:
                    self.stage_metadata(blob)
            self.flush()

    @property
    def in_group(self) -> bool:
        """Whether a group-commit scope is currently open."""
        return self._group_depth > 0

    def flush(self) -> None:
        """Checkpoint: commit the pending batch, apply it, mark applied."""
        if self._group_depth:
            # Inside a group the commit point is the group boundary:
            # remember that durability was requested and return.
            self._deferred_flush = True
            return
        if not self._pending and self._staged_meta is None:
            self._inner.flush()
            return
        meta = self._staged_meta if self._staged_meta is not None else self._meta
        self._append(_OP_COMMIT, 0, meta or b"")
        self._wal.flush()  # durability point: the batch is now committed
        self._meta = meta
        self._staged_meta = None
        self._lsn += 1
        if self._taps:
            # Publish strictly after the durability flush: a tap never
            # sees a batch that a crash could still roll back.
            ops = [
                ("discard", page_id, None)
                if image is None
                else ("store", page_id, image)
                for page_id, image in sorted(self._pending.items())
            ]
            batch = {"lsn": self._lsn, "ops": ops, "meta": meta}
            for tap in list(self._taps.values()):
                tap.publish(batch)
        for page_id in sorted(self._pending):
            image = self._pending[page_id]
            if image is None:
                self._inner.apply_discard(page_id)
            else:
                self._inner.store_image(page_id, image)
        self._inner.flush()
        self._append(_OP_CHECKPOINT, 0)
        self._wal.flush()
        self._pending.clear()
        self._ops_since_checkpoint = 0
        self.checkpoints += 1

    # -- replication -------------------------------------------------------

    @property
    def lsn(self) -> int:
        """Sequence number of the last durable COMMIT (0 if none yet
        this process)."""
        return self._lsn

    def attach_tap(self) -> ReplicationTap:
        """Subscribe to committed batches (and hold a compaction floor
        for the stream's lifetime).  Pair with :meth:`detach_tap`."""
        tap_id = self._next_tap
        self._next_tap += 1
        tap = ReplicationTap(tap_id, self.acquire_floor())
        self._taps[tap_id] = tap
        return tap

    def detach_tap(self, tap_id: int) -> None:
        tap = self._taps.pop(tap_id, None)
        if tap is not None:
            self.release_floor(tap.floor_token)

    @property
    def tap_count(self) -> int:
        return len(self._taps)

    def committed_pages(self) -> Iterator[tuple[int, bytes]]:
        """Encoded images of every page in the *committed* page file, for
        a checkpoint transfer.

        Reads the inner file only: callers must invoke it outside the
        commit window (the served path runs it under the read side of
        the write gate, which excludes `flush()`), when the pending
        overlay is empty and the inner file is exactly the last durable
        commit.
        """
        for page_id in self._inner.page_ids():
            yield page_id, self._registry.encode(self._inner.load(page_id))

    def apply_replicated(
        self,
        ops: list[tuple[str, int, bytes | None]],
        metadata: bytes | None = None,
    ) -> None:
        """Apply one shipped batch on a follower: append the records to
        *this* WAL, stage the batch metadata, and commit.

        Full-image ops are idempotent, so replaying a batch (checkpoint
        chunk overlapping a tail, or a re-bootstrap) converges.  The
        follower's durable state is thereby a standard WAL page file —
        promotion reopens it through the stock :func:`recover_index`
        path, no special follower format.
        """
        for op, page_id, image in ops:
            if op == "store":
                if image is None:
                    raise StorageError("replicated store without an image")
                image = bytes(image)
                self._append(_OP_STORE, page_id, image)
                self._pending[page_id] = image
            elif op == "discard":
                self._append(_OP_DISCARD, page_id)
                self._pending[page_id] = None
            else:
                raise StorageError(f"unknown replicated op {op!r}")
        if metadata is not None:
            self.stage_metadata(metadata)
        if self._pending or self._staged_meta is not None:
            self.flush()

    # -- compaction floors -------------------------------------------------

    def acquire_floor(self) -> int:
        """Declare that a reader depends on the current sidecar records;
        :meth:`compact` refuses until the returned token is released."""
        token = self._next_floor
        self._next_floor += 1
        self._floors.add(token)
        return token

    def release_floor(self, token: int) -> None:
        self._floors.discard(token)

    @property
    def floors_held(self) -> int:
        return len(self._floors)

    def compact(self) -> None:
        """Checkpoint, then rewrite the sidecar down to its minimal form
        (header + last commit).

        Refuses with :class:`StorageError` while any compaction floor is
        held: a reader mid-replay (or a live replication tap) still
        needs the records the rewrite would drop.  Callers retry after
        the reader releases its floor.
        """
        if self._floors:
            raise StorageError(
                f"compact() refused: {len(self._floors)} reader floor(s) "
                "held on the WAL sidecar"
            )
        self.flush()
        self._wal.close()
        self._wal = self._compact(self._meta)

    def close(self) -> None:
        self.flush()
        self._wal.close()
        self._inner.close()


# -- whole-index durability -------------------------------------------------


def metadata_blob(index: Any) -> bytes:
    """Index-level state for a commit record: the snapshot header JSON,
    plus (for the one-level scheme) the encoded in-memory directory.

    Used by :func:`checkpoint` and by the batch executors' group-commit
    metadata providers (:meth:`PageStore.group`'s ``metadata=``).
    """
    from repro.storage.snapshot import encode_directory, index_metadata

    meta = index_metadata(index)
    blob = json.dumps(meta).encode("utf-8")
    parts = [struct.pack("<I", len(blob)), blob]
    if meta["kind"] == "onelevel":
        parts.append(encode_directory(index))
    return b"".join(parts)


#: Backwards-compatible alias (pre-batching name).
_metadata_blob = metadata_blob


def decode_metadata_blob(blob: bytes) -> tuple[dict, bytes | None]:
    """Split a commit-record metadata blob back into the snapshot header
    dict and the (optional) encoded directory tail — the inverse of
    :func:`metadata_blob`.  Shared by :func:`recover_index` and the
    replica bootstrap path."""
    (meta_len,) = struct.unpack_from("<I", blob, 0)
    meta = json.loads(blob[4 : 4 + meta_len].decode("utf-8"))
    directory = blob[4 + meta_len :] or None
    return meta, directory


def checkpoint(index: Any) -> None:
    """Durably commit ``index``'s current state.

    Stages the index-level metadata (scheme, root id, counters — and the
    in-memory directory for the one-level scheme) on the WAL and
    flushes, making this exact state the one :func:`recover_index`
    returns after any later crash.  Call it between operations — never
    mid-insert.
    """
    backend = index.store.backend
    if not isinstance(backend, WALBackend):
        raise StorageError(
            "checkpoint() needs an index built on a WALBackend"
        )
    backend.stage_metadata(metadata_blob(index))
    index.store.flush()


def recover_index(
    path: str,
    page_size: int = 4096,
    registry: Any | None = None,
    pool_capacity: int | None = None,
) -> Any | None:
    """Reopen a crashed (or cleanly closed) WAL-backed index.

    Opens ``path`` through a fresh :class:`WALBackend` — which replays
    or discards the sidecar — and rehydrates the index recorded by the
    last durable :func:`checkpoint`.  Returns ``None`` when no
    checkpoint ever committed (crash before the first commit: there is
    no index to recover, and no data was ever guaranteed durable).
    ``pool_capacity`` attaches an LRU buffer pool in front of the WAL
    (the served configuration); durability is unaffected — group commit
    flushes the pool before every COMMIT.
    """
    from repro.storage.snapshot import restore_from_metadata

    backend = WALBackend(path, page_size=page_size, registry=registry)
    blob = backend.metadata
    if blob is None:
        backend.close()
        return None
    meta, directory = decode_metadata_blob(blob)
    pool = None
    if pool_capacity is not None:
        from repro.storage.buffer import BufferPool

        pool = BufferPool(pool_capacity)
    store = PageStore(backend, pool=pool)
    index = restore_from_metadata(meta, store, directory)
    # The recovered store serves this index alone: enable the
    # sanitizer's page-leak census over it.
    index._owns_store = True
    return index
