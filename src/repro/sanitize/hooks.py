"""Sanitizer hooks: re-validate an index after every mutating operation.

Two opt-in surfaces, both zero-cost when off:

* ``REPRO_SANITIZE=1`` in the environment installs class-level hooks for
  every index scheme at ``import repro`` time (sampling rate from
  ``REPRO_SANITIZE_RATE``, default 1.0) — the whole test suite, the CLI
  and the benchmarks then run under continuous structural validation;
* :func:`sanitized` wraps one index instance for the duration of a
  ``with`` block and runs a final deep check on exit.

Sampling is *deterministic* (a credit accumulator, not a coin flip) so a
violation found at rate < 1 reproduces under the same seed.  Checks run
only after operations that complete normally: a raised
``DuplicateKeyError``/``KeyNotFoundError`` leaves the structure as it
was, and a structural exception mid-split is the interesting artifact
itself — re-walking a half-mutated tree would only bury it.
"""

from __future__ import annotations

import contextlib
import functools
import os
from typing import Any, Callable, Iterator

from repro.sanitize.invariants import check_structure

__all__ = [
    "Sanitizer",
    "disable_global_sanitizer",
    "enable_global_sanitizer",
    "sanitize_enabled",
    "sanitize_rate",
    "sanitized",
]

_ENV_FLAG = "REPRO_SANITIZE"
_ENV_RATE = "REPRO_SANITIZE_RATE"
#: Index methods that mutate structure and therefore trigger a check.
#: The batch executors are hooked as whole operations: the check fires at
#: the group-commit boundary, where the structure must be coherent (the
#: batch-coherent invariant) — not between the batch's internal steps.
_MUTATORS = ("insert", "delete", "insert_many", "delete_many")


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests the debug mode."""
    value = os.environ.get(_ENV_FLAG, "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def sanitize_rate(default: float = 1.0) -> float:
    """Sampling rate from ``REPRO_SANITIZE_RATE``, clamped to [0, 1]."""
    raw = os.environ.get(_ENV_RATE)
    if raw is None:
        return default
    try:
        rate = float(raw)
    except ValueError:
        return default
    return min(max(rate, 0.0), 1.0)


#: Amortization divisor: a structure of n keys is re-validated at most
#: every ``n // _AMORTIZE_DIVISOR`` sampled mutations, bounding the
#: sanitizer's total cost at a constant multiple of the workload's own.
_AMORTIZE_DIVISOR = 48


class Sanitizer:
    """Post-mutation validation with deterministic sampling.

    ``rate=1.0`` checks after every mutation, ``rate=0.25`` after every
    fourth: after ``n`` mutations exactly ``floor(n * rate)`` checks have
    fired, at evenly spaced positions.

    With ``amortize=True`` (the global, whole-suite mode) a full check
    additionally waits until the mutations since the last one cover the
    structure's size: a deep walk is O(keys), so checking a k-key index
    every ``k / 48`` mutations keeps the overhead a bounded constant
    factor instead of turning n-insert loops into O(n^2).  Indexes under
    48 keys — every hand-built unit-test fixture — are still checked
    after each sampled mutation.
    """

    def __init__(self, rate: float = 1.0, *, amortize: bool = False) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate {rate} outside [0, 1]")
        self.rate = rate
        self.amortize = amortize
        self.checks_run = 0
        self.mutations_seen = 0
        self._fired = 0
        self._pending = 0
        self._active = False

    def should_check(self) -> bool:
        """Advance the sampling credit by one mutation.

        The fire count tracks ``floor(mutations * rate)`` exactly — a
        running float accumulator would drift (fifty additions of 0.1 sum
        to 4.999…), losing checks the rate promises.
        """
        self.mutations_seen += 1
        due = int(self.mutations_seen * self.rate + 1e-9)
        if due > self._fired:
            self._fired = due
            return True
        return False

    def run(self, index: Any) -> None:
        """Validate ``index`` if this mutation is sampled.

        Re-entrancy guarded: a checker that itself triggers wrapped
        methods (or nested index mutations) cannot recurse.
        """
        if self._active or not self.should_check():
            return
        if self.amortize:
            self._pending += 1
            try:
                size = len(index)
            except TypeError:
                size = 0
            if self._pending < size // _AMORTIZE_DIVISOR:
                return
        self._pending = 0
        self._active = True
        try:
            check_structure(index)
            self.checks_run += 1
        finally:
            self._active = False


# -- global (class-level) hooks ----------------------------------------------

#: (defining class, method name) -> original function, for uninstall.
_installed: dict[tuple[type, str], Callable[..., Any]] = {}
_global_sanitizer: Sanitizer | None = None


def _index_classes() -> list[type]:
    from repro.core.hashtree import HashTreeBase
    from repro.core.mdeh import MDEH
    from repro.gridfile import GridFile
    from repro.kdb import KDBTree
    from repro.zorder import ZOrderIndex

    return [HashTreeBase, MDEH, GridFile, KDBTree, ZOrderIndex]


def _wrap(original: Callable[..., Any], sanitizer: Sanitizer):
    @functools.wraps(original)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        result = original(self, *args, **kwargs)
        sanitizer.run(self)
        return result

    wrapper.__repro_sanitized__ = True
    return wrapper


def enable_global_sanitizer(rate: float | None = None) -> Sanitizer:
    """Install post-mutation hooks on every index class.

    Idempotent: a second call returns the already-active sanitizer.  The
    rate defaults to ``REPRO_SANITIZE_RATE`` (or 1.0).
    """
    global _global_sanitizer
    if _global_sanitizer is not None:
        return _global_sanitizer
    sanitizer = Sanitizer(
        sanitize_rate() if rate is None else rate, amortize=True
    )
    for cls in _index_classes():
        for name in _MUTATORS:
            for owner in cls.__mro__:
                if name not in owner.__dict__:
                    continue
                if (owner, name) not in _installed:
                    original = owner.__dict__[name]
                    _installed[(owner, name)] = original
                    setattr(owner, name, _wrap(original, sanitizer))
                break
    _global_sanitizer = sanitizer
    return sanitizer


def disable_global_sanitizer() -> None:
    """Remove the class-level hooks and restore the original methods."""
    global _global_sanitizer
    for (owner, name), original in _installed.items():
        setattr(owner, name, original)
    _installed.clear()
    _global_sanitizer = None


def global_sanitizer() -> Sanitizer | None:
    """The active global sanitizer, if any."""
    return _global_sanitizer


# -- per-instance hooks ------------------------------------------------------


@contextlib.contextmanager
def sanitized(index: Any, rate: float = 1.0) -> Iterator[Sanitizer]:
    """Run a block with ``index`` validated after every mutation.

    A final deep check runs on normal exit, so ``rate < 1`` still ends
    with a fully validated structure::

        with sanitized(tree) as sanitizer:
            for key in keys:
                tree.insert(key)
        assert sanitizer.checks_run == len(keys)
    """
    sanitizer = Sanitizer(rate)
    originals: list[str] = []
    for name in _MUTATORS:
        method = getattr(index, name, None)
        if method is None:
            continue

        def wrapper(*args: Any, __method=method, **kwargs: Any) -> Any:
            result = __method(*args, **kwargs)
            sanitizer.run(index)
            return result

        functools.update_wrapper(wrapper, method)
        setattr(index, name, wrapper)
        originals.append(name)
    completed = False
    try:
        yield sanitizer
        completed = True
    finally:
        for name in originals:
            try:
                delattr(index, name)
            except AttributeError:
                pass
        if completed:
            check_structure(index)
