"""Structural sanitizer: machine-checkable invariants for every index.

The paper's claims are structural — the BMEH-tree is height-balanced, a
region's overall depth is exactly ``consumed[j] + h[j]``, Theorem 1's
mapping ``G`` is a bijection over the allocated directory — and a subtle
split bug would silently corrupt every measurement built on top.  This
subpackage makes those claims machine-checkable:

* :mod:`repro.sanitize.invariants` — deep structural validators for each
  index scheme plus the storage layer, raising a structured
  :class:`~repro.errors.InvariantViolation` naming the failing node path;
* :mod:`repro.sanitize.hooks` — an opt-in debug mode (``REPRO_SANITIZE=1``
  or the :func:`sanitized` context manager) that re-validates the index
  after every mutating operation, with a configurable sampling rate;
* :mod:`repro.sanitize.lint` — a repo-specific static pass (AST-based)
  enforcing the coding invariants no runtime check can see: no
  ``Backend`` access outside the :class:`~repro.storage.PageStore`
  accounting layer, no float equality on key codes, no mutable default
  arguments, and full type annotations on the public ``core`` API;
* :mod:`repro.sanitize.static` — the dataflow analysis engine behind
  ``repro analyze``: per-function CFGs, alias/type-fact tracking (the
  typed re-implementation of REP101/REP105/REP106), the REP2xx
  concurrency rules (blocking-in-async, latch leaks, lock-order
  cycles) and the REP3xx durability rules (group-commit pairing).
"""

from repro.sanitize.invariants import (
    check_extendible_array,
    check_gridfile,
    check_hashtree,
    check_kdb,
    check_mdeh,
    check_storage,
    check_structure,
)
from repro.sanitize.hooks import (
    Sanitizer,
    disable_global_sanitizer,
    enable_global_sanitizer,
    global_sanitizer,
    sanitize_enabled,
    sanitize_rate,
    sanitized,
)
from repro.sanitize.lint import (
    LintIssue,
    format_issues,
    lint_paths,
    lint_source,
)
from repro.sanitize.static import (
    AnalysisReport,
    LockOrderGraph,
    analyze_paths,
    analyze_source,
)

__all__ = [
    "check_extendible_array",
    "check_gridfile",
    "check_hashtree",
    "check_kdb",
    "check_mdeh",
    "check_storage",
    "check_structure",
    "Sanitizer",
    "disable_global_sanitizer",
    "enable_global_sanitizer",
    "global_sanitizer",
    "sanitize_enabled",
    "sanitize_rate",
    "sanitized",
    "LintIssue",
    "format_issues",
    "lint_paths",
    "lint_source",
    "AnalysisReport",
    "LockOrderGraph",
    "analyze_paths",
    "analyze_source",
]
