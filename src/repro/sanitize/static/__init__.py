"""Dataflow static analysis: CFGs, type facts, REP2xx/REP3xx rules,
lock-order verification, and the ``repro analyze`` driver."""

from repro.sanitize.static.cfg import CFG, build_cfg
from repro.sanitize.static.engine import (
    AnalysisReport,
    Suppressions,
    analyze_paths,
    analyze_source,
)
from repro.sanitize.static.facts import ClassContext, FactEvaluator
from repro.sanitize.static.lockorder import LockOrderAnalyzer, LockOrderGraph
from repro.sanitize.static.rules import FunctionAnalysis, Scope, analyze_module

__all__ = [
    "AnalysisReport",
    "CFG",
    "ClassContext",
    "FactEvaluator",
    "FunctionAnalysis",
    "LockOrderAnalyzer",
    "LockOrderGraph",
    "Scope",
    "Suppressions",
    "analyze_module",
    "analyze_paths",
    "analyze_source",
    "build_cfg",
]
