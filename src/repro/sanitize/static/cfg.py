"""A per-function control-flow graph for the dataflow analyzer.

The graph is deliberately statement-grained: each node carries one
*event* — a simple statement, a branch/loop header expression, or the
enter/leave of a ``with`` item — and edges carry a kind:

* ``NORMAL`` — ordinary fallthrough, branch, and loop edges;
* ``EXC`` — the exceptional edge out of a statement that may raise
  (any statement containing a call, ``await``, ``yield``, ``raise`` or
  ``assert``), pointing at the innermost handler, ``finally`` body,
  ``with`` exit, or the function's exceptional exit.

Three distinguished nodes: ``entry``, ``exit`` (all normal returns and
fallthroughs) and ``raise_exit`` (exceptions escaping the function).
The leak rules (REP202, REP301) inspect the dataflow state reaching
``exit`` and ``raise_exit``.

Approximations, chosen to keep the graph small and the findings quiet:

* a ``finally`` body is built **once** and connected to every
  continuation an abrupt exit could need (join, function exit, outer
  exception target, loop targets).  This merges paths — a conservative
  over-approximation that can only add spurious paths, never hide one;
* ``with`` is desugared to enter / body / leave, where the leave node
  is duplicated onto the exceptional path so a context manager's
  guaranteed ``__exit__`` is visible to the token analysis;
* context managers that *swallow* exceptions (``pytest.raises``,
  ``contextlib.suppress``) route their body's exceptional edges back to
  the normal continuation, and acquisitions inside a ``pytest.raises``
  body are not recorded by the rules (the call is expected to fail);
* nested ``def`` / ``class`` / ``lambda`` bodies are *not* inlined —
  defining a function executes nothing.  Each nested function gets its
  own CFG and its own analysis.
"""

from __future__ import annotations

import ast
from typing import Iterator

NORMAL = "normal"
EXC = "exc"

#: Statement payloads containing any of these may raise at runtime and
#: therefore get an ``EXC`` edge to the innermost exception target.
_MAY_RAISE = (
    ast.Call,
    ast.Await,
    ast.Yield,
    ast.YieldFrom,
    ast.Raise,
    ast.Assert,
)

#: Context-manager call names whose ``with`` body swallows exceptions.
SWALLOWING_MANAGERS = frozenset({"raises", "suppress"})


class Node:
    """One CFG event.

    ``kind`` is ``entry`` / ``exit`` / ``raise`` / ``stmt`` / ``enter``
    / ``leave`` / ``join``.  ``payload`` is the AST evaluated *at* this
    node (the full simple statement, a branch test, a ``with`` item's
    context expression); ``stmt`` is the enclosing statement for line
    attribution.  ``leave`` nodes carry ``enter_node`` so the token
    analysis can kill exactly what the matching enter generated.
    """

    __slots__ = (
        "kind", "payload", "stmt", "succ", "enter_node", "is_exc_leave",
    )

    def __init__(
        self, kind: str, payload: ast.AST | None = None,
        stmt: ast.stmt | None = None,
    ) -> None:
        self.kind = kind
        self.payload = payload
        self.stmt = stmt
        self.succ: list[tuple["Node", str]] = []
        self.enter_node: "Node | None" = None
        self.is_exc_leave = False

    @property
    def lineno(self) -> int:
        for candidate in (self.payload, self.stmt):
            if candidate is not None and hasattr(candidate, "lineno"):
                return candidate.lineno  # type: ignore[attr-defined]
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.kind} L{self.lineno}>"


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.entry = Node("entry")
        self.exit = Node("exit")
        self.raise_exit = Node("raise")
        self.nodes: list[Node] = [self.entry, self.exit, self.raise_exit]

    def new(
        self, kind: str, payload: ast.AST | None = None,
        stmt: ast.stmt | None = None,
    ) -> Node:
        node = Node(kind, payload, stmt)
        self.nodes.append(node)
        return node

    @staticmethod
    def edge(src: Node, dst: Node, kind: str = NORMAL) -> None:
        if (dst, kind) not in src.succ:
            src.succ.append((dst, kind))

    def walk(self) -> Iterator[Node]:
        return iter(self.nodes)


def may_raise(payload: ast.AST | None) -> bool:
    """Whether evaluating ``payload`` can raise (approximation)."""
    if payload is None:
        return False
    if isinstance(payload, _MAY_RAISE):
        return True
    for child in ast.walk(payload):
        if isinstance(child, _MAY_RAISE):
            return True
    return False


def is_swallowing(item: ast.withitem) -> bool:
    """``with pytest.raises(...)`` / ``contextlib.suppress(...)``."""
    expr = item.context_expr
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return name in SWALLOWING_MANAGERS


class _Builder:
    """Recursive-descent CFG construction with explicit target stacks."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        #: Innermost exception target (handler dispatch, finally body,
        #: with-leave, or the function's raise exit).
        self.exc_targets: list[Node] = [cfg.raise_exit]
        #: (continue_target, break_target) per enclosing loop.
        self.loops: list[tuple[Node, Node]] = []
        #: Heads of enclosing ``finally`` bodies, innermost last —
        #: abrupt exits (return / break / continue) route through them.
        self.finals: list[Node] = []

    # -- plumbing ----------------------------------------------------------

    def _chain(
        self, stmts: list[ast.stmt], preds: list[Node]
    ) -> list[Node]:
        """Build a statement sequence; returns its dangling tails."""
        for stmt in stmts:
            preds = self._stmt(stmt, preds)
            if not preds:  # unreachable continuation (return/raise/...)
                break
        return preds

    def _simple(
        self, stmt: ast.stmt, preds: list[Node],
        payload: ast.AST | None = None,
    ) -> Node:
        node = self.cfg.new("stmt", payload or stmt, stmt)
        for pred in preds:
            self.cfg.edge(pred, node)
        if may_raise(node.payload):
            self.cfg.edge(node, self.exc_targets[-1], EXC)
        return node

    def _abrupt_target(self, default: Node) -> Node:
        """Where an abrupt exit goes: the innermost finally, else
        ``default`` (over-approximated — the shared finally body fans
        out to every continuation)."""
        return self.finals[-1] if self.finals else default

    # -- statements --------------------------------------------------------

    def _stmt(self, stmt: ast.stmt, preds: list[Node]) -> list[Node]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, preds)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, preds)
        if isinstance(stmt, ast.Try) or stmt.__class__.__name__ == "TryStar":
            return self._try(stmt, preds)  # type: ignore[arg-type]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, stmt.items, preds)
        if isinstance(stmt, ast.Return):
            node = self._simple(stmt, preds)
            self.cfg.edge(node, self._abrupt_target(self.cfg.exit))
            return []
        if isinstance(stmt, ast.Raise):
            node = self.cfg.new("stmt", stmt, stmt)
            for pred in preds:
                self.cfg.edge(pred, node)
            self.cfg.edge(node, self.exc_targets[-1], EXC)
            return []
        if isinstance(stmt, ast.Break):
            node = self._simple(stmt, preds)
            if self.loops:
                self.cfg.edge(node, self._abrupt_target(self.loops[-1][1]))
            return []
        if isinstance(stmt, ast.Continue):
            node = self._simple(stmt, preds)
            if self.loops:
                self.cfg.edge(node, self._abrupt_target(self.loops[-1][0]))
            return []
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # Definition binds a name; the body runs elsewhere.
            node = self.cfg.new("stmt", None, stmt)
            for pred in preds:
                self.cfg.edge(pred, node)
            return [node]
        if stmt.__class__.__name__ == "Match":
            return self._match(stmt, preds)
        return [self._simple(stmt, preds)]

    def _if(self, stmt: ast.If, preds: list[Node]) -> list[Node]:
        test = self._simple(stmt, preds, payload=stmt.test)
        tails = self._chain(stmt.body, [test])
        if stmt.orelse:
            tails += self._chain(stmt.orelse, [test])
        else:
            tails.append(test)
        return tails

    def _while(self, stmt: ast.While, preds: list[Node]) -> list[Node]:
        head = self._simple(stmt, preds, payload=stmt.test)
        after = self.cfg.new("join", None, stmt)
        self.loops.append((head, after))
        try:
            body_tails = self._chain(stmt.body, [head])
        finally:
            self.loops.pop()
        for tail in body_tails:
            self.cfg.edge(tail, head)
        self.cfg.edge(head, after)
        tails = self._chain(stmt.orelse, [after]) if stmt.orelse else [after]
        return tails

    def _for(self, stmt: ast.For | ast.AsyncFor, preds: list[Node]) -> list[Node]:
        head = self._simple(stmt, preds, payload=stmt.iter)
        after = self.cfg.new("join", None, stmt)
        self.loops.append((head, after))
        try:
            body_tails = self._chain(stmt.body, [head])
        finally:
            self.loops.pop()
        for tail in body_tails:
            self.cfg.edge(tail, head)
        self.cfg.edge(head, after)
        tails = self._chain(stmt.orelse, [after]) if stmt.orelse else [after]
        return tails

    def _match(self, stmt: ast.AST, preds: list[Node]) -> list[Node]:
        subject = self._simple(
            stmt, preds, payload=stmt.subject,  # type: ignore[attr-defined]
        )
        tails: list[Node] = [subject]
        for case in stmt.cases:  # type: ignore[attr-defined]
            tails += self._chain(case.body, [subject])
        return tails

    def _with(
        self,
        stmt: ast.With | ast.AsyncWith,
        items: list[ast.withitem],
        preds: list[Node],
    ) -> list[Node]:
        item, rest = items[0], items[1:]
        enter = self.cfg.new("enter", item, stmt)
        for pred in preds:
            self.cfg.edge(pred, enter)
        if may_raise(item.context_expr):
            self.cfg.edge(enter, self.exc_targets[-1], EXC)
        leave = self.cfg.new("leave", item, stmt)
        leave.enter_node = enter
        exc_leave = self.cfg.new("leave", item, stmt)
        exc_leave.enter_node = enter
        exc_leave.is_exc_leave = True
        swallow = is_swallowing(item)
        self.exc_targets.append(exc_leave)
        try:
            if rest:
                body_tails = self._with(stmt, rest, [enter])
            else:
                body_tails = self._chain(stmt.body, [enter])
        finally:
            self.exc_targets.pop()
        for tail in body_tails:
            self.cfg.edge(tail, leave)
        after = self.cfg.new("join", None, stmt)
        self.cfg.edge(leave, after)
        if swallow:
            # The manager consumes the exception: execution continues
            # after the block on both paths.
            self.cfg.edge(exc_leave, after)
        else:
            self.cfg.edge(exc_leave, self.exc_targets[-1], EXC)
        return [after]

    def _try(self, stmt: ast.Try, preds: list[Node]) -> list[Node]:
        after = self.cfg.new("join", None, stmt)
        outer_exc = self.exc_targets[-1]

        fin_head: Node | None = None
        fin_tails: list[Node] = []
        if stmt.finalbody:
            fin_head = self.cfg.new("join", None, stmt)
            fin_tails = self._chain(stmt.finalbody, [fin_head])

        # Exceptions raised in the body dispatch to the handlers (or,
        # unmatched, to finally / the outer target).
        unmatched = fin_head if fin_head is not None else outer_exc
        if stmt.handlers:
            dispatch = self.cfg.new("join", None, stmt)
            self.cfg.edge(dispatch, unmatched, EXC)
        else:
            dispatch = unmatched
        body_exc_kind = NORMAL if stmt.handlers else EXC

        self.exc_targets.append(dispatch)
        if fin_head is not None:
            self.finals.append(fin_head)
        try:
            body_tails = self._chain(stmt.body, preds)
        finally:
            if fin_head is not None:
                self.finals.pop()
            self.exc_targets.pop()

        handler_exc = fin_head if fin_head is not None else outer_exc
        handler_tails: list[Node] = []
        for handler in stmt.handlers:
            head = self.cfg.new("join", None, handler)
            self.cfg.edge(dispatch, head)
            self.exc_targets.append(handler_exc)
            if fin_head is not None:
                self.finals.append(fin_head)
            try:
                handler_tails += self._chain(handler.body, [head])
            finally:
                if fin_head is not None:
                    self.finals.pop()
                self.exc_targets.pop()

        # orelse runs after a clean body; its exceptions skip handlers.
        self.exc_targets.append(handler_exc)
        if fin_head is not None:
            self.finals.append(fin_head)
        try:
            if stmt.orelse:
                body_tails = self._chain(stmt.orelse, body_tails)
        finally:
            if fin_head is not None:
                self.finals.pop()
            self.exc_targets.pop()

        tails = body_tails + handler_tails
        if fin_head is not None:
            for tail in tails:
                self.cfg.edge(tail, fin_head)
            # The shared finally body fans out to every continuation an
            # abrupt or exceptional exit could need (approximation).
            for tail in fin_tails:
                self.cfg.edge(tail, after)
                self.cfg.edge(tail, self.cfg.exit)
                self.cfg.edge(tail, outer_exc, EXC)
                for cont, brk in self.loops:
                    self.cfg.edge(tail, cont)
                    self.cfg.edge(tail, brk)
            return [after]
        for tail in tails:
            self.cfg.edge(tail, after)
        return [after]


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function body."""
    cfg = CFG(func)
    builder = _Builder(cfg)
    tails = builder._chain(func.body, [cfg.entry])
    for tail in tails:
        CFG.edge(tail, cfg.exit)
    return cfg
