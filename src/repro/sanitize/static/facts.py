"""Type-fact inference for the dataflow analyzer.

The rules care about a handful of *tags* — "this expression is a
``Backend``", "this is a ``ReadWriteLatch``" — not about full types.
Facts come from three sources, strongest first:

1. **Constructor calls and annotations** — ``latch = ReadWriteLatch()``,
   ``def f(store: PageStore)``, ``x: Backend | None``.
2. **The attribute protocol** — a small table of known attribute types:
   ``PageStore.backend → Backend``, ``PageStore.latch → ReadWriteLatch``,
   ``MultiKeyFile.store → PageStore``, plus per-class ``self._x = expr``
   assignments collected in a pre-pass over each class body.
3. **Name heuristics** — the legacy substring conventions (a name
   segment ``backend`` means Backend, ``latch`` means latch, …), kept
   as a weak fallback so un-annotated code is still covered.

An assignment-tracked fact (source 1/2 propagated through ``x = y``)
always wins over a name heuristic at a use site: that is exactly the
``store = self._backend; store.flush()`` alias case the substring
linter misses.
"""

from __future__ import annotations

import ast

# -- tags ------------------------------------------------------------------

BACKEND = "Backend"
WAL_BACKEND = "WALBackend"
PAGE_STORE = "PageStore"
BUFFER_POOL = "BufferPool"
LATCH = "ReadWriteLatch"
GATE = "ReadWriteGate"
MULTIKEY_FILE = "MultiKeyFile"
LOCK = "Lock"
CONDITION = "Condition"
INDEX = "Index"
FILE = "File"

Env = dict[str, frozenset[str]]

#: Constructor / annotation name → tags it confers.
CONSTRUCTOR_TAGS: dict[str, frozenset[str]] = {
    "MemoryBackend": frozenset({BACKEND}),
    "FileBackend": frozenset({BACKEND}),
    "WALBackend": frozenset({WAL_BACKEND, BACKEND}),
    "Backend": frozenset({BACKEND}),
    "PageStore": frozenset({PAGE_STORE}),
    "BufferPool": frozenset({BUFFER_POOL}),
    "ReadWriteLatch": frozenset({LATCH}),
    "ReadWriteGate": frozenset({GATE}),
    "MultiKeyFile": frozenset({MULTIKEY_FILE}),
    "Lock": frozenset({LOCK}),
    "RLock": frozenset({LOCK}),
    "Condition": frozenset({CONDITION}),
    "Semaphore": frozenset({LOCK}),
    "BoundedSemaphore": frozenset({LOCK}),
    "HashTree": frozenset({INDEX}),
    "MDEH": frozenset({INDEX}),
    "open": frozenset({FILE}),
}

#: (owner tag, attribute) → tags of the attribute value.
ATTRIBUTE_PROTOCOL: dict[tuple[str, str], frozenset[str]] = {
    (PAGE_STORE, "backend"): frozenset({BACKEND}),
    (PAGE_STORE, "latch"): frozenset({LATCH}),
    (PAGE_STORE, "pool"): frozenset({BUFFER_POOL}),
    (MULTIKEY_FILE, "store"): frozenset({PAGE_STORE}),
    (MULTIKEY_FILE, "index"): frozenset({INDEX}),
}

#: Methods that return ``self``-ish handles keep their owner's tags —
#: none currently; placeholder for future chaining.


def name_heuristic_tags(name: str) -> frozenset[str]:
    """The legacy naming conventions, as weak facts."""
    tags: set[str] = set()
    for seg in name.lower().split("_"):
        if not seg:
            continue
        if seg.startswith("backend"):
            tags.add(BACKEND)
        elif seg == "wal":
            tags.update({WAL_BACKEND, BACKEND})
        elif "latch" in seg:
            tags.add(LATCH)
        elif "gate" in seg:
            tags.add(GATE)
        elif seg == "store":
            tags.add(PAGE_STORE)
        elif seg in {"fh", "fp", "fd"}:
            tags.add(FILE)
        elif seg == "file":
            tags.update({MULTIKEY_FILE, FILE})
        elif seg in {"index", "tree"}:
            tags.add(INDEX)
        elif seg in {"lock", "mutex"}:
            tags.add(LOCK)
    return frozenset(tags)


def annotation_tags(annotation: ast.expr | None) -> frozenset[str]:
    """Tags conferred by a type annotation (handles unions/Optional
    and string annotations)."""
    if annotation is None:
        return frozenset()
    tags: set[str] = set()
    stack: list[ast.expr] = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                stack.append(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                continue
        elif isinstance(node, ast.Name):
            tags |= CONSTRUCTOR_TAGS.get(node.id, frozenset())
        elif isinstance(node, ast.Attribute):
            tags |= CONSTRUCTOR_TAGS.get(node.attr, frozenset())
        elif isinstance(node, ast.Subscript):
            stack.append(node.value)
            stack.append(node.slice)
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, ast.Tuple):
            stack.extend(node.elts)
    return tags


def _call_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class ClassContext:
    """Per-class facts: ``self.<attr>`` tags collected in a pre-pass.

    ``self_tags`` holds the tags the class itself confers on ``self``
    (its own name looked up in the constructor table, so methods of
    ``PageStore`` see ``self`` as a PageStore).
    """

    def __init__(self, cls: ast.ClassDef) -> None:
        self.name = cls.name
        self.self_tags = CONSTRUCTOR_TAGS.get(cls.name, frozenset())
        base_tags: set[str] = set(self.self_tags)
        for base in cls.bases:
            base_name = (
                base.id if isinstance(base, ast.Name)
                else base.attr if isinstance(base, ast.Attribute) else None
            )
            if base_name:
                base_tags |= CONSTRUCTOR_TAGS.get(base_name, frozenset())
        self.self_tags = frozenset(base_tags)
        self.attr_tags: dict[str, frozenset[str]] = {}
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        tags = frozenset()
                        if isinstance(node, ast.AnnAssign):
                            tags = annotation_tags(node.annotation)
                        value = node.value
                        if not tags and value is not None:
                            tags = self._value_tags(value)
                        if tags:
                            merged = self.attr_tags.get(
                                target.attr, frozenset()
                            )
                            self.attr_tags[target.attr] = merged | tags

    @staticmethod
    def _value_tags(value: ast.expr) -> frozenset[str]:
        if isinstance(value, ast.Call):
            name = _call_name(value)
            if name:
                return CONSTRUCTOR_TAGS.get(name, frozenset())
        if isinstance(value, ast.Name):
            return name_heuristic_tags(value.id)
        return frozenset()


EMPTY: frozenset[str] = frozenset()


class FactEvaluator:
    """Evaluate the tags of an expression under an environment.

    The environment maps local names (from tracked assignments and
    ``with ... as x`` bindings) to tag sets; unknown names fall back to
    the name heuristics.  ``self.<attr>`` resolves through the class
    context, then the attribute protocol, then heuristics on the
    attribute name.
    """

    def __init__(self, cls: ClassContext | None = None) -> None:
        self.cls = cls

    def tags(self, expr: ast.expr, env: Env) -> frozenset[str]:
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.cls is not None:
                return self.cls.self_tags
            if expr.id in env:
                return env[expr.id]
            return name_heuristic_tags(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._attribute_tags(expr, env)
        if isinstance(expr, ast.Call):
            return self._call_tags(expr, env)
        if isinstance(expr, ast.Await):
            return self.tags(expr.value, env)
        if isinstance(expr, (ast.IfExp,)):
            return self.tags(expr.body, env) | self.tags(expr.orelse, env)
        if isinstance(expr, ast.BoolOp):
            out: frozenset[str] = EMPTY
            for value in expr.values:
                out |= self.tags(value, env)
            return out
        if isinstance(expr, ast.NamedExpr):
            return self.tags(expr.value, env)
        return EMPTY

    def _attribute_tags(self, expr: ast.Attribute, env: Env) -> frozenset[str]:
        owner = self.tags(expr.value, env)
        out: set[str] = set()
        for tag in owner:
            out |= ATTRIBUTE_PROTOCOL.get((tag, expr.attr), EMPTY)
        if (
            not out
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.cls is not None
        ):
            out |= self.cls.attr_tags.get(expr.attr, EMPTY)
        if not out:
            out |= set(name_heuristic_tags(expr.attr))
        return frozenset(out)

    def _call_tags(self, expr: ast.Call, env: Env) -> frozenset[str]:
        name = _call_name(expr)
        if name == "getattr" and len(expr.args) >= 2:
            # ``getattr(x, "begin_group", None)`` — tag the result as a
            # bound method of that name so a later call is recognised.
            attr = expr.args[1]
            if isinstance(attr, ast.Constant) and isinstance(attr.value, str):
                return frozenset({f"callable:{attr.value}"})
        if name in CONSTRUCTOR_TAGS:
            return CONSTRUCTOR_TAGS[name]
        # A call on a tagged receiver that returns a context manager
        # keeps the receiver visible: ``store.group(...)`` carries the
        # group token through ``with self._group_commit():``-style use.
        return EMPTY


def transfer_assign(
    evaluator: FactEvaluator, stmt: ast.stmt, env: Env
) -> Env:
    """Flow an environment through one simple statement (assignment
    tracking only — all other statements leave facts unchanged)."""
    if isinstance(stmt, ast.Assign):
        value_tags = evaluator.tags(stmt.value, env)
        new = dict(env)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                if value_tags:
                    new[target.id] = value_tags
                else:
                    new.pop(target.id, None)
            elif isinstance(target, ast.Tuple):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        new.pop(elt.id, None)
        return new
    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        tags = annotation_tags(stmt.annotation)
        if not tags and stmt.value is not None:
            tags = evaluator.tags(stmt.value, env)
        new = dict(env)
        if tags:
            new[stmt.target.id] = tags
        else:
            new.pop(stmt.target.id, None)
        return new
    if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
        new = dict(env)
        new.pop(stmt.target.id, None)
        return new
    return env


def bind_with_target(
    evaluator: FactEvaluator, item: ast.withitem, env: Env
) -> Env:
    """``with open(p) as fh:`` binds ``fh`` to the manager's tags."""
    if item.optional_vars is None or not isinstance(
        item.optional_vars, ast.Name
    ):
        return env
    tags = evaluator.tags(item.context_expr, env)
    new = dict(env)
    if tags:
        new[item.optional_vars.id] = tags
    else:
        new.pop(item.optional_vars.id, None)
    return new


def initial_env(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Env:
    """Seed the environment from parameter annotations."""
    env: Env = {}
    args = func.args
    all_args = (
        list(args.posonlyargs) + list(args.args)
        + list(args.kwonlyargs)
    )
    if args.vararg:
        all_args.append(args.vararg)
    if args.kwarg:
        all_args.append(args.kwarg)
    for arg in all_args:
        tags = annotation_tags(arg.annotation)
        if tags:
            env[arg.arg] = tags
    return env
