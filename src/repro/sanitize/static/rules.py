"""The dataflow rule pass: typed REP101/105/106, REP2xx, REP3xx.

One :class:`FunctionAnalysis` per function (plus one for the module's
top-level statements): build the CFG, run a forward dataflow whose
state is *(type facts, held tokens)*, then walk the fixpoint emitting
findings.

Tokens model acquisitions the rules must pair:

* ``latch`` — ``acquire_read`` / ``acquire_write`` or ``with
  latch.read()/write()``;
* ``lock`` — plain ``Lock``/``Condition`` acquire or ``with lock:``;
* ``gate`` — ``async with gate.read_locked()/write_locked()``;
* ``group`` — ``begin_group()`` or ``with store.group(...)`` (and any
  ``*group*``/``*commit*``-named context manager).

``with``-generated tokens are killed by their own ``leave`` nodes, so
they can never leak; only *manual* tokens (explicit acquire / begin
calls) feed REP202 and REP301.  On an exception edge the statement's
kills apply but its gens do not — a failed acquire holds nothing, a
release that raises has already released.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.sanitize.lint import LintIssue
from repro.sanitize.static.cfg import CFG, EXC, Node, build_cfg, is_swallowing
from repro.sanitize.static import facts as F
from repro.sanitize.static.facts import (
    ClassContext,
    Env,
    FactEvaluator,
    bind_with_target,
    initial_env,
    transfer_assign,
)

# -- token model -----------------------------------------------------------

K_LATCH = "latch"
K_LOCK = "lock"
K_GATE = "gate"
K_GROUP = "group"


@dataclass(frozen=True)
class Token:
    kind: str
    side: str  # "read"/"write" for latches, else == kind
    recv: str  # receiver source text, for matching and messages
    line: int
    manual: bool  # explicit acquire/begin (leak-checkable)
    site: int = -1  # generating CFG node index for ``with`` tokens


@dataclass(frozen=True)
class Scope:
    """Path-derived rule scoping, computed by the engine."""

    in_src: bool = False  # typed REP101/REP105 apply
    backend_allowed: bool = False  # storage/disk.py, storage/wal.py
    server_scope: bool = False  # typed REP106 applies
    storage_internal: bool = False  # REP303 exempt (the machinery itself)


_BACKEND_METHODS = frozenset({"load", "store", "discard"})
_INDEX_MUTATORS = frozenset({"insert", "delete", "insert_many", "delete_many"})
_BATCH_EXECUTORS = frozenset({"insert_many", "delete_many", "_apply_window"})

_FILE_BLOCKING = frozenset(
    {"read", "write", "flush", "seek", "readline", "readlines",
     "writelines", "truncate", "close"}
)
_STORE_BLOCKING = frozenset(
    {"read", "write", "read_shared", "allocate", "free", "flush", "close"}
)
_LATCH_BLOCKING = frozenset({"acquire_read", "acquire_write", "read", "write"})

#: Functions that intentionally end while holding — guard helpers.
_LEAK_EXEMPT_PREFIXES = ("acquire", "_acquire")
_LEAK_EXEMPT_NAMES = frozenset({"__enter__", "__aenter__", "begin_group"})


def _source_text(expr: ast.expr) -> str:
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on real ASTs
        return "<expr>"
    return text if len(text) <= 40 else text[:37] + "..."


def _awaited_call_ids(payload: ast.AST) -> set[int]:
    out: set[int] = set()
    for node in ast.walk(payload):
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            out.add(id(node.value))
    return out


def _calls_in(payload: ast.AST | None) -> list[ast.Call]:
    if payload is None:
        return []
    return [n for n in ast.walk(payload) if isinstance(n, ast.Call)]


def _swallowed_stmts(func: ast.AST) -> set[int]:
    """ids of statements lexically inside a swallowing ``with`` body
    (``pytest.raises`` / ``contextlib.suppress``): an acquire there is
    *expected* to fail, so it generates no token."""
    out: set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)) and any(
            is_swallowing(item) for item in node.items
        ):
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.stmt):
                        out.add(id(sub))
    return out


# -- event extraction ------------------------------------------------------


@dataclass
class Events:
    gens: list[Token] = field(default_factory=list)
    #: (kind, side, recv) specs; recv-matched first, then unique-of-kind.
    kills: list[tuple[str, str, str]] = field(default_factory=list)


def _call_events(
    call: ast.Call, evaluator: FactEvaluator, env: Env, node_index: int
) -> Events:
    events = Events()
    func = call.func
    if isinstance(func, ast.Name):
        tags = env.get(func.id, frozenset())
        if "callable:begin_group" in tags:
            events.gens.append(
                Token(K_GROUP, K_GROUP, func.id, call.lineno, True)
            )
        elif "callable:end_group" in tags:
            events.kills.append((K_GROUP, K_GROUP, func.id))
        return events
    if not isinstance(func, ast.Attribute):
        return events
    recv = func.value
    recv_tags = evaluator.tags(recv, env)
    recv_text = _source_text(recv)
    attr = func.attr
    if attr == "acquire_read":
        events.gens.append(Token(K_LATCH, "read", recv_text, call.lineno, True))
    elif attr == "acquire_write":
        events.gens.append(Token(K_LATCH, "write", recv_text, call.lineno, True))
    elif attr == "release_read":
        events.kills.append((K_LATCH, "read", recv_text))
    elif attr == "release_write":
        events.kills.append((K_LATCH, "write", recv_text))
    elif attr == "acquire" and (
        {F.LOCK, F.CONDITION} & recv_tags
    ):
        events.gens.append(Token(K_LOCK, K_LOCK, recv_text, call.lineno, True))
    elif attr == "release" and ({F.LOCK, F.CONDITION} & recv_tags):
        events.kills.append((K_LOCK, K_LOCK, recv_text))
    elif attr == "begin_group":
        events.gens.append(Token(K_GROUP, K_GROUP, recv_text, call.lineno, True))
    elif attr == "end_group":
        events.kills.append((K_GROUP, K_GROUP, recv_text))
    return events


def _with_token(
    item: ast.withitem, evaluator: FactEvaluator, env: Env, node_index: int
) -> Token | None:
    """The token a ``with`` item acquires, if it is an acquisition."""
    expr = item.context_expr
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        attr = expr.func.attr
        recv = expr.func.value
        recv_tags = evaluator.tags(recv, env)
        recv_text = _source_text(recv)
        if F.LATCH in recv_tags and attr in ("read", "write"):
            return Token(K_LATCH, attr, recv_text, expr.lineno, False, node_index)
        if F.GATE in recv_tags and attr in ("read_locked", "write_locked"):
            side = "read" if attr == "read_locked" else "write"
            return Token(K_GATE, side, recv_text, expr.lineno, False, node_index)
        if "group" in attr or "commit" in attr:
            return Token(K_GROUP, K_GROUP, recv_text, expr.lineno, False, node_index)
    elif isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if "group" in expr.func.id or "commit" in expr.func.id:
            return Token(
                K_GROUP, K_GROUP, expr.func.id, expr.lineno, False, node_index
            )
    elif isinstance(expr, (ast.Name, ast.Attribute)):
        tags = evaluator.tags(expr, env)
        if {F.LOCK, F.CONDITION} & tags:
            return Token(
                K_LOCK, K_LOCK, _source_text(expr), expr.lineno, False, node_index
            )
        if F.LATCH in tags:
            return Token(
                K_LATCH, "write", _source_text(expr), expr.lineno, False, node_index
            )
    return None


def _apply_kills(
    tokens: frozenset[Token], kills: list[tuple[str, str, str]]
) -> frozenset[Token]:
    out = set(tokens)
    for kind, side, recv in kills:
        matched = {
            t for t in out if t.kind == kind and t.side == side and t.recv == recv
        }
        if not matched:
            of_kind = [t for t in out if t.kind == kind and t.side == side]
            if len(of_kind) == 1:
                matched = {of_kind[0]}
        out -= matched
    return frozenset(out)


# -- the per-function analysis --------------------------------------------


@dataclass
class _State:
    env: Env
    tokens: frozenset[Token]


def _merge_env(a: Env, b: Env) -> Env:
    if not a:
        return dict(b)
    out = dict(a)
    for name, tags in b.items():
        out[name] = out.get(name, frozenset()) | tags
    return out


class FunctionAnalysis:
    """Dataflow + rule findings for one function (or module) body."""

    _MAX_PASSES = 50

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
        path: str,
        scope: Scope,
        cls: ClassContext | None = None,
    ) -> None:
        self.func = func
        self.path = path
        self.scope = scope
        self.cls = cls
        self.evaluator = FactEvaluator(cls)
        self.is_async = isinstance(func, ast.AsyncFunctionDef)
        self.name = getattr(func, "name", "<module>")
        self.cfg: CFG = build_cfg(func)  # type: ignore[arg-type]
        self._index = {id(n): i for i, n in enumerate(self.cfg.nodes)}
        self._swallowed = _swallowed_stmts(func)
        self._in: dict[int, _State] = {}
        self.issues: list[LintIssue] = []
        self._reported: set[tuple[str, int, str]] = set()

    # -- dataflow ----------------------------------------------------------

    def _transfer(self, node: Node, state: _State) -> tuple[_State, _State]:
        """Returns (normal-out, exceptional-out)."""
        env, tokens = state.env, state.tokens
        gens: list[Token] = []
        kills: list[tuple[str, str, str]] = []
        idx = self._index[id(node)]
        if node.kind == "stmt" and node.payload is not None:
            for call in _calls_in(node.payload):
                ev = _call_events(call, self.evaluator, env, idx)
                gens.extend(ev.gens)
                kills.extend(ev.kills)
            if isinstance(node.payload, ast.stmt):
                env = transfer_assign(self.evaluator, node.payload, env)
        elif node.kind == "enter" and isinstance(node.payload, ast.withitem):
            token = _with_token(node.payload, self.evaluator, env, idx)
            if token is not None:
                gens.append(token)
            env = bind_with_target(self.evaluator, node.payload, env)
        elif node.kind == "leave" and node.enter_node is not None:
            enter_idx = self._index[id(node.enter_node)]
            kills_sites = {
                t for t in tokens if t.site == enter_idx
            }
            base = frozenset(tokens - kills_sites)
            return _State(env, base), _State(env, base)
        if node.stmt is not None and id(node.stmt) in self._swallowed:
            gens = []  # an acquire under pytest.raises is expected to fail
        base = _apply_kills(tokens, kills)
        normal = _State(env, base | frozenset(gens))
        exc = _State(env, base)
        return normal, exc

    def run(self) -> None:
        entry_env = (
            initial_env(self.func)  # type: ignore[arg-type]
            if not isinstance(self.func, ast.Module)
            else {}
        )
        self._in[self._index[id(self.cfg.entry)]] = _State(
            entry_env, frozenset()
        )
        worklist = [self.cfg.entry]
        passes = 0
        while worklist and passes < self._MAX_PASSES * len(self.cfg.nodes):
            passes += 1
            node = worklist.pop()
            idx = self._index[id(node)]
            state = self._in.get(idx)
            if state is None:
                continue
            normal, exc = self._transfer(node, state)
            for succ, kind in node.succ:
                out = exc if kind == EXC else normal
                sidx = self._index[id(succ)]
                prev = self._in.get(sidx)
                if prev is None:
                    self._in[sidx] = _State(dict(out.env), out.tokens)
                    worklist.append(succ)
                else:
                    env = _merge_env(prev.env, out.env)
                    tokens = prev.tokens | out.tokens
                    if env != prev.env or tokens != prev.tokens:
                        self._in[sidx] = _State(env, tokens)
                        worklist.append(succ)
        self._emit()

    # -- findings ----------------------------------------------------------

    def _issue(
        self, code: str, line: int, col: int, message: str
    ) -> None:
        key = (code, line, message[:40])
        if key in self._reported:
            return
        self._reported.add(key)
        self.issues.append(LintIssue(self.path, line, col, code, message))

    def _emit(self) -> None:
        for node in self.cfg.nodes:
            state = self._in.get(self._index[id(node)])
            if state is None:
                continue  # unreachable
            if node.kind == "stmt" and node.payload is not None:
                self._check_calls(node, state)
            elif node.kind == "enter" and isinstance(node.payload, ast.withitem):
                self._check_enter(node, state)
        self._check_leaks()

    # REP202 / REP301 — tokens surviving to an exit.
    def _check_leaks(self) -> None:
        if self.name.startswith(_LEAK_EXEMPT_PREFIXES) or (
            self.name in _LEAK_EXEMPT_NAMES
        ):
            return
        for exit_node, on_exc in ((self.cfg.exit, False), (self.cfg.raise_exit, True)):
            state = self._in.get(self._index[id(exit_node)])
            if state is None:
                continue
            for token in sorted(state.tokens, key=lambda t: t.line):
                if not token.manual:
                    continue
                if token.kind in (K_LATCH, K_LOCK):
                    where = (
                        "on exception paths — move the release into a "
                        "finally block"
                        if on_exc
                        else "on every path out of this function"
                    )
                    self._issue(
                        "REP202",
                        token.line,
                        0,
                        f"{token.kind} acquired on {token.recv!r} "
                        f"(line {token.line}) is not released {where}",
                    )
                elif token.kind == K_GROUP and not on_exc:
                    self._issue(
                        "REP301",
                        token.line,
                        0,
                        f"begin_group() on {token.recv!r} (line {token.line}) "
                        "has no matching end_group() on every normal path — "
                        "an unpaired group never commits its batch",
                    )

    def _check_enter(self, node: Node, state: _State) -> None:
        assert isinstance(node.payload, ast.withitem)
        if not self.is_async or not isinstance(node.stmt, ast.With):
            return
        token = _with_token(
            node.payload, self.evaluator, state.env, self._index[id(node)]
        )
        if token is not None and token.kind in (K_LATCH, K_LOCK):
            self._issue(
                "REP201",
                node.payload.context_expr.lineno,
                node.payload.context_expr.col_offset,
                f"sync `with {_source_text(node.payload.context_expr)}:` "
                "blocks the event loop inside an async function — use the "
                "async gate or move the work to an executor",
            )

    def _check_calls(self, node: Node, state: _State) -> None:
        payload = node.payload
        assert payload is not None
        awaited = _awaited_call_ids(payload) if self.is_async else set()
        for call in _calls_in(payload):
            self._check_one_call(call, state, awaited)

    def _check_one_call(
        self, call: ast.Call, state: _State, awaited: set[int]
    ) -> None:
        env = state.env
        func = call.func
        group_held = any(t.kind == K_GROUP for t in state.tokens)

        if isinstance(func, ast.Name):
            # REP201: blocking builtins on the event-loop path.
            if self.is_async and func.id == "open":
                self._issue(
                    "REP201", call.lineno, call.col_offset,
                    "open() performs blocking file I/O inside an async "
                    "function — run it in an executor",
                )
            if (
                self.is_async
                and func.id == "sleep"
                and id(call) not in awaited
            ):
                self._issue(
                    "REP201", call.lineno, call.col_offset,
                    "sleep() blocks the event loop inside an async "
                    "function — use `await asyncio.sleep(...)`",
                )
            # REP303: an explicit checkpoint is a durability point.
            if group_held and func.id == "checkpoint" and not (
                self.scope.storage_internal
            ):
                self._issue(
                    "REP303", call.lineno, call.col_offset,
                    "checkpoint() inside a group-commit scope splits the "
                    "coalesced batch into extra durability points — "
                    "checkpoint after the group closes",
                )
            return

        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        recv_tags = self.evaluator.tags(func.value, env)
        recv_text = _source_text(func.value)
        backend_tagged = bool({F.BACKEND, F.WAL_BACKEND} & recv_tags)

        # -- typed REP101 / REP105 (src-only, accounting layer exempt) ----
        if self.scope.in_src and not self.scope.backend_allowed:
            if attr in _BACKEND_METHODS and backend_tagged:
                self._issue(
                    "REP101", call.lineno, call.col_offset,
                    f"direct Backend.{attr}() on {recv_text!r} bypasses "
                    "PageStore I/O accounting — route the access through "
                    "the store",
                )
            if attr == "flush" and backend_tagged and F.PAGE_STORE not in recv_tags:
                self._issue(
                    "REP105", call.lineno, call.col_offset,
                    f"direct WAL/backend flush() on {recv_text!r} is a "
                    "durability point that bypasses group commit — use "
                    "PageStore.flush(), PageStore.group() or checkpoint()",
                )

        # -- typed REP106 (server scope, aggregator exempt) ----------------
        if self.scope.server_scope and attr in _INDEX_MUTATORS:
            innocuous = recv_tags and not (
                {F.INDEX, F.MULTIKEY_FILE, F.PAGE_STORE} & recv_tags
            )
            if not innocuous:
                self._issue(
                    "REP106", call.lineno, call.col_offset,
                    f"server code calls .{attr}() directly — every served "
                    "mutation must flow through the write aggregator "
                    "(server/aggregator.py) so concurrent writes coalesce "
                    "into one group commit",
                )

        # -- REP201: blocking calls inside ``async def`` -------------------
        if self.is_async:
            is_time_sleep = (
                attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            )
            blocking = (
                is_time_sleep
                or (F.FILE in recv_tags and attr in _FILE_BLOCKING)
                or (F.PAGE_STORE in recv_tags and attr in _STORE_BLOCKING)
                or (F.LATCH in recv_tags and attr in _LATCH_BLOCKING)
                or ({F.LOCK, F.CONDITION} & recv_tags and attr == "acquire")
            )
            if blocking:
                what = (
                    "time.sleep()" if is_time_sleep
                    else f"{recv_text}.{attr}()"
                )
                self._issue(
                    "REP201", call.lineno, call.col_offset,
                    f"{what} blocks the event loop inside an async "
                    "function — await an async equivalent or run it in "
                    "an executor",
                )

        # -- REP302: mutation outside the group in a batch executor --------
        if (
            self.scope.in_src
            and self.name in _BATCH_EXECUTORS
            and attr in ("insert", "delete")
            and not group_held
            and ({F.INDEX, F.MULTIKEY_FILE} & recv_tags or not recv_tags)
        ):
            self._issue(
                "REP302", call.lineno, call.col_offset,
                f".{attr}() in batch executor {self.name}() runs outside "
                "a group-commit scope — wrap the batch in "
                "store.group()/_group_commit() or each mutation pays its "
                "own durability point",
            )

        # -- REP303: flush inside a group splits the batch -----------------
        if (
            group_held
            and not self.scope.storage_internal
            and attr == "flush"
            and backend_tagged
            and F.PAGE_STORE not in recv_tags
        ):
            self._issue(
                "REP303", call.lineno, call.col_offset,
                f"{recv_text}.flush() inside a group-commit scope forces a "
                "durability point mid-batch, splitting the coalesced "
                "commit — let end_group() flush once at the boundary",
            )


# -- module driver ---------------------------------------------------------


def _immediate_defs(node: ast.AST) -> list[ast.AST]:
    """Function/class definitions directly inside ``node``'s body —
    descent stops at the first definition boundary so each nested scope
    is analyzed exactly once."""
    defs: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop(0)
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            defs.append(child)
        elif not isinstance(child, ast.Lambda):
            stack.extend(ast.iter_child_nodes(child))
    return defs


def analyze_module(
    tree: ast.Module, path: str, scope: Scope
) -> list[LintIssue]:
    """Run the dataflow rules over every function in a module (and the
    module's own top level)."""
    issues: list[LintIssue] = []

    top = FunctionAnalysis(tree, path, scope, None)
    top.run()
    issues.extend(top.issues)

    def visit(node: ast.AST, cls: ClassContext | None) -> None:
        for child in _immediate_defs(node):
            if isinstance(child, ast.ClassDef):
                visit(child, ClassContext(child))
            else:
                analysis = FunctionAnalysis(
                    child, path, scope, cls  # type: ignore[arg-type]
                )
                analysis.run()
                issues.extend(analysis.issues)
                visit(child, cls)

    visit(tree, None)
    return sorted(issues, key=lambda i: (i.line, i.col, i.code))
