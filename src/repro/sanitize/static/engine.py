"""The analyzer driver: scoping, suppressions, and the public API.

``analyze_paths`` is what ``repro analyze`` runs: per-file dataflow
rules (plus the legacy value rules, REP101/REP105 replaced by their
typed re-implementations) and one whole-program lock-order pass, with
``repro: allow[REPxxx]`` suppression comments honoured and unused
suppressions reported as REP400.

Rule scoping by path:

* typed REP101/REP105 and the legacy REP102/REP103 — ``src/repro``
  only (the accounting-layer files in ``BACKEND_ALLOWED`` stay exempt
  from 101/105, as before);
* REP104 — ``core/`` only (unchanged);
* typed REP106 — ``server/`` minus the write aggregator (unchanged
  scope, typed receiver);
* REP2xx / REP3xx — everywhere the analyzer is pointed, including
  ``tests/`` and ``benchmarks/``: latch leaks and blocked event loops
  in test code deadlock CI just as hard.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Sequence

from repro.sanitize.lint import (
    BACKEND_ALLOWED,
    SERVER_MUTATION_ALLOWED,
    LintIssue,
    lint_source,
    repo_source_root,
)
from repro.sanitize.static.lockorder import LockOrderAnalyzer, LockOrderGraph
from repro.sanitize.static.rules import Scope, analyze_module

__all__ = [
    "AnalysisReport",
    "analyze_paths",
    "analyze_source",
    "Suppressions",
]

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


class Suppressions:
    """``repro: allow[REPxxx]``-style comments for one source file.

    A trailing comment suppresses matching findings on its own line; a
    standalone comment line suppresses the line below it.  Suppressions
    that never fire are themselves findings (REP400) — stale allowances
    are how real violations sneak back in.
    """

    def __init__(self, source: str) -> None:
        #: line → codes allowed there.
        self.by_line: dict[int, set[str]] = {}
        #: (declaration line, code) → used?
        self.sites: dict[tuple[int, str], bool] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            codes = {
                c.strip().upper()
                for c in match.group(1).split(",")
                if c.strip()
            }
            targets = [lineno]
            if line.strip().startswith("#"):
                targets.append(lineno + 1)
            for code in codes:
                self.sites.setdefault((lineno, code), False)
                for target in targets:
                    self.by_line.setdefault(target, set()).add(code)

    def filter(self, issues: list[LintIssue], path: str) -> list[LintIssue]:
        """Drop suppressed findings, then report unused suppressions."""
        kept: list[LintIssue] = []
        for issue in issues:
            allowed = self.by_line.get(issue.line, ())
            if issue.code in allowed:
                for (decl, code), _ in list(self.sites.items()):
                    if code == issue.code and issue.line in (decl, decl + 1):
                        self.sites[(decl, code)] = True
                continue
            kept.append(issue)
        for (decl, code), used in sorted(self.sites.items()):
            if not used:
                kept.append(
                    LintIssue(
                        path, decl, 0, "REP400",
                        f"unused suppression: no {code} finding on this "
                        "line — remove the stale allow comment",
                    )
                )
        return kept


class AnalysisReport:
    """Findings plus the lock-order graph they were derived with."""

    def __init__(
        self, issues: list[LintIssue], graph: LockOrderGraph
    ) -> None:
        self.issues = issues
        self.graph = graph


def _scope_for(path: str) -> tuple[Scope, bool]:
    """(rule scope, check_annotations) for one file path."""
    posix = path.replace("\\", "/")
    in_src = "src/repro/" in posix or posix.startswith("repro/")
    backend_allowed = any(posix.endswith(a) for a in BACKEND_ALLOWED)
    server_scope = (
        ("/server/" in posix or "\\server\\" in path)
        and not any(posix.endswith(a) for a in SERVER_MUTATION_ALLOWED)
    )
    core_scope = "/core/" in posix or "\\core\\" in path
    return (
        Scope(
            in_src=in_src,
            backend_allowed=backend_allowed,
            server_scope=server_scope and in_src,
            storage_internal=backend_allowed,
        ),
        core_scope and in_src,
    )


def _analyze_one(
    source: str, path: str
) -> tuple[list[LintIssue], ast.Module | None]:
    """All per-file findings (unsuppressed) plus the parsed tree."""
    scope, check_annotations = _scope_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                LintIssue(
                    path, exc.lineno or 0, exc.offset or 0,
                    "REP100", f"syntax error: {exc.msg}",
                )
            ],
            None,
        )
    issues: list[LintIssue] = []
    if scope.in_src:
        # Legacy value rules; REP101/REP105/REP106 are superseded by
        # the typed pass, so their substring variants stay off.
        issues.extend(
            lint_source(
                source,
                path,
                check_backend=False,
                check_annotations=check_annotations,
                check_server_mutation=False,
            )
        )
    issues.extend(analyze_module(tree, path, scope))
    return issues, tree


def analyze_source(source: str, path: str = "src/repro/module.py") -> list[LintIssue]:
    """Analyze one module's source text (tests and tooling).

    The fake ``path`` selects rule scoping exactly as for a real file,
    and the lock-order pass runs over just this module.
    """
    issues, tree = _analyze_one(source, path)
    if tree is not None:
        lockorder = LockOrderAnalyzer()
        lockorder.add_module(tree, path)
        issues.extend(lockorder.build().findings())
    return Suppressions(source).filter(
        sorted(issues, key=lambda i: (i.line, i.col, i.code)), path
    )


def analyze_paths(
    paths: Sequence[str | Path] | None = None,
) -> AnalysisReport:
    """Analyze files or directory trees (default: installed ``repro``)."""
    roots = [Path(p) for p in paths] if paths else [repo_source_root()]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    issues: list[LintIssue] = []
    lockorder = LockOrderAnalyzer()
    suppressions: dict[str, Suppressions] = {}
    per_file: dict[str, list[LintIssue]] = {}
    for file in files:
        path = str(file)
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            issues.append(
                LintIssue(path, 0, 0, "REP100", f"unreadable: {exc}")
            )
            continue
        suppressions[path] = Suppressions(source)
        file_issues, tree = _analyze_one(source, path)
        per_file[path] = file_issues
        if tree is not None:
            lockorder.add_module(tree, path)
    graph = lockorder.build()
    for issue in graph.findings():
        per_file.setdefault(issue.path, []).append(issue)
    for path, file_issues in per_file.items():
        supp = suppressions.get(path)
        if supp is not None:
            issues.extend(supp.filter(file_issues, path))
        else:
            issues.extend(file_issues)
    issues.sort(key=lambda i: (i.path, i.line, i.col, i.code))
    return AnalysisReport(issues, graph)
