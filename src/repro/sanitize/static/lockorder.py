"""Lock-order verification (REP203).

Builds a static *acquisition graph*: a node per lock, an edge A → B
whenever some code path acquires B while holding A.  If every thread
acquires locks consistently with one global order the graph is acyclic;
a cycle is a potential deadlock (including self-edges — the latch and
the plain mutexes here are non-reentrant).  A lock *assigned from*
``threading.RLock()`` is tracked as reentrant: self-edges on it are by
design (the MVCC frame lock is held across ``snapshot()`` →
``_preserve()`` re-entry) and are not findings, while multi-lock cycles
through it still are — reentrancy changes nothing about cross-lock
ordering.

Lock nodes:

* ``ReadWriteLatch`` / ``ReadWriteGate`` — class-level: every store
  shares one latch discipline, so all latch instances collapse to one
  node (this is what makes writer-preference deadlocks visible);
* ``Class.attr`` — a plain ``threading.Lock`` / ``Condition`` held in
  an attribute (``PageStore._frame_lock``, ``QueryServer._read_mutex``);
* a bare name — a local/module-level lock, unified by name so seeded
  two-function reproducers order against each other.

Interprocedural edges come from a two-step summary fixpoint: ``ACQ(f)``
is the set of locks ``f`` (transitively) acquires; a call to ``f``
while holding H adds edges H × ACQ(f).  Three call forms are resolved:
``self.method()``, method calls on tag-typed receivers, and function
references handed to ``run_in_executor`` / ``submit`` / ``map`` — the
executor runs them while the caller still holds its locks, which is
exactly how the aggregator's gate orders against the store latch.
``Thread(target=...)`` is deliberately *not* treated as a call: a new
thread starts with an empty lock set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.sanitize.lint import LintIssue
from repro.sanitize.static import facts as F
from repro.sanitize.static.cfg import is_swallowing
from repro.sanitize.static.facts import ClassContext, FactEvaluator

LATCH_NODE = "ReadWriteLatch"
GATE_NODE = "ReadWriteGate"

#: Receiver tag → classes whose method summaries a call may bind to.
TAG_CLASSES: dict[str, tuple[str, ...]] = {
    F.PAGE_STORE: ("PageStore",),
    F.LATCH: ("ReadWriteLatch",),
    F.GATE: ("ReadWriteGate",),
    F.INDEX: ("HashTree", "MDEH"),
    F.MULTIKEY_FILE: ("MultiKeyFile",),
    F.BACKEND: ("WALBackend", "FileBackend", "MemoryBackend"),
    F.WAL_BACKEND: ("WALBackend",),
    F.BUFFER_POOL: ("BufferPool",),
}

_EXECUTOR_DISPATCH = frozenset({"run_in_executor", "submit", "map"})

FuncKey = tuple[str, str, str]  # ("cls"|"mod", class-or-path, name)


def _is_rlock_call(expr: ast.expr) -> bool:
    """``threading.RLock()`` / ``RLock()`` (any dotted spelling)."""
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Attribute):
        return func.attr == "RLock"
    return isinstance(func, ast.Name) and func.id == "RLock"


@dataclass
class _Acq:
    lock: str
    path: str
    line: int
    held: tuple[str, ...]


@dataclass
class _Call:
    candidates: tuple[FuncKey, ...]
    path: str
    line: int
    held: tuple[str, ...]


@dataclass
class _FuncInfo:
    key: FuncKey
    acqs: list[_Acq] = field(default_factory=list)
    calls: list[_Call] = field(default_factory=list)


class LockOrderGraph:
    """The acquisition graph plus cycle reporting and DOT rendering."""

    def __init__(self) -> None:
        self.nodes: set[str] = set()
        #: (src, dst) → first witness "path:line".
        self.edges: dict[tuple[str, str], str] = {}
        #: Nodes assigned from ``threading.RLock()``: self-edges on
        #: these are legal re-entry, not deadlocks.
        self.reentrant: set[str] = set()

    def add_edge(self, src: str, dst: str, witness: str) -> None:
        self.nodes.add(src)
        self.nodes.add(dst)
        self.edges.setdefault((src, dst), witness)

    def cycles(self) -> list[list[str]]:
        """One representative cycle per strongly connected component
        (plus self-loops), nodes in sorted order for stable output."""
        out: list[list[str]] = []
        for src, dst in sorted(self.edges):
            if src == dst and src not in self.reentrant:
                out.append([src])
        adjacency: dict[str, list[str]] = {n: [] for n in self.nodes}
        for src, dst in self.edges:
            if src != dst:
                adjacency[src].append(dst)
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        stack: list[str] = []
        on_stack: set[str] = set()
        counter = [0]
        sccs: list[list[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in adjacency[node]:
                if succ not in index:
                    strongconnect(succ)
                    low[node] = min(low[node], low[succ])
                elif succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    component.append(top)
                    if top == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

        for node in sorted(self.nodes):
            if node not in index:
                strongconnect(node)
        out.extend(sccs)
        return out

    def findings(self) -> list[LintIssue]:
        issues: list[LintIssue] = []
        for cycle in self.cycles():
            if len(cycle) == 1:
                node = cycle[0]
                witness = self.edges[(node, node)]
                path, _, line = witness.rpartition(":")
                issues.append(
                    LintIssue(
                        path or witness, int(line or 0), 0, "REP203",
                        f"lock-order self-cycle: {node} is re-acquired "
                        f"while already held (at {witness}) — the latch "
                        "and mutexes here are non-reentrant",
                    )
                )
                continue
            hops: list[str] = []
            first_witness = ""
            ring = cycle + [cycle[0]]
            for src, dst in zip(ring, ring[1:]):
                witness = self.edges.get((src, dst), "?")
                if not first_witness:
                    first_witness = witness
                hops.append(f"{src} -> {dst} ({witness})")
            path, _, line = first_witness.rpartition(":")
            issues.append(
                LintIssue(
                    path or first_witness, int(line or 0), 0, "REP203",
                    "lock-order cycle — two threads taking these in "
                    "opposite order deadlock: " + "; ".join(hops),
                )
            )
        return issues

    def to_dot(self) -> str:
        lines = ["digraph lockorder {", "  rankdir=LR;"]
        for node in sorted(self.nodes):
            lines.append(f'  "{node}";')
        cyclic = {
            (src, dst)
            for cycle in self.cycles()
            for src, dst in zip(cycle + [cycle[0]], (cycle + [cycle[0]])[1:])
            if (src, dst) in self.edges
        }
        cyclic |= {(s, d) for (s, d) in self.edges if s == d}
        for (src, dst), witness in sorted(self.edges.items()):
            style = ' color="red"' if (src, dst) in cyclic else ""
            lines.append(
                f'  "{src}" -> "{dst}" [label="{witness}"{style}];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"


class LockOrderAnalyzer:
    """Collects per-function acquisition summaries, then closes them."""

    def __init__(self) -> None:
        self._funcs: dict[FuncKey, _FuncInfo] = {}
        self._reentrant: set[str] = set()

    # -- collection --------------------------------------------------------

    def add_module(self, tree: ast.Module, path: str) -> None:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and _is_rlock_call(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._reentrant.add(target.id)
        self._visit(tree, path, None)

    def _visit(
        self, node: ast.AST, path: str, cls: ClassContext | None
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                self._visit(child, path, ClassContext(child))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(child, path, cls)
                self._visit(child, path, cls)
            elif not isinstance(child, ast.Lambda):
                self._visit(child, path, cls)

    def _scan_function(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        path: str,
        cls: ClassContext | None,
    ) -> None:
        key: FuncKey = (
            ("cls", cls.name, func.name) if cls else ("mod", path, func.name)
        )
        info = _FuncInfo(key)
        if cls is not None:
            for stmt in ast.walk(func):
                if not (
                    isinstance(stmt, ast.Assign)
                    and _is_rlock_call(stmt.value)
                ):
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self._reentrant.add(f"{cls.name}.{target.attr}")
        evaluator = FactEvaluator(cls)
        scanner = _Scanner(info, evaluator, path, cls)
        scanner.scan_body(func.body, [])
        self._funcs[key] = info

    # -- closure -----------------------------------------------------------

    def build(self) -> LockOrderGraph:
        acq: dict[FuncKey, set[str]] = {
            key: {a.lock for a in info.acqs} for key, info in self._funcs.items()
        }
        changed = True
        while changed:
            changed = False
            for key, info in self._funcs.items():
                for call in info.calls:
                    for cand in call.candidates:
                        extra = acq.get(cand)
                        if extra and not extra <= acq[key]:
                            acq[key] |= extra
                            changed = True
        graph = LockOrderGraph()
        graph.reentrant = set(self._reentrant)
        for info in self._funcs.values():
            for a in info.acqs:
                graph.nodes.add(a.lock)
                for held in a.held:
                    graph.add_edge(held, a.lock, f"{a.path}:{a.line}")
            for call in info.calls:
                if not call.held:
                    continue
                for cand in call.candidates:
                    for lock in sorted(acq.get(cand, ())):
                        for held in call.held:
                            graph.add_edge(
                                held, lock, f"{call.path}:{call.line}"
                            )
        return graph


class _Scanner:
    """Lexical walk of one function body, tracking held locks in order."""

    def __init__(
        self,
        info: _FuncInfo,
        evaluator: FactEvaluator,
        path: str,
        cls: ClassContext | None,
    ) -> None:
        self.info = info
        self.evaluator = evaluator
        self.path = path
        self.cls = cls
        #: >0 inside a ``pytest.raises`` / ``contextlib.suppress`` body:
        #: an acquisition there is expected to fail and orders nothing.
        self._swallow = 0

    # -- naming ------------------------------------------------------------

    def _plain_lock_node(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and self.cls is not None
            ):
                return f"{self.cls.name}.{expr.attr}"
            return expr.attr
        if isinstance(expr, ast.Name):
            return expr.id
        return None

    def _acquisition(self, call: ast.Call) -> str | None:
        """The lock node a *statement-level* call acquires, if any."""
        if not isinstance(call.func, ast.Attribute):
            return None
        attr = call.func.attr
        if attr in ("acquire_read", "acquire_write"):
            return LATCH_NODE
        if attr == "acquire":
            tags = self.evaluator.tags(call.func.value, {})
            if {F.LOCK, F.CONDITION} & tags:
                return self._plain_lock_node(call.func.value)
        return None

    def _release(self, call: ast.Call) -> str | None:
        if not isinstance(call.func, ast.Attribute):
            return None
        attr = call.func.attr
        if attr in ("release_read", "release_write"):
            return LATCH_NODE
        if attr == "release":
            tags = self.evaluator.tags(call.func.value, {})
            if {F.LOCK, F.CONDITION} & tags:
                return self._plain_lock_node(call.func.value)
        return None

    def _with_lock_node(self, item: ast.withitem) -> str | None:
        expr = item.context_expr
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            attr = expr.func.attr
            tags = self.evaluator.tags(expr.func.value, {})
            if F.LATCH in tags and attr in ("read", "write"):
                return LATCH_NODE
            if F.GATE in tags and attr in ("read_locked", "write_locked"):
                return GATE_NODE
            return None
        if isinstance(expr, (ast.Name, ast.Attribute)):
            tags = self.evaluator.tags(expr, {})
            if {F.LOCK, F.CONDITION} & tags:
                return self._plain_lock_node(expr)
        return None

    # -- call resolution ---------------------------------------------------

    def _resolve_ref(self, expr: ast.expr) -> tuple[FuncKey, ...]:
        """Resolve a *function reference* (not a call) to summary keys."""
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and self.cls is not None
            ):
                return (("cls", self.cls.name, expr.attr),)
            tags = self.evaluator.tags(expr.value, {})
            out: list[FuncKey] = []
            for tag in tags:
                for cand in TAG_CLASSES.get(tag, ()):
                    out.append(("cls", cand, expr.attr))
            return tuple(out)
        if isinstance(expr, ast.Name):
            return (("mod", self.path, expr.id),)
        return ()

    def _call_candidates(self, call: ast.Call) -> tuple[FuncKey, ...]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _EXECUTOR_DISPATCH:
            # loop.run_in_executor(executor, fn, ...) / pool.submit(fn)
            # / pool.map(fn, items): fn runs while the caller's locks
            # are still held.
            args = call.args
            target = None
            if func.attr == "run_in_executor" and len(args) >= 2:
                target = args[1]
            elif func.attr in ("submit", "map") and args:
                target = args[0]
            return self._resolve_ref(target) if target is not None else ()
        return self._resolve_ref(func)

    # -- traversal ---------------------------------------------------------

    def _stmt_calls(self, stmt: ast.stmt) -> list[ast.Call]:
        """All calls in a statement, stopping at nested definitions."""
        out: list[ast.Call] = []
        stack = list(ast.iter_child_nodes(stmt))
        while stack:
            node = stack.pop(0)
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                continue
            if isinstance(node, ast.Call):
                out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    def _record_acq(self, lock: str, line: int, held: list[str]) -> None:
        self.info.acqs.append(_Acq(lock, self.path, line, tuple(held)))

    def _record_calls(
        self, calls: list[ast.Call], held: list[str], consumed: set[int]
    ) -> None:
        for call in calls:
            if id(call) in consumed:
                continue
            candidates = self._call_candidates(call)
            if candidates:
                self.info.calls.append(
                    _Call(candidates, self.path, call.lineno, tuple(held))
                )

    def _expr_calls(self, exprs: list[ast.expr | None]) -> list[ast.Call]:
        out: list[ast.Call] = []
        stack: list[ast.AST] = [e for e in exprs if e is not None]
        while stack:
            node = stack.pop(0)
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call):
                out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    def _process_calls(self, calls: list[ast.Call], held: list[str]) -> None:
        """Acquire/release bookkeeping + call events for one header or
        simple statement; mutates ``held`` for manual acquisitions."""
        consumed: set[int] = set()
        for call in calls:
            released = self._release(call)
            if released is not None:
                consumed.add(id(call))
                for i in range(len(held) - 1, -1, -1):
                    if held[i] == released:
                        del held[i]
                        break
                continue
            acquired = self._acquisition(call)
            if acquired is not None:
                consumed.add(id(call))
                if not self._swallow:
                    self._record_acq(acquired, call.lineno, held)
                    held.append(acquired)
        self._record_calls(calls, held, consumed)

    def scan_body(self, body: list[ast.stmt], held: list[str]) -> None:
        for stmt in body:
            self._scan_stmt(stmt, held)

    def _scan_stmt(self, stmt: ast.stmt, held: list[str]) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # scanned separately with an empty lock set
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed = 0
            swallows = any(is_swallowing(item) for item in stmt.items)
            for item in stmt.items:
                consumed: set[int] = set()
                lock = self._with_lock_node(item)
                if lock is not None:
                    if isinstance(item.context_expr, ast.Call):
                        consumed.add(id(item.context_expr))
                    if not self._swallow:
                        self._record_acq(lock, item.context_expr.lineno, held)
                        held.append(lock)
                        pushed += 1
                self._record_calls(
                    self._expr_calls([item.context_expr]), held, consumed
                )
            if swallows:
                self._swallow += 1
            self.scan_body(stmt.body, held)
            if swallows:
                self._swallow -= 1
            for _ in range(pushed):
                held.pop()
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._process_calls(self._expr_calls([stmt.test]), held)
            self.scan_body(stmt.body, held)
            self.scan_body(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._process_calls(self._expr_calls([stmt.iter]), held)
            self.scan_body(stmt.body, held)
            self.scan_body(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try) or stmt.__class__.__name__ == "TryStar":
            self.scan_body(stmt.body, held)  # type: ignore[attr-defined]
            for handler in stmt.handlers:  # type: ignore[attr-defined]
                self.scan_body(handler.body, held)
            self.scan_body(stmt.orelse, held)  # type: ignore[attr-defined]
            self.scan_body(stmt.finalbody, held)  # type: ignore[attr-defined]
            return
        if stmt.__class__.__name__ == "Match":
            self._process_calls(
                self._expr_calls([stmt.subject]),  # type: ignore[attr-defined]
                held,
            )
            for case in stmt.cases:  # type: ignore[attr-defined]
                self.scan_body(case.body, held)
            return
        self._process_calls(self._stmt_calls(stmt), held)
