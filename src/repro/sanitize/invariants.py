"""Deep structural validators for every index scheme.

Each checker walks the whole structure with *uncharged* reads
(:meth:`~repro.storage.PageStore.peek`) so validation never distorts the
I/O ledger, and raises :class:`~repro.errors.InvariantViolation` — naming
the invariant and the root-to-failure path — at the first breakage.

The checked invariants, with their paper anchors:

=====================  =====================================================
``balance``            every data page at the same distance from the root
                       (BMEH Theorem 3 / K-D-B construction)
``level-arithmetic``   child node level is parent − 1 (BMEH) or parent + 1
                       (MEH): the level field mirrors the real height
``depth-arithmetic``   a node never addresses past ``w_j``:
                       ``consumed[j] + H_j <= w_j`` (§3.1)
``local-depth``        ``0 <= h_j <= H_j`` for every directory element
``region-uniform``     the ``2^(H_j - h_j)`` buddy cells of a region all
                       share one directory element — and no cell outside
                       the region does (§2.1's element sharing)
``key-prefix``         every record's code agrees with its region's path
                       prefix on all ``consumed[j] + h[j]`` bits
``page-occupancy``     ``0 < len(page) <= b``: empty pages are dropped
                       immediately (§2.1), full pages are split
``mapping-bijective``  Theorem 1's ``G``: linear addresses and index
                       tuples of the allocated extendible array round-trip
``fan-in``             every node/page is referenced by exactly one region
``dangling-pointer``   every referenced page id is live in the store
``page-leak``          every live page in an index-owned store is
                       reachable from the root
``pinned-live``        no page is both pinned and discarded
``pool-coherent``      every buffer frame (and dirty bit) belongs to a
                       live page: a frame surviving ``free()`` would
                       resurrect the page at the next flush/eviction
``wal-coherent``       the WAL overlay agrees with the page file: no id is
                       both a pending store and a tombstone, the
                       advertised live set is exactly (inner live −
                       tombstones) ∪ pending stores, and the store's page
                       count matches it
``counter``            cached totals (keys, pages, nodes) match a recount
=====================  =====================================================
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import InvariantViolation, ReproError, StorageError
from repro.storage import DataPage

__all__ = [
    "check_extendible_array",
    "check_gridfile",
    "check_hashtree",
    "check_kdb",
    "check_mdeh",
    "check_storage",
    "check_structure",
]


class _Walk:
    """Shared bookkeeping of one validation pass: the current path from
    the root (for error reports) and the reachable-page census (for the
    storage-layer checks)."""

    def __init__(self, index: Any) -> None:
        self.index = index
        self.scheme = type(index).__name__
        self.path: list[str] = []
        #: page id -> number of referencing directory regions.
        self.fan_in: dict[int, int] = {}
        self.keys = 0
        self.data_pages = 0

    def fail(self, invariant: str, message: str) -> None:
        raise InvariantViolation(
            message,
            invariant=invariant,
            scheme=self.scheme,
            path=tuple(self.path),
        )

    def enter(self, label: str) -> None:
        self.path.append(label)

    def leave(self) -> None:
        self.path.pop()

    def reference(self, page_id: int) -> None:
        self.fan_in[page_id] = self.fan_in.get(page_id, 0) + 1

    def load(self, page_id: int) -> Any:
        """Uncharged load; a missing page is a dangling pointer."""
        try:
            return self.index.store.peek(page_id)
        except StorageError:
            self.fail(
                "dangling-pointer",
                f"page {page_id} is referenced but not in the store",
            )

    def check_page(self, page_id: int, label: str) -> DataPage:
        """Occupancy + single-reference checks shared by every scheme."""
        self.enter(label)
        if self.fan_in.get(page_id):
            self.fail("fan-in", f"data page {page_id} shared by two regions")
        self.reference(page_id)
        page = self.load(page_id)
        if not isinstance(page, DataPage):
            self.fail(
                "dangling-pointer",
                f"page {page_id} is a {type(page).__name__}, not a DataPage",
            )
        capacity = self.index.page_capacity
        if not 0 < len(page) <= capacity:
            self.fail(
                "page-occupancy",
                f"page {page_id} holds {len(page)} records "
                f"(capacity {capacity}; empty pages must be freed)",
            )
        self.data_pages += 1
        self.keys += len(page)
        self.leave()
        return page

    def check_counters(self, **expected: tuple[int, int]) -> None:
        """``name=(recorded, recounted)`` pairs; mismatch is a violation."""
        for name, (recorded, counted) in expected.items():
            if recorded != counted:
                self.fail(
                    "counter",
                    f"{name}: recorded {recorded}, recounted {counted}",
                )


# -- extendible-array addressing (Theorem 1) ---------------------------------


def check_extendible_array(array: Any, walk: _Walk | None = None) -> None:
    """Verify the mapping ``G`` is a bijection over the allocated array.

    Every linear address must decode to an in-shape index tuple that
    encodes back to the same address (injectivity + surjectivity over
    ``[0, 2^t)``), and the allocated size must be exactly ``2^t`` for the
    recorded doubling history — Theorem 1 generalized to arbitrary
    doubling orders.
    """
    if walk is None:
        walk = _Walk.__new__(_Walk)
        walk.index = array
        walk.scheme = "ExtendibleArray"
        walk.path = []
        walk.fan_in = {}
        walk.keys = 0
        walk.data_pages = 0
    depths = array.depths
    if len(array) != 1 << sum(depths):
        walk.fail(
            "mapping-bijective",
            f"array holds {len(array)} cells, depths {depths} "
            f"imply {1 << sum(depths)}",
        )
    shape = array.shape
    for address in range(len(array)):
        index = array.index_of(address)
        for j, (i, extent) in enumerate(zip(index, shape)):
            if not 0 <= i < extent:
                walk.fail(
                    "mapping-bijective",
                    f"address {address} decodes to {index}, coordinate "
                    f"{i} outside [0, {extent}) on axis {j}",
                )
        back = array.address(index)
        if back != address:
            walk.fail(
                "mapping-bijective",
                f"G({index}) = {back} but index_of({address}) = {index}: "
                "the mapping does not round-trip",
            )


# -- tree-structured schemes (MEH / BMEH) ------------------------------------


def _region_census(walk: _Walk, node: Any) -> list[tuple]:
    """Distinct regions of one directory node with uniformity checks.

    Returns ``(entry, anchor, cell_count)`` triples.  Verifies the
    buddy-cell sharing rule exactly: the cells holding a region's element
    must be precisely the ``region_indices`` block around its anchor — no
    hole inside, no stray cell outside.
    """
    from repro.core.directory import region_indices, region_size

    depths = node.array.depths
    occurrences: dict[int, int] = {}
    firsts: dict[int, tuple] = {}
    for address in range(len(node.array)):
        entry = node.array.get_at(address)
        if entry is None:
            walk.fail("region-uniform", f"hole at address {address}")
        occurrences[id(entry)] = occurrences.get(id(entry), 0) + 1
        if id(entry) not in firsts:
            firsts[id(entry)] = (entry, node.array.index_of(address))
    regions = []
    for entry, anchor in firsts.values():
        for j in range(node.dims):
            if not 0 <= entry.h[j] <= depths[j]:
                walk.fail(
                    "local-depth",
                    f"cell {anchor}: local depth h[{j}]={entry.h[j]} "
                    f"outside [0, {depths[j]}]",
                )
        expected = region_size(depths, entry.h)
        if occurrences[id(entry)] != expected:
            walk.fail(
                "region-uniform",
                f"region anchored at {anchor} (h={entry.h}) occupies "
                f"{occurrences[id(entry)]} cells, local depths imply "
                f"{expected}",
            )
        for cell in region_indices(depths, anchor, entry.h):
            if node.array[cell] is not entry:
                walk.fail(
                    "region-uniform",
                    f"buddy cell {cell} of region {anchor} holds a "
                    "different element",
                )
        if entry.ptr is None and entry.is_node:
            walk.fail(
                "region-uniform",
                f"cell {anchor}: NIL pointer flagged as a directory node",
            )
        regions.append((entry, anchor))
    return regions


def check_hashtree(index: Any) -> None:
    """Validate a MEH-tree or BMEH-tree directory in depth.

    BMEH specifics: child level = parent level − 1 and every data page
    hangs from a level-1 node — together, the height-balance of Theorem 3.
    MEH grows root-down, so levels *increase* and no balance is required.
    """
    from repro.core.bmeh_tree import BMEHTree
    from repro.core.node import Node

    walk = _Walk(index)
    balanced = isinstance(index, BMEHTree)
    nodes_seen = 0

    def visit(node_id: int, consumed: tuple[int, ...],
              prefix: tuple[int, ...], parent_level: int | None) -> None:
        nonlocal nodes_seen
        walk.enter(f"node {node_id}")
        if walk.fan_in.get(node_id):
            walk.fail("fan-in", f"directory node {node_id} reached twice")
        walk.reference(node_id)
        node = walk.load(node_id)
        if not isinstance(node, Node):
            walk.fail(
                "dangling-pointer",
                f"id {node_id} is a {type(node).__name__}, not a Node",
            )
        nodes_seen += 1
        if parent_level is not None:
            expected = parent_level - 1 if balanced else parent_level + 1
            if node.level != expected:
                walk.fail(
                    "level-arithmetic",
                    f"node level {node.level} under parent level "
                    f"{parent_level} (expected {expected})",
                )
        if len(node.array) > node.capacity:
            walk.fail(
                "depth-arithmetic",
                f"node holds {len(node.array)} cells, budget is "
                f"2^phi = {node.capacity}",
            )
        check_extendible_array(node.array, walk)
        depths = node.array.depths
        for j in range(index.dims):
            if consumed[j] + depths[j] > index.widths[j]:
                walk.fail(
                    "depth-arithmetic",
                    f"axis {j}: consumed {consumed[j]} + node depth "
                    f"{depths[j]} exceeds the {index.widths[j]}-bit code",
                )
        for entry, anchor in _region_census(walk, node):
            child_consumed = tuple(
                consumed[j] + entry.h[j] for j in range(index.dims)
            )
            child_prefix = tuple(
                (prefix[j] << entry.h[j])
                | (anchor[j] >> (depths[j] - entry.h[j]))
                for j in range(index.dims)
            )
            if entry.ptr is None:
                continue
            if entry.is_node:
                visit(entry.ptr, child_consumed, child_prefix, node.level)
            else:
                if balanced and node.level != 1:
                    walk.fail(
                        "balance",
                        f"data page {entry.ptr} hangs from a level-"
                        f"{node.level} node; balance requires level 1",
                    )
                page = walk.check_page(entry.ptr, f"cell {anchor}")
                _check_key_prefixes(
                    walk, index, page, entry.ptr, child_consumed, child_prefix
                )
        walk.leave()

    visit(index.root_id, (0,) * index.dims, (0,) * index.dims, None)
    if not index.store.is_pinned(index.root_id):
        walk.fail("pinned-live", f"root node {index.root_id} is not pinned")
    walk.check_counters(
        keys=(len(index), walk.keys),
        data_pages=(index.data_page_count, walk.data_pages),
        nodes=(index.node_count, nodes_seen),
    )
    check_storage(index, walk)


def _check_key_prefixes(
    walk: _Walk,
    index: Any,
    page: DataPage,
    page_id: int,
    consumed: tuple[int, ...],
    prefix: tuple[int, ...],
) -> None:
    """Every record's top ``consumed[j]`` bits must equal the region's
    path prefix — the paper's depth arithmetic made testable."""
    for codes in page.keys():
        for j in range(index.dims):
            got = codes[j] >> (index.widths[j] - consumed[j])
            if got != prefix[j]:
                walk.fail(
                    "key-prefix",
                    f"page {page_id}: key {codes} has prefix {got} on "
                    f"axis {j}, region requires {prefix[j]} "
                    f"(overall depth {consumed[j]})",
                )


# -- one-level scheme (MDEH) -------------------------------------------------


def check_mdeh(index: Any) -> None:
    """Validate the one-level directory: ``G`` bijectivity, region
    uniformity over the flat extendible array, key prefixes, counters."""
    from repro.bits import g
    from repro.core.directory import region_indices, region_size

    walk = _Walk(index)
    directory = index._dir
    check_extendible_array(directory, walk)
    depths = directory.depths
    occurrences: dict[int, int] = {}
    firsts: dict[int, tuple] = {}
    for address in range(len(directory)):
        entry = directory.get_at(address)
        if entry is None:
            walk.fail("region-uniform", f"hole at directory address {address}")
        if entry.is_node:
            walk.fail(
                "region-uniform",
                f"directory address {address}: one-level scheme cannot "
                "point to a node",
            )
        occurrences[id(entry)] = occurrences.get(id(entry), 0) + 1
        firsts.setdefault(id(entry), (entry, directory.index_of(address)))
    for entry, anchor in firsts.values():
        walk.enter(f"region {anchor}")
        for j in range(index.dims):
            if not 0 <= entry.h[j] <= depths[j]:
                walk.fail(
                    "local-depth",
                    f"local depth h[{j}]={entry.h[j]} outside "
                    f"[0, {depths[j]}]",
                )
        expected = region_size(depths, entry.h)
        if occurrences[id(entry)] != expected:
            walk.fail(
                "region-uniform",
                f"region occupies {occurrences[id(entry)]} cells, local "
                f"depths {entry.h} imply {expected}",
            )
        for cell in region_indices(depths, anchor, entry.h):
            if directory.get_at(directory.address(cell)) is not entry:
                walk.fail(
                    "region-uniform",
                    f"buddy cell {cell} holds a different element",
                )
        if entry.ptr is not None:
            page = walk.check_page(entry.ptr, f"page {entry.ptr}")
            for codes in page.keys():
                for j in range(index.dims):
                    got = g(codes[j], index.widths[j], entry.h[j])
                    want = anchor[j] >> (depths[j] - entry.h[j])
                    if got != want:
                        walk.fail(
                            "key-prefix",
                            f"key {codes} has prefix {got} on axis {j}, "
                            f"region requires {want}",
                        )
        walk.leave()
    walk.check_counters(
        keys=(len(index), walk.keys),
        data_pages=(index.data_page_count, walk.data_pages),
    )
    check_storage(index, walk)


# -- grid file ---------------------------------------------------------------


def check_gridfile(index: Any) -> None:
    """Validate the grid file: sorted scales, dyadic aligned region
    boxes, exact block↔region agreement, page occupancy, counters."""
    import itertools

    walk = _Walk(index)
    for dim, scale in enumerate(index.scales):
        if list(scale) != sorted(set(scale)):
            walk.fail(
                "region-uniform",
                f"scale {dim} is not strictly increasing: {scale}",
            )
        if len(scale) + 1 != index.grid_shape[dim]:
            walk.fail(
                "counter",
                f"scale {dim} has {len(scale)} boundaries but the grid "
                f"spans {index.grid_shape[dim]} intervals",
            )
    expected_cells = 1
    for extent in index.grid_shape:
        expected_cells *= extent
    if expected_cells != len(index._grid):
        walk.fail(
            "counter",
            f"grid holds {len(index._grid)} blocks, shape "
            f"{index.grid_shape} implies {expected_cells}",
        )
    block_count: dict[int, int] = {}
    regions: dict[int, Any] = {}
    for region in index._grid:
        block_count[id(region)] = block_count.get(id(region), 0) + 1
        regions.setdefault(id(region), region)
    for region in regions.values():
        label = f"region {region.lows}..{region.highs}"
        walk.enter(label)
        for j in range(index.dims):
            span = region.highs[j] - region.lows[j] + 1
            if span & (span - 1):
                walk.fail(
                    "region-uniform",
                    f"axis {j} spans {span} codes — not a power of two",
                )
            if region.lows[j] % span:
                walk.fail(
                    "region-uniform",
                    f"axis {j} box [{region.lows[j]}, {region.highs[j]}] "
                    "is not aligned to its own size",
                )
        blocks = list(index._blocks_of(region))
        if len(blocks) != block_count[id(region)]:
            walk.fail(
                "region-uniform",
                f"region covers {len(blocks)} grid blocks but "
                f"{block_count[id(region)]} blocks point at it",
            )
        for cell in blocks:
            if index._region_at(cell) is not region:
                walk.fail(
                    "region-uniform",
                    f"grid block {cell} inside the region's box maps to "
                    "a different region",
                )
        if region.ptr is not None:
            page = walk.check_page(region.ptr, f"page {region.ptr}")
            for codes in page.keys():
                if not region.contains(codes):
                    walk.fail(
                        "key-prefix",
                        f"key {codes} stored outside its region box",
                    )
        walk.leave()
    walk.check_counters(
        keys=(len(index), walk.keys),
        data_pages=(index.data_page_count, walk.data_pages),
    )
    check_storage(index, walk)


# -- K-D-B tree --------------------------------------------------------------


def check_kdb(index: Any) -> None:
    """Validate the K-D-B tree: child boxes tile each region page
    exactly, all point pages at one depth, fanout respected, counters."""
    walk = _Walk(index)
    leaf_depths: set[int] = set()
    region_pages = 0

    def visit(page_id: int, box: Any, depth: int) -> None:
        nonlocal region_pages
        walk.enter(f"region-page {page_id}")
        if walk.fan_in.get(page_id):
            walk.fail("fan-in", f"region page {page_id} reached twice")
        walk.reference(page_id)
        page = walk.load(page_id)
        if not hasattr(page, "entries"):
            walk.fail(
                "dangling-pointer",
                f"id {page_id} is a {type(page).__name__}, not a region page",
            )
        region_pages += 1
        if len(page.entries) > index.fanout:
            walk.fail(
                "depth-arithmetic",
                f"region page holds {len(page.entries)} entries, "
                f"fanout is {index.fanout}",
            )
        volume = 0
        total = 1
        for j in range(index.dims):
            total *= box.highs[j] - box.lows[j] + 1
        for entry in page.entries:
            size = 1
            for j in range(index.dims):
                span = entry.box.highs[j] - entry.box.lows[j] + 1
                if span & (span - 1):
                    walk.fail(
                        "region-uniform",
                        f"child box spans {span} codes on axis {j} — "
                        "not dyadic",
                    )
                if (entry.box.lows[j] < box.lows[j]
                        or entry.box.highs[j] > box.highs[j]):
                    walk.fail(
                        "region-uniform",
                        f"child box escapes its parent on axis {j}",
                    )
                size *= span
            volume += size
            if entry.is_region:
                if entry.ptr is None:
                    walk.fail(
                        "dangling-pointer",
                        "an internal entry with a NIL pointer",
                    )
                visit(entry.ptr, entry.box, depth + 1)
            else:
                leaf_depths.add(depth)
                if entry.ptr is None:
                    continue
                page_obj = walk.check_page(entry.ptr, f"page {entry.ptr}")
                for codes in page_obj.keys():
                    if not entry.box.contains(codes):
                        walk.fail(
                            "key-prefix",
                            f"key {codes} stored outside its box",
                        )
        if volume != total:
            walk.fail(
                "region-uniform",
                f"child boxes cover {volume} of the region's {total} "
                "code points — they must tile it exactly",
            )
        walk.leave()

    visit(index.root_id, index._domain_box(), 1)
    if len(leaf_depths) > 1:
        walk.fail(
            "balance",
            f"point pages at depths {sorted(leaf_depths)} — the K-D-B "
            "construction keeps all leaves at one depth",
        )
    if not index.store.is_pinned(index.root_id):
        walk.fail("pinned-live", f"root page {index.root_id} is not pinned")
    walk.check_counters(
        keys=(len(index), walk.keys),
        data_pages=(index.data_page_count, walk.data_pages),
        region_pages=(index.region_page_count, region_pages),
    )
    check_storage(index, walk)


# -- storage layer -----------------------------------------------------------


def check_storage(index: Any, walk: _Walk) -> None:
    """Storage-layer invariants, given the walk's reachability census:

    * reference counts match directory fan-in (each page id referenced by
      exactly one region / parent);
    * no page is both pinned and discarded;
    * every buffer-pool frame belongs to a live page and every dirty bit
      to a resident frame (a stale frame would resurrect a freed page);
    * a WAL-wrapped backend's uncommitted overlay is coherent with the
      page file underneath it (no store/tombstone conflict, advertised
      liveness = inner liveness patched by the overlay);
    * when the index owns its store, every live page is reachable — a
      failed split cannot strand an unregistered sibling page.
    """
    store = index.store
    for page_id, count in walk.fan_in.items():
        if count != 1:
            walk.fail(
                "fan-in",
                f"page {page_id} referenced by {count} regions",
            )
    for page_id in store.pinned_ids():
        if page_id not in store:
            walk.fail(
                "pinned-live",
                f"page {page_id} is pinned but discarded from the backend",
            )
    pool = getattr(store, "pool", None)
    if pool is not None:
        frames = pool.frame_ids()
        for page_id in sorted(frames):
            if page_id not in store:
                walk.fail(
                    "pool-coherent",
                    f"buffer frame for page {page_id} outlives the page — "
                    "a flush would resurrect it",
                )
        stray_dirty = pool.dirty_ids() - frames
        if stray_dirty:
            walk.fail(
                "pool-coherent",
                f"dirty bits {sorted(stray_dirty)} have no resident frame",
            )
    _check_wal_coherence(walk, store)
    if getattr(index, "owns_store", False):
        live = set(store.page_ids())
        leaked = live - set(walk.fan_in)
        if leaked:
            walk.fail(
                "page-leak",
                f"live pages {sorted(leaked)} are unreachable from the "
                "root — an orphaned sibling or un-freed page",
            )
        missing = set(walk.fan_in) - live
        if missing:
            walk.fail(
                "dangling-pointer",
                f"referenced pages {sorted(missing)} are not live",
            )


def _check_wal_coherence(walk: _Walk, store: Any) -> None:
    """The WAL's uncommitted overlay must patch — never contradict — the
    page file underneath: this is what makes a checkpoint's "apply the
    pending batch" step well-defined."""
    from repro.storage.wal import WALBackend

    backend = getattr(store, "backend", None)
    if not isinstance(backend, WALBackend):
        return
    pending = backend.pending_store_ids()
    tombstones = backend.pending_discard_ids()
    conflict = pending & tombstones
    if conflict:
        walk.fail(
            "wal-coherent",
            f"pages {sorted(conflict)} are both pending stores and "
            "tombstones in the WAL overlay",
        )
    advertised = set(backend.page_ids())
    expected = (set(backend.inner.page_ids()) - tombstones) | pending
    if advertised != expected:
        walk.fail(
            "wal-coherent",
            f"WAL advertises live pages {sorted(advertised)} but the page "
            f"file patched by the overlay implies {sorted(expected)}",
        )
    ghosts = tombstones & advertised
    if ghosts:
        walk.fail(
            "wal-coherent",
            f"tombstoned pages {sorted(ghosts)} still advertised live",
        )
    if store.page_count != len(advertised):
        walk.fail(
            "wal-coherent",
            f"store counts {store.page_count} live pages, the WAL backend "
            f"advertises {len(advertised)}",
        )


# -- dispatch ----------------------------------------------------------------


def check_structure(index: Any) -> None:
    """Run the deep validator matching ``index``'s scheme.

    Falls back to the scheme's own :meth:`check_invariants` (wrapping its
    ``AssertionError`` in an :class:`InvariantViolation`) for schemes
    without a dedicated deep checker.
    """
    from repro.core.hashtree import HashTreeBase
    from repro.core.mdeh import MDEH
    from repro.gridfile import GridFile
    from repro.kdb import KDBTree

    if isinstance(index, HashTreeBase):
        check_hashtree(index)
    elif isinstance(index, MDEH):
        check_mdeh(index)
    elif isinstance(index, GridFile):
        check_gridfile(index)
    elif isinstance(index, KDBTree):
        check_kdb(index)
    # The scheme's own (historical) checker must agree with the deep one,
    # and is the only coverage for schemes without a dedicated validator.
    try:
        index.check_invariants()
    except AssertionError as exc:
        raise InvariantViolation(
            str(exc) or "check_invariants failed",
            invariant="scheme-specific",
            scheme=type(index).__name__,
        ) from exc


def iter_violations(indexes: Iterator[Any]) -> Iterator[ReproError]:
    """Check many indexes, yielding (not raising) each violation."""
    for index in indexes:
        try:
            check_structure(index)
        except InvariantViolation as violation:
            yield violation
