"""A repo-specific static lint pass over ``src/repro``.

Four rules, each guarding an invariant the runtime sanitizer cannot see:

* **REP101 backend-bypass** — calling ``load`` / ``store`` / ``discard``
  on a ``Backend`` outside ``storage/disk.py``.  Every page access must
  go through :class:`~repro.storage.PageStore` so it is charged to the
  :class:`~repro.storage.IOStats` ledger; a direct backend call silently
  falsifies the paper's λ/ρ measurements.
* **REP102 float-equality** — ``==`` / ``!=`` against a float literal.
  Pseudo-key codes are exact integers; a float comparison anywhere near
  key handling indicates a lossy encode step leaking into index logic.
* **REP103 mutable-default** — a mutable object (list/dict/set display,
  comprehension, or a constructor call — including dotted forms like
  ``collections.defaultdict(list)`` and ``bytearray()``) as a default
  argument: shared across calls, the classic aliasing bug.
* **REP104 missing-annotations** — a public function in ``core/``
  without full parameter and return annotations.  The core API is the
  contract every later layer builds on; annotations are load-bearing
  documentation there.
* **REP105 wal-flush-bypass** — calling ``flush()`` directly on a WAL
  (or raw backend) object outside the storage layer.  A WAL flush is a
  durability point: index and bench code must reach it through
  ``PageStore.flush()`` / ``PageStore.group()`` / ``checkpoint()`` so
  group commit can defer it and the commit count stays truthful — a
  stray ``backend.flush()`` splits a batch into extra commits.
* **REP106 server-mutation-bypass** — calling an index mutation method
  (``insert`` / ``delete`` / ``insert_many`` / ``delete_many``) from
  service-layer code (``server/``) outside the write aggregator
  (``server/aggregator.py``).  Every served mutation must flow through
  the aggregator so concurrent writes coalesce into one group commit
  and the latch discipline holds; a session or handler mutating the
  index directly races the aggregator's batches and splits commits.

Run via ``repro lint`` (exit 1 on findings) or ``repro check``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["LintIssue", "lint_paths", "lint_source", "repo_source_root"]

#: Files allowed to touch a Backend directly: the accounting layer itself,
#: and the WAL wrapper that interposes between the store and the page file.
BACKEND_ALLOWED = ("storage/disk.py", "storage/wal.py")

#: Service-layer files allowed to issue index mutations: the write
#: aggregator, where concurrent mutations coalesce into group commits,
#: and the shard migrator, which mutates no in-process index — its
#: ``insert``/``delete`` calls are :class:`QueryClient` wire requests
#: that the *receiving* worker routes through its own aggregator.
SERVER_MUTATION_ALLOWED = ("server/aggregator.py", "server/migrate.py")

_BACKEND_METHODS = frozenset({"load", "store", "discard"})
_INDEX_MUTATORS = frozenset(
    {"insert", "delete", "insert_many", "delete_many"}
)
#: Constructor names (terminal identifier, so dotted forms like
#: ``collections.defaultdict`` match) whose call as a default argument
#: shares one mutable object across every call.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray",
     "defaultdict", "OrderedDict", "Counter", "deque"}
)


@dataclass(frozen=True)
class LintIssue:
    """One finding of the static pass."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def repo_source_root() -> Path:
    """The ``src/repro`` package directory this module is installed in."""
    return Path(__file__).resolve().parent.parent


def _terminal_name(node: ast.expr) -> str | None:
    """The rightmost identifier of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, *, check_backend: bool,
                 check_annotations: bool,
                 check_server_mutation: bool = False) -> None:
        self.path = path
        self.check_backend = check_backend
        self.check_annotations = check_annotations
        self.check_server_mutation = check_server_mutation
        self.issues: list[LintIssue] = []
        # Nesting stack of 'class' / 'function' scopes: REP104 applies to
        # module-level functions and methods, not to nested helpers.
        self._scopes: list[str] = []

    def _issue(self, node: ast.AST, code: str, message: str) -> None:
        self.issues.append(
            LintIssue(self.path, node.lineno, node.col_offset, code, message)
        )

    # -- REP101 / REP105: storage-layer bypass ---------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self.check_backend and isinstance(node.func, ast.Attribute):
            receiver = _terminal_name(node.func.value)
            lowered = receiver.lower() if receiver is not None else ""
            if (
                node.func.attr in _BACKEND_METHODS
                and "backend" in lowered
            ):
                self._issue(
                    node,
                    "REP101",
                    f"direct Backend.{node.func.attr}() bypasses PageStore "
                    "I/O accounting — route the access through the store",
                )
            if node.func.attr == "flush" and (
                "wal" in lowered or "backend" in lowered
            ):
                self._issue(
                    node,
                    "REP105",
                    "direct WAL/backend flush() is a durability point that "
                    "bypasses group commit — use PageStore.flush(), "
                    "PageStore.group() or checkpoint()",
                )
        if (
            self.check_server_mutation
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _INDEX_MUTATORS
        ):
            self._issue(
                node,
                "REP106",
                f"server code calls .{node.func.attr}() directly — every "
                "served mutation must flow through the write aggregator "
                "(server/aggregator.py) so concurrent writes coalesce "
                "into one group commit",
            )
        self.generic_visit(node)

    # -- REP102: float equality ------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if isinstance(side, ast.Constant) and isinstance(
                    side.value, float
                ):
                    self._issue(
                        node,
                        "REP102",
                        f"equality comparison against float literal "
                        f"{side.value!r}; key codes are exact integers — "
                        "compare with a tolerance or restate in integers",
                    )
                    break
        self.generic_visit(node)

    # -- REP103 / REP104: function definitions ----------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scopes.append("class")
        self.generic_visit(node)
        self._scopes.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._check_annotations(node)
        self._scopes.append("function")
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _check_mutable_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set,
                 ast.ListComp, ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and _terminal_name(default.func) in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                self._issue(
                    default,
                    "REP103",
                    f"mutable default argument in {node.name}(); the "
                    "object is shared across calls — default to None",
                )

    def _check_annotations(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if not self.check_annotations or node.name.startswith("_"):
            return
        if "function" in self._scopes:
            return  # nested helper, not public API
        args = [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]
        if node.args.vararg is not None:
            args.append(node.args.vararg)
        if node.args.kwarg is not None:
            args.append(node.args.kwarg)
        missing = [
            a.arg
            for a in args
            if a.annotation is None and a.arg not in ("self", "cls")
        ]
        if node.returns is None:
            missing.append("return")
        if missing:
            self._issue(
                node,
                "REP104",
                f"public core function {node.name}() missing annotations "
                f"for: {', '.join(missing)}",
            )


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    check_backend: bool = True,
    check_annotations: bool = False,
    check_server_mutation: bool = False,
) -> list[LintIssue]:
    """Lint one module's source text; returns findings (possibly empty)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintIssue(
                path, exc.lineno or 0, exc.offset or 0,
                "REP100", f"syntax error: {exc.msg}",
            )
        ]
    linter = _Linter(
        path,
        check_backend=check_backend,
        check_annotations=check_annotations,
        check_server_mutation=check_server_mutation,
    )
    linter.visit(tree)
    return sorted(linter.issues, key=lambda i: (i.line, i.col, i.code))


def lint_paths(paths: Sequence[str | Path] | None = None) -> list[LintIssue]:
    """Lint files or directory trees (default: the installed ``repro``).

    Rule scoping: REP101 everywhere except the accounting layer itself;
    REP104 only under ``core/``; REP102/REP103 everywhere; REP106 under
    ``server/`` except the write aggregator.
    """
    roots = [Path(p) for p in paths] if paths else [repo_source_root()]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    issues: list[LintIssue] = []
    for file in files:
        posix = file.as_posix()
        check_backend = not any(posix.endswith(a) for a in BACKEND_ALLOWED)
        check_annotations = "/core/" in posix or "\\core\\" in str(file)
        check_server_mutation = (
            "/server/" in posix or "\\server\\" in str(file)
        ) and not any(posix.endswith(a) for a in SERVER_MUTATION_ALLOWED)
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            issues.append(
                LintIssue(str(file), 0, 0, "REP100", f"unreadable: {exc}")
            )
            continue
        issues.extend(
            lint_source(
                source,
                str(file),
                check_backend=check_backend,
                check_annotations=check_annotations,
                check_server_mutation=check_server_mutation,
            )
        )
    return issues


def format_issues(issues: Iterable[LintIssue]) -> str:
    """Render findings one per line, compiler style."""
    return "\n".join(str(issue) for issue in issues)
