"""A repo-specific static lint pass over ``src/repro``.

Four rules, each guarding an invariant the runtime sanitizer cannot see:

* **REP101 backend-bypass** — calling ``load`` / ``store`` / ``discard``
  on a ``Backend`` outside ``storage/disk.py``.  Every page access must
  go through :class:`~repro.storage.PageStore` so it is charged to the
  :class:`~repro.storage.IOStats` ledger; a direct backend call silently
  falsifies the paper's λ/ρ measurements.
* **REP102 float-equality** — ``==`` / ``!=`` against a float literal.
  Pseudo-key codes are exact integers; a float comparison anywhere near
  key handling indicates a lossy encode step leaking into index logic.
* **REP103 mutable-default** — a mutable object (list/dict/set display,
  comprehension, or a constructor call — including dotted forms like
  ``collections.defaultdict(list)`` and ``bytearray()``) as a default
  argument: shared across calls, the classic aliasing bug.
* **REP104 missing-annotations** — a public function in ``core/``
  without full parameter and return annotations.  The core API is the
  contract every later layer builds on; annotations are load-bearing
  documentation there.
* **REP105 wal-flush-bypass** — calling ``flush()`` directly on a WAL
  (or raw backend) object outside the storage layer.  A WAL flush is a
  durability point: index and bench code must reach it through
  ``PageStore.flush()`` / ``PageStore.group()`` / ``checkpoint()`` so
  group commit can defer it and the commit count stays truthful — a
  stray ``backend.flush()`` splits a batch into extra commits.
* **REP106 server-mutation-bypass** — calling an index mutation method
  (``insert`` / ``delete`` / ``insert_many`` / ``delete_many``) from
  service-layer code (``server/``) outside the write aggregator
  (``server/aggregator.py``).  Every served mutation must flow through
  the aggregator so concurrent writes coalesce into one group commit
  and the latch discipline holds; a session or handler mutating the
  index directly races the aggregator's batches and splits commits.
* **REP107 hot-path-json** — calling ``json.dumps`` / ``json.loads``
  (or their file-object forms) from service-layer code outside the two
  modules that own the textual fallback: ``server/protocol.py`` (the
  v1/v2 frame body and negotiation) and ``server/binpayload.py`` (the
  v3 JSON escape hatch).  The binary fast path exists so that no hot
  request pays a JSON round-trip; a stray ``json.*`` call in a session,
  aggregator, router or client quietly reintroduces the cost the v3
  negotiation removed.  ``server/shard.py`` is also exempt: its JSON is
  the on-disk topology file, written once per topology change — an
  administrative cold path, not wire traffic.
* **REP108 replica-mutation** — follower code (``server/replica.py``)
  calling an index mutator (``insert`` / ``delete`` / ``*_many``), a
  store mutator (``allocate`` / ``free`` / ``mark_dirty``), or
  ``.write()`` on a store/index-named receiver.  A read replica's state
  must change **only** by applying the primary's committed WAL batches
  through ``WALBackend.apply_replicated`` — any other mutation forks
  the follower's state from the primary's history, and the divergence
  survives promotion.  The mirror of REP106: that rule keeps served
  mutations inside the aggregator; this one keeps replicas read-only.

Run via ``repro lint`` (exit 1 on findings) or ``repro check``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["LintIssue", "lint_paths", "lint_source", "repo_source_root"]

#: Files allowed to touch a Backend directly: the accounting layer itself,
#: and the WAL wrapper that interposes between the store and the page file.
BACKEND_ALLOWED = ("storage/disk.py", "storage/wal.py")

#: Service-layer files allowed to issue index mutations: the write
#: aggregator, where concurrent mutations coalesce into group commits,
#: and the shard migrator, which mutates no in-process index — its
#: ``insert``/``delete`` calls are :class:`QueryClient` wire requests
#: that the *receiving* worker routes through its own aggregator.
SERVER_MUTATION_ALLOWED = ("server/aggregator.py", "server/migrate.py")

#: Service-layer files allowed to call ``json.*``: the protocol module
#: (v1/v2 frame bodies and version negotiation), the payload codec's
#: JSON escape hatch, and the shard manager (whose JSON is the on-disk
#: topology file — administrative cold path, not per-op wire traffic).
SERVER_JSON_ALLOWED = (
    "server/protocol.py",
    "server/binpayload.py",
    "server/shard.py",
)

_BACKEND_METHODS = frozenset({"load", "store", "discard"})
_JSON_CODEC_FUNCS = frozenset({"dumps", "loads", "dump", "load"})
_INDEX_MUTATORS = frozenset(
    {"insert", "delete", "insert_many", "delete_many"}
)
#: REP108: beyond the index mutators, the store-level mutation surface a
#: replica must never touch directly (``apply_replicated`` is the one
#: sanctioned channel — replicated state changes only by replaying the
#: primary's committed batches).
_REPLICA_STORE_MUTATORS = frozenset({"allocate", "free", "mark_dirty"})
#: Constructor names (terminal identifier, so dotted forms like
#: ``collections.defaultdict`` match) whose call as a default argument
#: shares one mutable object across every call.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray",
     "defaultdict", "OrderedDict", "Counter", "deque"}
)


@dataclass(frozen=True)
class LintIssue:
    """One finding of the static pass."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def repo_source_root() -> Path:
    """The ``src/repro`` package directory this module is installed in."""
    return Path(__file__).resolve().parent.parent


def _terminal_name(node: ast.expr) -> str | None:
    """The rightmost identifier of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, *, check_backend: bool,
                 check_annotations: bool,
                 check_server_mutation: bool = False,
                 check_hot_json: bool = False,
                 check_replica_mutation: bool = False) -> None:
        self.path = path
        self.check_backend = check_backend
        self.check_annotations = check_annotations
        self.check_server_mutation = check_server_mutation
        self.check_hot_json = check_hot_json
        self.check_replica_mutation = check_replica_mutation
        self.issues: list[LintIssue] = []
        # Nesting stack of 'class' / 'function' scopes: REP104 applies to
        # module-level functions and methods, not to nested helpers.
        self._scopes: list[str] = []
        # REP107 alias tracking: names bound to the json module
        # (``import json [as j]``) and to its codec functions
        # (``from json import dumps [as d]``).
        self._json_modules: set[str] = set()
        self._json_funcs: set[str] = set()

    # -- REP107 import tracking ------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "json":
                self._json_modules.add(alias.asname or "json")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "json":
            for alias in node.names:
                if alias.name in _JSON_CODEC_FUNCS:
                    self._json_funcs.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _issue(self, node: ast.AST, code: str, message: str) -> None:
        self.issues.append(
            LintIssue(self.path, node.lineno, node.col_offset, code, message)
        )

    # -- REP101 / REP105: storage-layer bypass ---------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self.check_backend and isinstance(node.func, ast.Attribute):
            receiver = _terminal_name(node.func.value)
            lowered = receiver.lower() if receiver is not None else ""
            if (
                node.func.attr in _BACKEND_METHODS
                and "backend" in lowered
            ):
                self._issue(
                    node,
                    "REP101",
                    f"direct Backend.{node.func.attr}() bypasses PageStore "
                    "I/O accounting — route the access through the store",
                )
            if node.func.attr == "flush" and (
                "wal" in lowered or "backend" in lowered
            ):
                self._issue(
                    node,
                    "REP105",
                    "direct WAL/backend flush() is a durability point that "
                    "bypasses group commit — use PageStore.flush(), "
                    "PageStore.group() or checkpoint()",
                )
        if (
            self.check_server_mutation
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _INDEX_MUTATORS
        ):
            self._issue(
                node,
                "REP106",
                f"server code calls .{node.func.attr}() directly — every "
                "served mutation must flow through the write aggregator "
                "(server/aggregator.py) so concurrent writes coalesce "
                "into one group commit",
            )
        if self.check_replica_mutation and isinstance(
            node.func, ast.Attribute
        ):
            receiver = _terminal_name(node.func.value)
            lowered = receiver.lower() if receiver is not None else ""
            method = node.func.attr
            store_write = method == "write" and (
                "store" in lowered or "index" in lowered
            )
            if (
                method in _INDEX_MUTATORS
                or method in _REPLICA_STORE_MUTATORS
                or store_write
            ):
                self._issue(
                    node,
                    "REP108",
                    f"replica code calls .{method}() — a read replica's "
                    "state changes only by replaying the primary's "
                    "committed batches through "
                    "WALBackend.apply_replicated(); any direct mutation "
                    "forks the follower from the primary's history",
                )
        if self.check_hot_json:
            hot_json = (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _JSON_CODEC_FUNCS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in self._json_modules
            ) or (
                isinstance(node.func, ast.Name)
                and node.func.id in self._json_funcs
            )
            if hot_json:
                name = _terminal_name(node.func)
                self._issue(
                    node,
                    "REP107",
                    f"json.{name}() on the service hot path — binary "
                    "payloads (server/binpayload.py) carry v3 traffic; "
                    "JSON belongs only in protocol.py's v1/v2 fallback "
                    "and negotiation",
                )
        self.generic_visit(node)

    # -- REP102: float equality ------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if isinstance(side, ast.Constant) and isinstance(
                    side.value, float
                ):
                    self._issue(
                        node,
                        "REP102",
                        f"equality comparison against float literal "
                        f"{side.value!r}; key codes are exact integers — "
                        "compare with a tolerance or restate in integers",
                    )
                    break
        self.generic_visit(node)

    # -- REP103 / REP104: function definitions ----------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scopes.append("class")
        self.generic_visit(node)
        self._scopes.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._check_annotations(node)
        self._scopes.append("function")
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _check_mutable_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set,
                 ast.ListComp, ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and _terminal_name(default.func) in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                self._issue(
                    default,
                    "REP103",
                    f"mutable default argument in {node.name}(); the "
                    "object is shared across calls — default to None",
                )

    def _check_annotations(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if not self.check_annotations or node.name.startswith("_"):
            return
        if "function" in self._scopes:
            return  # nested helper, not public API
        args = [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]
        if node.args.vararg is not None:
            args.append(node.args.vararg)
        if node.args.kwarg is not None:
            args.append(node.args.kwarg)
        missing = [
            a.arg
            for a in args
            if a.annotation is None and a.arg not in ("self", "cls")
        ]
        if node.returns is None:
            missing.append("return")
        if missing:
            self._issue(
                node,
                "REP104",
                f"public core function {node.name}() missing annotations "
                f"for: {', '.join(missing)}",
            )


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    check_backend: bool = True,
    check_annotations: bool = False,
    check_server_mutation: bool = False,
    check_hot_json: bool = False,
    check_replica_mutation: bool = False,
) -> list[LintIssue]:
    """Lint one module's source text; returns findings (possibly empty)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintIssue(
                path, exc.lineno or 0, exc.offset or 0,
                "REP100", f"syntax error: {exc.msg}",
            )
        ]
    linter = _Linter(
        path,
        check_backend=check_backend,
        check_annotations=check_annotations,
        check_server_mutation=check_server_mutation,
        check_hot_json=check_hot_json,
        check_replica_mutation=check_replica_mutation,
    )
    linter.visit(tree)
    return sorted(linter.issues, key=lambda i: (i.line, i.col, i.code))


def lint_paths(paths: Sequence[str | Path] | None = None) -> list[LintIssue]:
    """Lint files or directory trees (default: the installed ``repro``).

    Rule scoping: REP101 everywhere except the accounting layer itself;
    REP104 only under ``core/``; REP102/REP103 everywhere; REP106 under
    ``server/`` except the write aggregator; REP107 under ``server/``
    except the protocol/payload codecs and the topology file; REP108
    only in ``server/replica.py`` (the follower code path).
    """
    roots = [Path(p) for p in paths] if paths else [repo_source_root()]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    issues: list[LintIssue] = []
    for file in files:
        posix = file.as_posix()
        check_backend = not any(posix.endswith(a) for a in BACKEND_ALLOWED)
        check_annotations = "/core/" in posix or "\\core\\" in str(file)
        in_server = "/server/" in posix or "\\server\\" in str(file)
        check_server_mutation = in_server and not any(
            posix.endswith(a) for a in SERVER_MUTATION_ALLOWED
        )
        check_hot_json = in_server and not any(
            posix.endswith(a) for a in SERVER_JSON_ALLOWED
        )
        check_replica_mutation = posix.endswith("server/replica.py")
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            issues.append(
                LintIssue(str(file), 0, 0, "REP100", f"unreadable: {exc}")
            )
            continue
        issues.extend(
            lint_source(
                source,
                str(file),
                check_backend=check_backend,
                check_annotations=check_annotations,
                check_server_mutation=check_server_mutation,
                check_hot_json=check_hot_json,
                check_replica_mutation=check_replica_mutation,
            )
        )
    return issues


def format_issues(issues: Iterable[LintIssue]) -> str:
    """Render findings one per line, compiler style."""
    return "\n".join(str(issue) for issue in issues)
