"""Online shard split/merge with zero acked-write loss.

:class:`ShardMigrator` turns the static cluster of PR 7 into an elastic
one: it moves a contiguous z range between shard workers *under live
traffic*, using only machinery the cluster already trusts —

1. **Cut selection** — sample the hot shard's z values over the wire
   (``MIGRATE sample``) and cut at the sampled median, the MapReduce
   median-cut rule that also places boot-time boundaries; an
   unsampleable shard falls back to the uniform midpoint.
2. **Fork** — :meth:`~repro.server.shard.ShardManager.spawn_worker`
   forks a fresh worker with a fresh stable worker id and an empty WAL,
   outside the routed topology (in an executor: the ready-pipe wait
   must not block the router's event loop).
3. **Stream** — a committed-window *tap* is registered on the source
   (``MIGRATE begin``), the service-level analogue of tailing the
   committed WAL for the moving range; every acked write is published
   to the tap before its client sees the acknowledgement.  A paged
   snapshot copy (``fetch`` → ``insert_many``) moves the bulk, then
   bounded ``delta`` rounds drain the tail while writes keep landing.
4. **Cut over** — under the router's write fence (every in-flight
   scatter-gather settled, new requests queued) the final delta is
   drained, both sides are digest-verified (count + CRC over the
   z-sorted canonical items; mismatch or a tainted tap triggers a
   full-fetch reconcile), the manager commits the new partition with
   one atomic ``topology.json`` replace — *the* commit point — and the
   router installs the new links and epoch in the same fenced step.
   Stale clients are rejected with ``stale-topology`` on their next
   data request and retry transparently with the new epoch.
5. **Clean up** — outside the fence, the moved range is evicted from
   the source through its aggregator.  Until then the router's range
   merge filters every item through its shard's *owned* z range, so the
   orphans are invisible.

A failure anywhere before the commit point aborts cleanly: the target
worker is killed and its WAL removed, the tap released, no epoch is
bumped — the cluster is exactly as it was and the split can simply be
retried (:class:`~repro.errors.MigrationError`).  After the commit
point, the new topology is authoritative and only cleanup remains; a
crash there recovers by restart
(:meth:`~repro.server.shard.ShardManager.from_workdir`), with the
orphan filter masking any eviction that never ran.

The symmetric :meth:`ShardMigrator.merge` folds a cold shard into its
neighbour with the same copy/tail/fence/verify pipeline, then retires
the vacated worker.

**Deviation from WAL shipping.**  A "real" system would stream physical
WAL records; here the tap replays *logical* committed ops and the
fenced digest is the correctness anchor — simpler, codec-agnostic, and
byte-stable across both processes, at the cost of a second pass over
the moving range.  PR 3's replay rules still apply: delta application
is idempotent and order-preserving (``put`` over an existing key
re-applies; ``del`` of a missing key is a no-op), so tap/snapshot
overlap is harmless.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Callable, TYPE_CHECKING

from repro.errors import DuplicateKeyError, KeyNotFoundError, MigrationError
from repro.server.client import QueryClient

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.router import ShardRouter
    from repro.server.shard import ShardManager, ShardSpec

#: Records per snapshot-copy page (bounded so a page's JSON reply stays
#: far under the 1 MiB frame cap).
FETCH_PAGE = 512
#: Tap ops drained per delta round.
DELTA_LIMIT = 2048
#: Pre-fence delta rounds before fencing regardless of backlog — under
#: sustained writes the tail never reaches zero, it only has to get
#: small enough that the fenced drain is quick.
MAX_DELTA_ROUNDS = 12
#: A pre-fence round at or below this backlog is "settled": fence now.
SETTLE_THRESHOLD = 32


def _stop_process(proc: Any, timeout: float = 5.0) -> None:
    """SIGKILL + join (sync; run in an executor from async code)."""
    try:
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=timeout)
    except (OSError, ValueError):  # pragma: no cover - already-reaped proc
        pass


class ShardMigrator:
    """Drive online splits and merges against one router + manager."""

    def __init__(self, router: "ShardRouter", manager: "ShardManager") -> None:
        self._router = router
        self._manager = manager
        #: One migration at a time: splits and merges rewrite the same
        #: topology and the tap protocol assumes a single driver.
        self._lock = asyncio.Lock()
        self.in_progress = False
        self.completed = 0
        #: Fault-injection hook for the chaos suite: called with a phase
        #: label ("spawned", "copied", "fenced", "persisted",
        #: "installed"); a raising hook simulates a crash there.
        self.failpoint: Callable[[str], None] | None = None

    def _fail(self, label: str) -> None:
        if self.failpoint is not None:
            self.failpoint(label)

    # -- public verbs --------------------------------------------------------

    async def split(
        self, shard: int | None = None, cut: int | None = None
    ) -> dict[str, Any]:
        """Split one shard (the hottest, if unspecified) at ``cut`` (the
        sampled median, if unspecified).  Returns a summary payload."""
        async with self._lock:
            self.in_progress = True
            try:
                return await self._split(shard, cut)
            finally:
                self.in_progress = False

    async def merge(self, shard: int | None = None) -> dict[str, Any]:
        """Fold one shard (the coldest, if unspecified) into its
        neighbour and retire its worker."""
        async with self._lock:
            self.in_progress = True
            try:
                return await self._merge(shard)
            finally:
                self.in_progress = False

    # -- split ---------------------------------------------------------------

    async def _split(
        self, shard: int | None, cut: int | None
    ) -> dict[str, Any]:
        router, manager = self._router, self._manager
        loop = asyncio.get_running_loop()
        if shard is None:
            shard = await self._rank_by_keys(hottest=True)
        specs: list[ShardSpec] = router._specs
        if not 0 <= shard < len(specs):
            raise MigrationError(f"no shard {shard} to split")
        spec = specs[shard]
        if spec.z_low >= spec.z_high:
            raise MigrationError(
                f"shard {shard}'s z range [{spec.z_low}, {spec.z_high}] "
                f"is a single value; nothing to split"
            )
        src = await QueryClient.connect(spec.host, spec.port, negotiate=True)
        tgt: QueryClient | None = None
        tap: int | None = None
        worker: tuple[int, Any, tuple[str, int, int]] | None = None
        committed = False
        try:
            if cut is None:
                cut = await self._pick_cut(src, spec)
            if not spec.z_low < cut <= spec.z_high:
                raise MigrationError(
                    f"cut {cut} outside shard {shard}'s splittable range "
                    f"({spec.z_low}, {spec.z_high}]"
                )
            # Fork the target outside the topology.  The fork itself is
            # fast; the ready-pipe wait is the blocking part, so the
            # whole spawn runs in an executor.
            worker = await loop.run_in_executor(None, manager.spawn_worker)
            worker_id, proc, endpoint = worker
            self._fail("spawned")
            tgt = await QueryClient.connect(
                endpoint[0], endpoint[1], negotiate=True
            )
            # Tap before snapshot: anything committed from here on is
            # either in a later snapshot page, in the tap, or both —
            # idempotent delta application resolves the overlap.
            begin = await src.migrate(
                "begin", z_low=cut, z_high=spec.z_high
            )
            tap = int(begin["tap"])
            moved = await self._bulk_copy(src, tgt, cut, spec.z_high)
            self._fail("copied")
            tainted, rounds = await self._settle(src, tgt, tap)
            async with router.fence():
                self._fail("fenced")
                # The fence guarantees every router-acked write has
                # been published to the tap; drain it dry.
                tainted = await self._drain_tap(src, tgt, tap) or tainted
                await self._ensure_converged(
                    src, tgt, cut, spec.z_high, tainted
                )
                new_epoch = max(router.epoch, manager.epoch) + 1
                manager.apply_split(
                    shard,
                    cut,
                    worker_id=worker_id,
                    proc=proc,
                    endpoint=endpoint,
                    epoch=new_epoch,
                )
                # -- commit point: the topology replace is durable.  The
                # manager owns the target process now; the abort path
                # below must not touch it.
                committed = True
                worker = None
                self._fail("persisted")
                old_links = router.install_topology(
                    manager.specs, manager.boundaries, epoch=new_epoch
                )
                self._fail("installed")
            for link in old_links:
                await link.close()
            evicted = await self._cleanup_source(src, tap, cut, spec.z_high)
            tap = None
            self.completed += 1
            return {
                "action": "split",
                "shard": shard,
                "cut": cut,
                "epoch": new_epoch,
                "moved": moved,
                "evicted": evicted,
                "delta_rounds": rounds,
                "shards": len(manager.specs),
            }
        finally:
            if not committed:
                if tap is not None:
                    try:
                        await src.migrate("abort", tap=tap)
                    except Exception:
                        pass
                if worker is not None:
                    await loop.run_in_executor(
                        None, _stop_process, worker[1]
                    )
                    wal = manager.wal_path(worker[0])
                    if wal is not None and os.path.exists(wal):
                        os.unlink(wal)
            await src.close()
            if tgt is not None:
                await tgt.close()

    # -- merge ---------------------------------------------------------------

    async def _merge(self, shard: int | None) -> dict[str, Any]:
        router, manager = self._router, self._manager
        loop = asyncio.get_running_loop()
        specs: list[ShardSpec] = router._specs
        if len(specs) < 2:
            raise MigrationError("a single-shard cluster has nothing to merge")
        if shard is None:
            shard = await self._rank_by_keys(hottest=False)
        if not 0 <= shard < len(specs):
            raise MigrationError(f"no shard {shard} to merge")
        spec = specs[shard]
        absorber = specs[shard - 1 if shard > 0 else 1]
        src = await QueryClient.connect(spec.host, spec.port, negotiate=True)
        dst = await QueryClient.connect(
            absorber.host, absorber.port, negotiate=True
        )
        tap: int | None = None
        committed = False
        try:
            begin = await src.migrate(
                "begin", z_low=spec.z_low, z_high=spec.z_high
            )
            tap = int(begin["tap"])
            moved = await self._bulk_copy(src, dst, spec.z_low, spec.z_high)
            self._fail("copied")
            tainted, rounds = await self._settle(src, dst, tap)
            async with router.fence():
                self._fail("fenced")
                tainted = await self._drain_tap(src, dst, tap) or tainted
                await self._ensure_converged(
                    src, dst, spec.z_low, spec.z_high, tainted
                )
                new_epoch = max(router.epoch, manager.epoch) + 1
                proc, wal = manager.apply_merge(shard, epoch=new_epoch)
                committed = True
                self._fail("persisted")
                old_links = router.install_topology(
                    manager.specs, manager.boundaries, epoch=new_epoch
                )
                self._fail("installed")
            for link in old_links:
                await link.close()
            # Retire the vacated worker; its WAL is stale data now (the
            # absorber owns the range), so drop it for a clean restart.
            try:
                await src.migrate("end", tap=tap)
            except Exception:
                pass
            tap = None
            await src.close()
            await loop.run_in_executor(None, manager.retire, proc)
            if wal is not None and os.path.exists(wal):
                os.unlink(wal)
            self.completed += 1
            return {
                "action": "merge",
                "shard": shard,
                "absorber": absorber.shard,
                "epoch": new_epoch,
                "moved": moved,
                "delta_rounds": rounds,
                "shards": len(manager.specs),
            }
        finally:
            if not committed and tap is not None:
                try:
                    await src.migrate("abort", tap=tap)
                except Exception:
                    pass
            await src.close()
            await dst.close()

    # -- shared machinery ----------------------------------------------------

    async def _rank_by_keys(self, hottest: bool) -> int:
        """The busiest (or idlest) shard by per-shard STATS key count."""
        stats = await self._router._stats()
        best, best_keys = None, None
        for entry in stats["shards"]:
            if "error" in entry:
                continue
            keys = int(entry.get("keys", 0))
            if (
                best_keys is None
                or (hottest and keys > best_keys)
                or (not hottest and keys < best_keys)
            ):
                best, best_keys = int(entry["shard"]), keys
        if best is None:
            raise MigrationError(
                "no shard is reachable; cannot choose a migration source"
            )
        return best

    async def _pick_cut(self, src: QueryClient, spec: "ShardSpec") -> int:
        """Sampled median cut; uniform midpoint when unsampleable."""
        cut: int | None = None
        try:
            reply = await src.migrate(
                "sample", z_low=spec.z_low, z_high=spec.z_high, limit=1024
            )
            zs = reply.get("zs") or []
        except Exception:
            zs = []
        if len(zs) >= 8:
            cut = int(zs[len(zs) // 2])
        if cut is None or not spec.z_low < cut <= spec.z_high:
            cut = spec.z_low + (spec.z_high - spec.z_low + 1) // 2
        return cut

    async def _bulk_copy(
        self, src: QueryClient, dst: QueryClient, z_low: int, z_high: int
    ) -> int:
        """Paged snapshot copy of ``[z_low, z_high]`` from src to dst.

        The z cursor makes pages disjoint (a key's z never changes), so
        within one copy pass ``insert_many`` never collides; collisions
        with tap deltas are resolved by the deltas' tolerant apply.
        """
        moved = 0
        after = -1
        while True:
            page = await src.migrate(
                "fetch",
                z_low=z_low,
                z_high=z_high,
                after_z=after,
                limit=FETCH_PAGE,
            )
            items = page["items"]
            if items:
                await dst.insert_many(
                    [(key, value) for key, value in items]
                )
                moved += len(items)
            if page["done"]:
                return moved
            after = int(page["next_z"])

    async def _apply_delta(
        self, dst: QueryClient, ops: list[list[Any]]
    ) -> None:
        """Replay tap ops idempotently, in order: a duplicate ``put`` is
        re-applied (delete + insert), a missing ``del`` is a no-op —
        PR 3's idempotent-replay rules at the service level."""
        for op in ops:
            kind, key = op[0], op[1]
            value = op[2] if len(op) > 2 else None
            if kind == "put":
                try:
                    await dst.insert(key, value)
                except DuplicateKeyError:
                    await dst.delete(key)
                    await dst.insert(key, value)
            else:
                try:
                    await dst.delete(key)
                except KeyNotFoundError:
                    pass

    async def _settle(
        self, src: QueryClient, dst: QueryClient, tap: int
    ) -> tuple[bool, int]:
        """Pre-fence delta rounds: chase the tap until the backlog is
        small (or the round budget runs out — the fenced drain finishes
        whatever is left)."""
        tainted = False
        rounds = 0
        for _ in range(MAX_DELTA_ROUNDS):
            delta = await src.migrate("delta", tap=tap, limit=DELTA_LIMIT)
            tainted = tainted or bool(delta.get("tainted"))
            await self._apply_delta(dst, delta["ops"])
            rounds += 1
            if len(delta["ops"]) <= SETTLE_THRESHOLD and not delta["more"]:
                break
        return tainted, rounds

    async def _drain_tap(
        self, src: QueryClient, dst: QueryClient, tap: int
    ) -> bool:
        """Drain the tap to empty (only sound under the fence, when no
        new acked write can land in the moving range)."""
        tainted = False
        while True:
            delta = await src.migrate("delta", tap=tap, limit=DELTA_LIMIT)
            tainted = tainted or bool(delta.get("tainted"))
            await self._apply_delta(dst, delta["ops"])
            if not delta["ops"] and not delta["more"]:
                return tainted

    async def _verify(
        self, src: QueryClient, dst: QueryClient, z_low: int, z_high: int
    ) -> bool:
        src_digest, dst_digest = await asyncio.gather(
            src.migrate("digest", z_low=z_low, z_high=z_high),
            dst.migrate("digest", z_low=z_low, z_high=z_high),
        )
        return (
            src_digest["count"] == dst_digest["count"]
            and src_digest["crc"] == dst_digest["crc"]
        )

    async def _ensure_converged(
        self,
        src: QueryClient,
        dst: QueryClient,
        z_low: int,
        z_high: int,
        tainted: bool,
    ) -> None:
        """The correctness anchor: both sides must agree on the moving
        range before the commit point.  A digest mismatch (or a tainted
        tap) triggers one full-fetch reconcile, then a re-verify; still
        disagreeing aborts the migration pre-commit."""
        if not tainted and await self._verify(src, dst, z_low, z_high):
            return
        await self._reconcile(src, dst, z_low, z_high)
        if not await self._verify(src, dst, z_low, z_high):
            raise MigrationError(
                "source and target disagree on the moving range after "
                "reconciliation; aborting before the commit point"
            )

    async def _fetch_all(
        self, client: QueryClient, z_low: int, z_high: int
    ) -> dict[tuple[Any, ...], Any]:
        out: dict[tuple[Any, ...], Any] = {}
        after = -1
        while True:
            page = await client.migrate(
                "fetch",
                z_low=z_low,
                z_high=z_high,
                after_z=after,
                limit=FETCH_PAGE,
            )
            for key, value in page["items"]:
                out[tuple(key)] = value
            if page["done"]:
                return out
            after = int(page["next_z"])

    async def _reconcile(
        self, src: QueryClient, dst: QueryClient, z_low: int, z_high: int
    ) -> None:
        """Make dst's ``[z_low, z_high]`` contents equal src's, key by
        key (the slow path behind a tainted tap or digest mismatch)."""
        want, have = await asyncio.gather(
            self._fetch_all(src, z_low, z_high),
            self._fetch_all(dst, z_low, z_high),
        )
        for key, value in want.items():
            if key not in have or have[key] != value:
                await self._apply_delta(dst, [["put", list(key), value]])
        for key in have:
            if key not in want:
                await self._apply_delta(dst, [["del", list(key), None]])

    async def _cleanup_source(
        self, src: QueryClient, tap: int, z_low: int, z_high: int
    ) -> int | None:
        """Post-commit cleanup: release the tap, evict the orphaned
        range.  Best-effort — the topology is already live, and the
        router's ownership filter masks unevicted orphans; ``None``
        means the eviction did not run (retried by a later migration or
        invisible forever)."""
        try:
            await src.migrate("end", tap=tap)
            reply = await src.migrate("evict", z_low=z_low, z_high=z_high)
            return int(reply["evicted"])
        except Exception:
            return None
