"""WAL-shipping read replicas and hot failover.

The read path of ROADMAP item 3: every byte of read traffic no longer
has to land on the one primary per shard.  A :class:`ReplicaManager`
runs ``N`` read-only follower processes per shard worker.  Each
follower bootstraps over the wire — ``REPL hello`` attaches a
:class:`~repro.storage.wal.ReplicationTap` on the primary's WAL (which
also takes a compaction floor), ``REPL checkpoint`` pages the committed
images across, then a ``REPL tail`` loop drains committed batches — and
applies everything through
:meth:`~repro.storage.wal.WALBackend.apply_replicated` into its *own*
WAL-backed page file.  Two properties fall out of that choice:

* the follower's durable state is a standard WAL page file, so
  promotion reopens it through the stock
  :func:`~repro.storage.wal.recover_index` path — no special follower
  format, no bespoke recovery;
* every applied batch was published after the primary's COMMIT
  durability flush (capture==acked, the PR 8 contract), so a follower
  can never serve a write the primary might still roll back.

**Failover** (:func:`promote`) is kill-the-primary →
promote-most-caught-up-follower: the candidate with the highest applied
LSN is chosen (and its replica processes retired), the promoted page
file is caught up from the dead primary's *durable* WAL state — acked
means durably committed on the primary before the client future
resolved, so replaying the primary's committed images into the
follower's file guarantees zero acked-write loss even when every
follower lagged — and a replacement worker is forked over the caught-up
file.  :meth:`~repro.server.shard.ShardManager.apply_promote` commits
the replacement with an epoch bump; the router's fence + topology
install turns that bump into the fencing point that cuts off any
still-routing client of the old primary.

Everything here is read-side by construction: a follower rejects every
mutation opcode (``read-only``), applies replicated batches only
through the storage layer's replication entry point, and lint rule
REP108 statically refuses any direct index/store mutation reachable
from this module.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from multiprocessing.connection import Connection
from typing import Any

from repro.errors import ProtocolError, ShardDownError
from repro.server.admission import AdmissionController
from repro.server.client import QueryClient
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    MAX_FRAME,
    MUTATION_OPCODES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Opcode,
    field,
    key_field,
)
from repro.server.session import Session
from repro.server.shard import ShardManager

#: Checkpoint-transfer page size (images per REPL checkpoint request).
_BOOTSTRAP_CHUNK = 64

#: How long a replica-side read may wait for the tail-apply latch.
_READ_LATCH_TIMEOUT = 5.0


@dataclasses.dataclass(frozen=True)
class ReplicaConfig:
    """Everything one follower process needs, as picklable primitives."""

    shard: int
    replica: int
    dims: int
    widths: tuple[int, ...]
    page_capacity: int
    #: The follower's own WAL page file (fresh-bootstrapped on start).
    wal_path: str
    primary_host: str
    primary_port: int
    host: str
    #: Seconds between tail drains; also the replication lag floor.
    poll_interval: float
    #: Reads are rejected ``replica-stale`` past this many unapplied
    #: committed batches (``None`` = serve however stale).
    max_lag: int | None
    max_inflight: int
    session_pipeline: int
    read_workers: int


@dataclasses.dataclass(frozen=True)
class ReplicaSpec:
    """One live follower: identity and address."""

    shard: int
    replica: int
    host: str
    port: int
    pid: int

    def as_payload(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


class ReplicaServer:
    """A read-only follower serving one shard's replicated state.

    Duck-types the :class:`~repro.server.session.ServesSessions`
    surface, so it shares :class:`~repro.server.session.Session` with
    the primary — same framing, same admission, same error discipline.
    The write half is replaced by the tail-apply loop: batches are
    applied under the store latch's exclusive side, reads run under its
    shared side, and the index wrapper is rebuilt from each batch's
    metadata blob and swapped atomically.
    """

    def __init__(self, config: ReplicaConfig) -> None:
        self._config = config
        self.metrics = ServerMetrics()
        self.admission = AdmissionController(
            config.max_inflight, config.session_pipeline
        )
        self.draining = False
        self.drain_timeout = 5.0
        self.max_frame = MAX_FRAME
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, config.read_workers),
            thread_name_prefix="repro-replica",
        )
        self._read_mutex = threading.Lock()
        self._server: asyncio.base_events.Server | None = None
        self._sessions: set[Session] = set()
        self._client: QueryClient | None = None
        self._stream: int | None = None
        self._tail_task: asyncio.Task | None = None
        self._backend: Any = None
        self._store: Any = None
        self._file: Any = None
        #: Replication progress: LSN of the last applied batch, and the
        #: primary's LSN as of the last successful tail round-trip.
        self._applied_lsn = 0
        self._primary_lsn = 0
        self._primary_down = False
        self._batches_applied = 0
        self._rebootstraps = 0

    # -- ServesSessions surface ----------------------------------------------

    @property
    def epoch(self) -> int:
        return 0

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise ProtocolError("replica is not started", code="internal")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def applied_lsn(self) -> int:
        return self._applied_lsn

    def _session_done(self, session: Session) -> None:
        self._sessions.discard(session)
        self.metrics.connections_closed += 1

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = Session(self, reader, writer)
        self._sessions.add(session)
        self.metrics.connections_opened += 1
        try:
            await session.run()
        except (ConnectionError, OSError):
            pass

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "ReplicaServer":
        await self._bootstrap()
        self._server = await asyncio.start_server(
            self._on_connect, self._config.host, 0
        )
        self._tail_task = asyncio.get_running_loop().create_task(
            self._tail_loop(), name="repro-replica-tail"
        )
        return self

    async def shutdown(self) -> None:
        self.draining = True
        if self._tail_task is not None:
            self._tail_task.cancel()
            try:
                await self._tail_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self._sessions):
            await session.drain(timeout=self.drain_timeout)
            session.closed = True
            await session._finish()
        if self._client is not None:
            if self._stream is not None:
                try:
                    await asyncio.wait_for(
                        self._client.repl("bye", stream=self._stream), 2.0
                    )
                except Exception:
                    pass  # a dead primary cannot release the tap anyway
            await self._client.close()
        if self._store is not None:
            # PageStore.close() -> flush -> WALBackend.close(): the
            # follower's applied state is durably committed on exit, so
            # a promotion can reopen the file through recover_index.
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._executor, self._store.close)
        self._executor.shutdown(wait=True)

    # -- bootstrap ------------------------------------------------------------

    async def _bootstrap(self) -> None:
        """Fresh checkpoint transfer: wipe local state, pull every
        committed image, commit the primary's metadata blob."""
        from repro.storage import PageStore
        from repro.storage.wal import WALBackend

        for path in (self._config.wal_path, self._config.wal_path + ".wal"):
            if os.path.exists(path):
                os.unlink(path)
        loop = asyncio.get_running_loop()
        backend = await loop.run_in_executor(
            self._executor, lambda: WALBackend(self._config.wal_path)
        )
        client = await QueryClient.connect(
            self._config.primary_host,
            self._config.primary_port,
            negotiate=True,
        )
        if client.protocol_version < 3:
            raise ProtocolError(
                "replication needs protocol v3 (binary page images)",
                code="bad-version",
            )
        hello = await client.repl("hello")
        stream = field(hello, "stream", int)
        base_lsn = field(hello, "lsn", int)
        after = -1
        while True:
            chunk = await client.repl(
                "checkpoint",
                stream=stream,
                after=after,
                limit=_BOOTSTRAP_CHUNK,
            )
            pages = field(chunk, "pages", list)
            ops = [
                ("store", int(pid), bytes(image)) for pid, image in pages
            ]
            if ops:
                await loop.run_in_executor(
                    self._executor, backend.apply_replicated, ops, None
                )
            after = field(chunk, "next", int)
            if chunk.get("done"):
                break
        meta = hello.get("meta")
        if meta is not None:
            await loop.run_in_executor(
                self._executor,
                backend.apply_replicated,
                [],
                bytes(meta),
            )
        self._backend = backend
        # Pool-less on purpose: tail applies write through the backend,
        # so a frame cache on top would serve pre-apply content.
        self._store = PageStore(backend)
        self._file = self._build_file(backend.metadata)
        self._client = client
        self._stream = stream
        self._applied_lsn = base_lsn
        self._primary_lsn = base_lsn
        self._primary_down = False

    def _build_file(self, blob: bytes | None) -> Any:
        """The typed facade over the replicated state (fresh empty index
        when the primary has never committed)."""
        from repro.core.facade import MultiKeyFile
        from repro.encoding import KeyCodec, UIntEncoder
        from repro.storage.snapshot import restore_from_metadata
        from repro.storage.wal import decode_metadata_blob

        codec = KeyCodec([UIntEncoder(w) for w in self._config.widths])
        if blob is None:
            return MultiKeyFile(
                codec,
                page_capacity=self._config.page_capacity,
                store=self._store,
            )
        meta, directory = decode_metadata_blob(blob)
        index = restore_from_metadata(meta, self._store, directory)
        return MultiKeyFile.from_index(codec, index)

    # -- the tail loop ---------------------------------------------------------

    async def _tail_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self.draining:
            await asyncio.sleep(self._config.poll_interval)
            client = self._client
            if client is None:
                continue
            try:
                reply = await client.repl("tail", stream=self._stream)
            except asyncio.CancelledError:
                raise
            except Exception:
                # Primary unreachable: keep serving the applied state
                # (the router falls back / a promotion replaces us).
                self._primary_down = True
                continue
            self._primary_down = False
            if reply.get("overflowed"):
                # The tap dropped batches we never saw; the tail is
                # unrecoverable — rebuild from a fresh checkpoint.
                self._rebootstraps += 1
                try:
                    await client.repl("bye", stream=self._stream)
                except Exception:
                    pass
                await client.close()
                await self._rebootstrap()
                continue
            self._primary_lsn = field(reply, "lsn", int)
            batches = field(reply, "batches", list)
            if batches:
                await loop.run_in_executor(
                    self._executor, self._apply_batches, batches
                )

    async def _rebootstrap(self) -> None:
        store, self._store = self._store, None
        self._client = None
        self._stream = None
        if store is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._executor, store.close)
        await self._bootstrap()

    def _apply_batches(self, batches: list[Any]) -> None:
        """Apply one drained tail (executor thread).

        The store latch's exclusive side excludes every reader for the
        duration: the batch lands as one atomic step, and the index
        wrapper is rebuilt from the last batch's metadata blob before
        readers resume — a reader can never observe pages from batch
        ``n+1`` through an index header from batch ``n``.
        """
        store = self._store
        last_meta: bytes | None = None
        with store.latch.write():
            for lsn, ops, meta in batches:
                decoded = [
                    (
                        op,
                        int(pid),
                        None if image is None else bytes(image),
                    )
                    for op, pid, image in ops
                ]
                blob = None if meta is None else bytes(meta)
                self._backend.apply_replicated(decoded, blob)
                self._applied_lsn = int(lsn)
                self._batches_applied += 1
                if blob is not None:
                    last_meta = blob
            if last_meta is not None:
                self._file = self._build_file(last_meta)

    # -- dispatch --------------------------------------------------------------

    def _check_fresh(self) -> None:
        max_lag = self._config.max_lag
        if max_lag is None:
            return
        lag = self._primary_lsn - self._applied_lsn
        if lag > max_lag:
            raise ProtocolError(
                f"replica is {lag} batches behind the primary "
                f"(max_lag={max_lag})",
                code="replica-stale",
            )

    async def dispatch(
        self, opcode: Opcode, payload: Any, epoch: int = 0
    ) -> Any:
        if opcode in MUTATION_OPCODES:
            raise ProtocolError(
                "replica is read-only — route mutations to the primary",
                code="read-only",
            )
        if opcode == Opcode.PING:
            return {
                "pong": True,
                "version": PROTOCOL_VERSION,
                "versions": list(SUPPORTED_VERSIONS),
                "max_frame": self.max_frame,
                "role": "replica",
            }
        if opcode == Opcode.SEARCH:
            self._check_fresh()
            key = key_field(payload)
            return await self._run_read(
                lambda: {"value": self._file.search(key)}
            )
        if opcode == Opcode.SEARCH_MANY:
            self._check_fresh()
            keys = field(payload, "keys", list)
            for key in keys:
                if not isinstance(key, list):
                    raise ProtocolError(
                        "keys must be [key, ...]", code="bad-payload"
                    )
            return await self._run_read(
                lambda: {"values": self._file.search_many(keys)}
            )
        if opcode == Opcode.RANGE:
            self._check_fresh()
            return await self._range(payload)
        if opcode == Opcode.STATS:
            return await self._run_read(self._stats, latched=False)
        if opcode == Opcode.TOPOLOGY:
            return {"role": "replica", "epoch": 0, "shards": []}
        raise ProtocolError(
            f"opcode {opcode} is not served by a replica", code="bad-opcode"
        )

    async def _range(self, payload: Any) -> Any:
        lows = field(payload, "lows", list)
        highs = field(payload, "highs", list)
        parallelism = None
        if isinstance(payload, dict) and payload.get("parallelism") is not None:
            parallelism = payload["parallelism"]
            if not isinstance(parallelism, int) or parallelism < 1:
                raise ProtocolError(
                    "parallelism must be a positive integer",
                    code="bad-payload",
                )

        def scan() -> Any:
            records = [
                [list(key), value]
                for key, value in self._file.range_search(
                    lows, highs, parallelism=parallelism
                )
            ]
            return {"items": records, "count": len(records)}

        # A fanned scan's workers take the latch's shared side per page
        # themselves (read_shared); holding it here too would deadlock
        # the non-reentrant latch — same split as the primary's _range.
        return await self._run_read(
            scan, latched=not (parallelism and parallelism > 1)
        )

    async def _run_read(self, fn: Any, latched: bool = True) -> Any:
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            self._executor, self._latched_read, fn, latched
        )
        self.metrics.reads_served += 1
        return result

    def _latched_read(self, fn: Any, latched: bool) -> Any:
        if not latched:
            return fn()
        with self._store.latch.read(timeout=_READ_LATCH_TIMEOUT):
            with self._read_mutex:
                return fn()

    def _stats(self) -> dict[str, Any]:
        file = self._file
        index = file.index
        return {
            "role": "replica",
            "scheme": type(index).__name__,
            "keys": len(index),
            "replica": {
                "shard": self._config.shard,
                "replica": self._config.replica,
                "applied_lsn": self._applied_lsn,
                "primary_lsn": self._primary_lsn,
                "lag": max(0, self._primary_lsn - self._applied_lsn),
                "primary_down": self._primary_down,
                "batches_applied": self._batches_applied,
                "rebootstraps": self._rebootstraps,
            },
            "server": self.metrics.snapshot(),
            "process": {
                "pid": os.getpid(),
                "cpu_seconds": time.process_time(),
            },
        }


# -- the follower process ------------------------------------------------------


async def _serve_replica(config: ReplicaConfig, conn: Connection) -> None:
    server = ReplicaServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    host, port = server.address
    conn.send(("ready", host, port))
    conn.close()
    await stop.wait()
    await server.shutdown()


def _replica_main(config: ReplicaConfig, conn: Connection) -> None:
    """Entry point of one follower process."""
    try:
        asyncio.run(_serve_replica(config, conn))
    except Exception as exc:  # pragma: no cover - startup failures only
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            conn.close()
        except (OSError, ValueError):
            pass
        raise SystemExit(1)


# -- the manager ---------------------------------------------------------------


class ReplicaManager:
    """Run ``N`` read-only followers per shard worker.

    Synchronous (it forks) — same discipline as
    :class:`~repro.server.shard.ShardManager`, which it piggybacks on
    for workdir layout, start method and topology.  Follower files are
    ``replica-{worker:03d}-{i}.pages`` beside the primaries' WALs;
    a fresh bootstrap wipes them, so stale replica files are never
    trusted across restarts.
    """

    def __init__(
        self,
        manager: ShardManager,
        replicas_per_shard: int = 1,
        *,
        poll_interval: float = 0.02,
        max_lag: int | None = 64,
        read_workers: int = 2,
        max_inflight: int = 256,
        session_pipeline: int = 256,
        ready_timeout: float = 30.0,
    ) -> None:
        if replicas_per_shard < 0:
            raise ValueError("replicas_per_shard must be >= 0")
        if manager.workdir is None:
            raise ValueError(
                "replication needs a durable workdir (WAL shipping has "
                "nothing to ship from a memory-backed cluster)"
            )
        self._manager = manager
        self.replicas_per_shard = replicas_per_shard
        self._poll_interval = poll_interval
        self._max_lag = max_lag
        self._read_workers = read_workers
        self._max_inflight = max_inflight
        self._session_pipeline = session_pipeline
        self._ready_timeout = ready_timeout
        #: shard position -> list of (spec, process).
        self._live: dict[int, list[tuple[ReplicaSpec, Any]]] = {}

    def replica_path(self, worker_id: int, replica: int) -> str:
        """The follower's own page file (beside the primaries' WALs)."""
        assert self._manager.workdir is not None
        return str(
            self._manager.workdir
            / f"replica-{worker_id:03d}-{replica}.pages"
        )

    def specs_for(self, shard: int) -> list[ReplicaSpec]:
        return [spec for spec, _ in self._live.get(shard, [])]

    def all_specs(self) -> dict[int, list[ReplicaSpec]]:
        return {shard: self.specs_for(shard) for shard in self._live}

    def start(self) -> dict[int, list[ReplicaSpec]]:
        """Boot every shard's followers (each bootstraps a checkpoint
        transfer from its primary before reporting ready)."""
        for spec in self._manager.specs:
            self.start_for(spec.shard)
        return self.all_specs()

    def start_for(self, shard: int) -> list[ReplicaSpec]:
        """(Re)boot the followers of one shard against its *current*
        primary — also the re-point step after a promotion."""
        import multiprocessing

        self.stop_for(shard)
        primary = self._manager.specs[shard]
        worker_id = self._manager.worker_ids[shard]
        ctx = multiprocessing.get_context(self._manager._start_method)
        live: list[tuple[ReplicaSpec, Any]] = []
        pending: list[tuple[int, Any, Any]] = []
        for i in range(self.replicas_per_shard):
            config = ReplicaConfig(
                shard=shard,
                replica=i,
                dims=self._manager.dims,
                widths=self._manager.widths,
                page_capacity=self._manager.page_capacity,
                wal_path=self.replica_path(worker_id, i),
                primary_host=primary.host,
                primary_port=primary.port,
                host=primary.host,
                poll_interval=self._poll_interval,
                max_lag=self._max_lag,
                max_inflight=self._max_inflight,
                session_pipeline=self._session_pipeline,
                read_workers=self._read_workers,
            )
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_replica_main,
                args=(config, child_conn),
                name=f"repro-replica-s{shard}r{i}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            pending.append((i, proc, parent_conn))
        try:
            for i, proc, conn in pending:
                if not conn.poll(self._ready_timeout):
                    raise ShardDownError(
                        f"replica {shard}/{i} did not report ready within "
                        f"{self._ready_timeout:.0f}s",
                        shard=shard,
                    )
                message = conn.recv()
                if message[0] != "ready":
                    raise ShardDownError(
                        f"replica {shard}/{i} failed to start: {message[1]}",
                        shard=shard,
                    )
                live.append(
                    (
                        ReplicaSpec(
                            shard=shard,
                            replica=i,
                            host=message[1],
                            port=message[2],
                            pid=proc.pid or 0,
                        ),
                        proc,
                    )
                )
        except BaseException:
            for _, proc, _ in pending:
                if proc.is_alive():
                    proc.kill()
                proc.join(timeout=5.0)
            raise
        finally:
            for _, _, conn in pending:
                conn.close()
        self._live[shard] = live
        return self.specs_for(shard)

    def stop_for(self, shard: int, timeout: float = 10.0) -> None:
        """Gracefully retire one shard's followers (SIGTERM: each closes
        its WAL cleanly, so its file stays recover-able)."""
        for _, proc in self._live.pop(shard, []):
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - stuck follower
                proc.kill()
                proc.join(timeout=5.0)

    def kill(self, shard: int, replica: int) -> None:
        """SIGKILL one follower — the crash path."""
        entries = self._live.get(shard, [])
        for idx, (spec, proc) in enumerate(entries):
            if spec.replica == replica:
                if proc.is_alive():
                    proc.kill()
                proc.join(timeout=5.0)
                entries.pop(idx)
                return
        raise ValueError(f"no live replica {replica} for shard {shard}")

    def stop(self, timeout: float = 10.0) -> None:
        for shard in list(self._live):
            self.stop_for(shard, timeout=timeout)

    def __enter__(self) -> "ReplicaManager":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


# -- failover ------------------------------------------------------------------

#: The phases :func:`promote` passes through, in order; chaos tests
#: inject a failure after each one and assert a retried promotion still
#: converges with zero acked-write loss.
PROMOTION_PHASES = (
    "killed",
    "chosen",
    "stopped",
    "caught-up",
    "spawned",
    "installed",
)


def _replica_applied_lsn(spec: ReplicaSpec, timeout: float = 5.0) -> int:
    """One follower's applied LSN (``-1`` if unreachable) — the
    promotion candidate score."""

    async def _fetch() -> int:
        client = await QueryClient.connect(
            spec.host, spec.port, negotiate=True
        )
        try:
            stats = await client.stats()
            replica = field(stats, "replica", dict)
            return field(replica, "applied_lsn", int)
        finally:
            await client.close()

    try:
        return asyncio.run(asyncio.wait_for(_fetch(), timeout))
    except Exception:
        return -1


def catch_up_follower(
    primary_path: str, follower_path: str | None, target_path: str
) -> int:
    """Build the promoted worker's page file at ``target_path``.

    Starts from the chosen follower's file (moved into place when one
    exists — the most-caught-up state that needs the least work), then
    replays the dead primary's *durable* committed state over it:
    opening the primary's WAL runs stock recovery (committed tail
    replayed, uncommitted tail discarded), and every committed image
    plus the final metadata blob is applied through
    :meth:`~repro.storage.wal.WALBackend.apply_replicated`.  Full
    images are idempotent, so a crash-and-retry of this step converges.

    Zero acked-write loss follows from the PR 8 contract: a write was
    acked only after its COMMIT record's durability flush on the
    primary, so the primary's recovered state contains every acked
    write — even ones no follower ever saw.  Returns the number of
    committed pages carried over.
    """
    from repro.storage.wal import WALBackend

    for suffix in ("", ".wal"):
        path = target_path + suffix
        if os.path.exists(path):
            os.unlink(path)
    if follower_path is not None:
        for suffix in ("", ".wal"):
            src = follower_path + suffix
            if os.path.exists(src):
                os.replace(src, target_path + suffix)
    primary = WALBackend(primary_path)
    try:
        ops = [
            ("store", pid, image)
            for pid, image in primary.committed_pages()
        ]
        live = {pid for _, pid, _ in ops}
        target = WALBackend(target_path)
        try:
            stale = [
                ("discard", pid, None)
                for pid in target.page_ids()
                if pid not in live
            ]
            target.apply_replicated(ops + stale, primary.metadata)
        finally:
            target.close()
    finally:
        primary.close()
    return len(ops)


def promote(
    manager: ShardManager,
    replicas: ReplicaManager | None,
    shard: int,
    *,
    failpoint: str | None = None,
    restart_replicas: bool = True,
) -> dict[str, Any]:
    """Kill-the-primary → promote-most-caught-up-follower.

    Synchronous and blocking (it forks and waits on ready pipes) — call
    from sync code or an executor thread, never on an event loop.  The
    commit point is :meth:`ShardManager.apply_promote`'s atomic
    topology persist; every earlier phase is retryable (stale files are
    wiped, images are idempotent), which the chaos suite exercises by
    injecting a failure after each :data:`PROMOTION_PHASES` entry.
    Callers holding a router must follow up with ``fence()`` +
    ``install_topology()`` at the returned epoch.
    """
    if failpoint is not None and failpoint not in PROMOTION_PHASES:
        raise ValueError(
            f"unknown promotion failpoint {failpoint!r}; "
            f"phases are {PROMOTION_PHASES}"
        )

    def fail(phase: str) -> None:
        if failpoint == phase:
            raise ShardDownError(
                f"injected promotion failure after {phase!r}", shard=shard
            )

    old_worker = manager.worker_ids[shard]
    primary_path = manager.wal_path(old_worker)
    if primary_path is None:
        raise ValueError(
            "promotion needs a durable workdir: the dead primary's WAL "
            "is the zero-loss catch-up source"
        )
    if manager.is_alive(shard):
        manager.kill(shard)
    fail("killed")
    chosen: ReplicaSpec | None = None
    chosen_lsn = -1
    if replicas is not None:
        for spec in replicas.specs_for(shard):
            lsn = _replica_applied_lsn(spec)
            if lsn > chosen_lsn:
                chosen_lsn, chosen = lsn, spec
    fail("chosen")
    if replicas is not None:
        replicas.stop_for(shard)
    fail("stopped")
    new_worker = manager.allocate_worker_id()
    target_path = manager.wal_path(new_worker)
    assert target_path is not None
    follower_path = (
        replicas.replica_path(old_worker, chosen.replica)
        if replicas is not None and chosen is not None
        else None
    )
    pages = catch_up_follower(primary_path, follower_path, target_path)
    fail("caught-up")
    worker_id, proc, endpoint = manager.spawn_worker(new_worker, fresh=False)
    fail("spawned")
    try:
        manager.apply_promote(
            shard, worker_id=worker_id, proc=proc, endpoint=endpoint
        )
    except BaseException:
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)
        raise
    fail("installed")
    if replicas is not None and restart_replicas:
        replicas.start_for(shard)
    return {
        "shard": shard,
        "old_worker": old_worker,
        "worker": worker_id,
        "chosen": None if chosen is None else chosen.replica,
        "chosen_lsn": chosen_lsn,
        "pages": pages,
        "epoch": manager.epoch,
    }
