"""The scatter-gather router fronting a shard cluster.

:class:`ShardRouter` is the client-facing half of the sharding layer
(:mod:`repro.server.shard` is the process half).  It accepts the same
wire protocol as a :class:`~repro.server.server.QueryServer` — the
per-connection :class:`~repro.server.session.Session` machinery is
reused verbatim — but instead of owning an index it owns one
long-lived pipelined :class:`~repro.server.client.QueryClient` per
shard worker and dispatches by z value:

* **point ops** (``INSERT``/``SEARCH``/``DELETE``) interleave the key
  and forward to the one shard whose z range contains it;
* **batch ops** (``*_MANY``) split the batch by shard, fan the
  sub-batches out concurrently, and re-assemble the replies preserving
  the input order; a failing sub-batch re-raises the first error in
  shard order after every sub-batch settles;
* **range queries** scatter to exactly the shards whose z ranges
  intersect ``[z(lows), z(highs)]`` (the corner property of the
  interleaving: every point of the box lies between the corners'
  z values) and gather through the order-preserving merge: each
  shard's items are sorted by z, and because shards own contiguous
  disjoint z ranges, concatenation in shard order *is* the globally
  z-ascending merge — the network analogue of the parallel scanner's
  ordered reduction.

The router speaks protocol v2 with its clients.  Its topology epoch
stamps every reply header; a data request asserting a stale epoch is
rejected with ``stale-topology`` (the rejection itself carries the new
epoch, so clients retry transparently).  A dead worker surfaces as a
structured ``shard-down`` error after one bounded reconnect attempt —
never a hang — while the remaining shards keep serving.

Upstream failures do not silently retry mutations: a connection that
dies mid-request may or may not have applied the write, and replaying
it could double-apply.  The link is marked dead, the caller gets
``shard-down``, and the next request attempts one fresh connection.
**Idempotent reads** (``SEARCH``/``SEARCH_MANY``/``RANGE``/``STATS``)
are the exception: a read that dies mid-request is retried exactly once
on an alternate link for the same shard (a replica if the primary died,
the primary if a replica died) — re-running a read cannot double-apply
anything, so the retry is free and masks a single link death.

With a :class:`~repro.server.replica.ReplicaManager` attached, data
reads prefer the shard's replicas (round-robin) and fall back to the
primary when a replica declines as ``replica-stale`` (lag-aware
routing: the replica itself knows its applied-vs-primary LSN gap) or is
down; ``repro rebalance promote`` and the auto-failover loop replace a
dead primary with its most-caught-up follower through
:func:`~repro.server.replica.promote`, re-fencing the topology at the
bumped epoch.
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from repro.bits import interleave
from repro.encoding import KeyCodec
from repro.errors import (
    MigrationError,
    ProtocolError,
    ShardDownError,
    StaleTopologyError,
)
from repro.server import protocol
from repro.server.admission import AdmissionController, ReadWriteGate
from repro.server.client import QueryClient, RemoteError
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    MAX_FRAME,
    MUTATION_OPCODES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Opcode,
    field,
    key_field,
)
from repro.server.session import Session
from repro.server.shard import ShardManager, ShardSpec, shard_for


class RouterMetrics(ServerMetrics):
    """Server counters plus the routing-specific ones."""

    def __init__(self) -> None:
        super().__init__()
        self.point_ops_routed = 0
        self.batches_split = 0
        self.scatter_queries = 0
        self.scatter_fanout = 0
        self.shard_errors = 0
        self.reconnects = 0
        self.stale_rejections = 0
        #: Data reads answered by a replica instead of the primary.
        self.replica_reads = 0
        #: Reads a replica declined (stale / read-only) that fell back.
        self.replica_fallbacks = 0
        #: Idempotent reads retried once on an alternate link after a
        #: mid-request connection death.
        self.read_retries = 0
        #: Completed primary failovers (manual or automatic).
        self.promotions = 0

    def snapshot(self) -> dict[str, Any]:
        snap = super().snapshot()
        snap.update(
            {
                "point_ops_routed": self.point_ops_routed,
                "batches_split": self.batches_split,
                "scatter_queries": self.scatter_queries,
                "scatter_fanout": self.scatter_fanout,
                "shard_errors": self.shard_errors,
                "reconnects": self.reconnects,
                "stale_rejections": self.stale_rejections,
                "replica_reads": self.replica_reads,
                "replica_fallbacks": self.replica_fallbacks,
                "read_retries": self.read_retries,
                "promotions": self.promotions,
            }
        )
        return snap


class _ShardLink:
    """One long-lived upstream connection to a shard worker."""

    def __init__(
        self,
        spec: ShardSpec,
        metrics: RouterMetrics,
        connect_timeout: float,
    ) -> None:
        self.spec = spec
        self._metrics = metrics
        self._connect_timeout = connect_timeout
        self._client: QueryClient | None = None
        self._connect_lock = asyncio.Lock()

    async def connect(self) -> None:
        async with self._connect_lock:
            if self._client is not None and not self._client._closed:
                return
            reconnecting = self._client is not None
            try:
                # Negotiated links: a worker that speaks v3 serves the
                # router's forwarded traffic (and the migration copy
                # stream riding these links) in binary payloads.
                self._client = await asyncio.wait_for(
                    QueryClient.connect(
                        self.spec.host, self.spec.port, negotiate=True
                    ),
                    timeout=self._connect_timeout,
                )
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                self._client = None
                self._metrics.shard_errors += 1
                raise ShardDownError(
                    f"shard {self.spec.shard} at "
                    f"{self.spec.host}:{self.spec.port} is unreachable: "
                    f"{exc or type(exc).__name__}",
                    shard=self.spec.shard,
                ) from None
            if reconnecting:
                self._metrics.reconnects += 1

    async def request(self, opcode: Opcode, payload: Any = None) -> Any:
        """Forward one request; ``shard-down`` instead of a hang or a
        silent mutation replay."""
        if self._client is None or self._client._closed:
            await self.connect()
        client = self._client
        assert client is not None
        try:
            return await client.request(opcode, payload)
        except (ConnectionError, OSError) as exc:
            self._metrics.shard_errors += 1
            raise ShardDownError(
                f"shard {self.spec.shard} connection failed mid-request: "
                f"{exc}",
                shard=self.spec.shard,
            ) from None

    async def close(self) -> None:
        if self._client is not None:
            await self._client.close()
            self._client = None


class ShardRouter:
    """Serve the wire protocol by scatter-gathering over shard workers.

    Duck-types the :class:`~repro.server.session.ServesSessions` surface
    so :class:`~repro.server.session.Session` drives it exactly as it
    drives a :class:`~repro.server.server.QueryServer`.
    """

    def __init__(
        self,
        manager: ShardManager | None = None,
        *,
        specs: Sequence[ShardSpec] | None = None,
        boundaries: Sequence[int] | None = None,
        codec: KeyCodec | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        session_pipeline: int = 16,
        drain_timeout: float = 10.0,
        connect_timeout: float = 5.0,
        max_frame: int = MAX_FRAME,
        auto_split_keys: int | None = None,
        max_shards: int = 8,
        auto_split_interval: float = 1.0,
        replicas: Any = None,
        auto_failover: bool = False,
        failover_interval: float = 0.25,
    ) -> None:
        if manager is not None:
            specs = manager.specs if specs is None else specs
            boundaries = (
                manager.boundaries if boundaries is None else boundaries
            )
            if codec is None:
                from repro.encoding import UIntEncoder

                codec = KeyCodec([UIntEncoder(w) for w in manager.widths])
        if specs is None or boundaries is None or codec is None:
            raise ValueError(
                "a router needs a manager, or specs + boundaries + codec"
            )
        if not specs:
            raise ValueError("a router needs at least one shard")
        self._specs = list(specs)
        self._boundaries = list(boundaries)
        self._codec = codec
        self._widths = codec.widths
        self._host = host
        self._port = port
        self.metrics = RouterMetrics()
        self.admission = AdmissionController(max_inflight, session_pipeline)
        self.drain_timeout = drain_timeout
        #: Frame-size cap advertised in PING and enforced per frame.
        self.max_frame = max_frame
        self._connect_timeout = connect_timeout
        self._links = [
            _ShardLink(spec, self.metrics, connect_timeout)
            for spec in self._specs
        ]
        self._server: asyncio.base_events.Server | None = None
        self._sessions: set[Session] = set()
        self._epoch = manager.epoch if manager is not None else 1
        self.draining = False
        self._shut_down = False
        self._manager = manager
        #: The topology quiesce gate: every data request holds the read
        #: side for its whole scatter-gather, a cutover holds the write
        #: side.  Swapping the link table therefore never interleaves
        #: with an in-flight fan-out — a range merge is always
        #: single-epoch (writer preference keeps cutovers from starving).
        self._topo_gate = ReadWriteGate()
        self._migrator: Any = None
        self._auto_split_keys = auto_split_keys
        self._max_shards = max_shards
        self._auto_split_interval = auto_split_interval
        self._auto_split_task: asyncio.Task | None = None
        #: The :class:`~repro.server.replica.ReplicaManager` (if reads
        #: are replicated), its per-shard link tables, and the
        #: round-robin cursors spreading reads across each shard's pool.
        self._replicas = replicas
        self._replica_links: dict[int, list[_ShardLink]] = {}
        self._replica_rr: dict[int, int] = {}
        if replicas is not None:
            self.install_replicas(replicas.all_specs())
        self._auto_failover = auto_failover
        self._failover_interval = failover_interval
        self._failover_task: asyncio.Task | None = None
        #: Serializes promotions (auto loop vs. operator verb).
        self._promote_lock = asyncio.Lock()

    # -- ServesSessions surface ----------------------------------------------

    @property
    def epoch(self) -> int:
        """Current topology epoch; bumped by :meth:`set_topology`."""
        return self._epoch

    def _session_done(self, session: Session) -> None:
        self._sessions.discard(session)
        self.metrics.connections_closed += 1

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise ProtocolError("router is not started", code="internal")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def migrator(self) -> Any:
        """The lazily-built :class:`~repro.server.migrate.ShardMigrator`
        (requires a manager: migration forks workers and rewrites the
        persisted topology)."""
        if self._migrator is None:
            if self._manager is None:
                raise MigrationError(
                    "this router has no shard manager; online "
                    "split/merge needs one"
                )
            from repro.server.migrate import ShardMigrator

            self._migrator = ShardMigrator(self, self._manager)
        return self._migrator

    async def start(self) -> "ShardRouter":
        for link in self._links:
            await link.connect()
        self._server = await asyncio.start_server(
            self._on_connect, self._host, self._port
        )
        if self._auto_split_keys is not None and self._manager is not None:
            self._auto_split_task = asyncio.get_running_loop().create_task(
                self._auto_split_loop(), name="repro-auto-split"
            )
        if self._auto_failover and self._manager is not None:
            self._failover_task = asyncio.get_running_loop().create_task(
                self._failover_loop(), name="repro-auto-failover"
            )
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def __aenter__(self) -> "ShardRouter":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.shutdown()

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = Session(self, reader, writer)
        self._sessions.add(session)
        self.metrics.connections_opened += 1
        try:
            await session.run()
        except (ConnectionError, OSError):
            # A peer that dies during teardown can surface a reset from
            # transport internals after the session's own handlers ran;
            # a dead connection is this callback's normal end state.
            pass

    async def shutdown(self) -> None:
        """Stop accepting, drain sessions, close the upstream links.
        The workers themselves are the manager's to stop."""
        if self._shut_down:
            return
        self._shut_down = True
        self.draining = True
        for task in (self._auto_split_task, self._failover_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        self._auto_split_task = None
        self._failover_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self._sessions):
            await session.drain(timeout=self.drain_timeout)
        for session in list(self._sessions):
            session.closed = True
            await session._finish()
        for link in self._links:
            await link.close()
        for links in self._replica_links.values():
            for link in links:
                await link.close()

    def fence(self) -> Any:
        """The topology write fence, as an async context manager.

        Entering waits for every in-flight data request to finish and
        blocks new ones (they queue on the gate's read side); inside,
        the holder may mutate routing state and :meth:`install_topology`
        atomically.  The migrator holds this around its final delta +
        digest + commit step, so the cutover happens against a quiesced
        router.
        """
        return self._topo_gate.write_locked()

    def install_topology(
        self,
        specs: Sequence[ShardSpec],
        boundaries: Sequence[int],
        epoch: int | None = None,
    ) -> list[_ShardLink]:
        """Swap the routing tables and bump the epoch — synchronously,
        so a fence holder installs with no awaits in between.  Returns
        the superseded links; the caller closes them once the fence is
        released (closing awaits, and nothing routes through them any
        more)."""
        old_links = self._links
        self._specs = list(specs)
        self._boundaries = list(boundaries)
        self._links = [
            _ShardLink(spec, self.metrics, self._connect_timeout)
            for spec in self._specs
        ]
        self._epoch = (
            self._epoch + 1 if epoch is None else max(epoch, self._epoch + 1)
        )
        return old_links

    def install_replicas(
        self, specs_by_shard: dict[int, Sequence[Any]]
    ) -> list[_ShardLink]:
        """Swap the replica link tables (whole-table, like
        :meth:`install_topology`; call under the fence when the router
        is live).  Returns the superseded links for the caller to
        close."""
        old = [
            link
            for links in self._replica_links.values()
            for link in links
        ]
        self._replica_links = {
            shard: [
                _ShardLink(spec, self.metrics, self._connect_timeout)
                for spec in specs
            ]
            for shard, specs in specs_by_shard.items()
            if specs
        }
        self._replica_rr = {}
        return old

    async def set_topology(
        self,
        specs: Sequence[ShardSpec],
        boundaries: Sequence[int],
    ) -> int:
        """Install a new shard layout and bump the epoch.

        Quiesces first: the write fence waits for every in-flight
        scatter-gather to settle before the link table is swapped, so no
        fan-out ever merges results from two epochs.  Every subsequent
        data request asserting the old epoch is rejected with
        ``stale-topology`` and retried by the client with the new one.
        """
        async with self.fence():
            old_links = self.install_topology(specs, boundaries)
        for link in old_links:
            await link.close()
        return self._epoch

    async def _auto_split_loop(self) -> None:
        """Split the hottest shard whenever it outgrows the threshold
        (``--auto-split-keys``), up to ``max_shards`` — the serve-time
        elasticity knob.  Failures are counted in metrics and retried on
        the next tick; a failed split leaves the cluster unchanged."""
        while True:
            await asyncio.sleep(self._auto_split_interval)
            if self.draining or len(self._specs) >= self._max_shards:
                continue
            try:
                async with self._topo_gate.read_locked():
                    stats = await self._stats()
                hottest, keys = None, -1
                for entry in stats["shards"]:
                    if "error" in entry:
                        continue
                    if int(entry.get("keys", 0)) > keys:
                        hottest, keys = int(entry["shard"]), int(entry["keys"])
                if hottest is None or keys < (self._auto_split_keys or 0):
                    continue
                await self.migrator.split(shard=hottest)
            except asyncio.CancelledError:
                raise
            except Exception:
                self.metrics.shard_errors += 1

    # -- routing -------------------------------------------------------------

    def _z(self, key: Sequence[Any]) -> int:
        codes = self._codec.encode(key)
        return interleave(codes, self._widths)

    def _link_for_key(self, key: Sequence[Any]) -> _ShardLink:
        return self._links[shard_for(self._z(key), self._boundaries)]

    def _shard_for_key(self, key: Sequence[Any]) -> int:
        return shard_for(self._z(key), self._boundaries)

    def _read_candidates(
        self, shard: int, prefer_replica: bool
    ) -> list[_ShardLink]:
        """Links to try for an idempotent read, preference first.

        With replicas and ``prefer_replica``: round-robin replica, then
        the primary, then the remaining replicas.  Without (or for
        stats, which should describe the authoritative copy): primary
        first, replicas as spares.  The caller walks this list on
        ``replica-stale`` fallback and on the one permitted
        dead-link retry.
        """
        primary = self._links[shard]
        pool = self._replica_links.get(shard, [])
        if not pool:
            return [primary]
        if not prefer_replica:
            return [primary, *pool]
        cursor = self._replica_rr.get(shard, 0)
        self._replica_rr[shard] = cursor + 1
        rotated = [pool[(cursor + i) % len(pool)] for i in range(len(pool))]
        return [rotated[0], primary, *rotated[1:]]

    async def _read_request(
        self,
        shard: int,
        opcode: Opcode,
        payload: Any = None,
        *,
        prefer_replica: bool = True,
    ) -> Any:
        """One idempotent read against shard ``shard``.

        Two distinct failure handoffs, both bounded:

        * a replica that *answers* but declines (``replica-stale`` past
          its lag bound, or ``read-only`` right after a promotion made
          it the primary's stale twin) costs nothing — move down the
          candidate list;
        * a link that *dies mid-request* (``shard-down``) consumes the
          single retry: re-running a read is safe precisely because it
          is idempotent, which is why mutations get no such retry
          anywhere in this router.
        """
        primary = self._links[shard]
        retried = False
        last_exc: Exception | None = None
        for link in self._read_candidates(shard, prefer_replica):
            if last_exc is not None and isinstance(
                last_exc, ShardDownError
            ):
                if retried:
                    break
                retried = True
                self.metrics.read_retries += 1
            try:
                reply = await link.request(opcode, payload)
            except ShardDownError as exc:
                last_exc = exc
                continue
            except RemoteError as exc:
                if exc.code in ("replica-stale", "read-only"):
                    self.metrics.replica_fallbacks += 1
                    last_exc = exc
                    continue
                raise
            if link is not primary:
                self.metrics.replica_reads += 1
            return reply
        assert last_exc is not None
        raise last_exc

    def _split_by_shard(
        self, keys: Sequence[Sequence[Any]]
    ) -> dict[int, list[int]]:
        """Input positions grouped by owning shard, preserving order."""
        groups: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            shard = shard_for(self._z(key), self._boundaries)
            groups.setdefault(shard, []).append(position)
        return groups

    async def _gather_by_shard(
        self, calls: dict[int, Any]
    ) -> dict[int, Any]:
        """Run per-shard coroutines concurrently; re-raise the first
        failure in shard order once every sub-request has settled (so a
        partial failure never abandons in-flight work mid-gather)."""
        shards = sorted(calls)
        results = await asyncio.gather(
            *(calls[s] for s in shards), return_exceptions=True
        )
        outcome = dict(zip(shards, results))
        for shard in shards:
            if isinstance(outcome[shard], BaseException):
                raise outcome[shard]
        return outcome

    # -- dispatch ------------------------------------------------------------

    async def dispatch(
        self, opcode: Opcode, payload: Any, epoch: int = 0
    ) -> Any:
        """Route one admitted request; returns the reply payload.

        Admin opcodes (PING/TOPOLOGY/ROUTE/MIGRATE) never take the
        topology gate — MIGRATE in particular *acquires* the write
        fence internally, so routing it through the read side would
        deadlock against itself.  Every data op holds the gate's read
        side for its whole fan-out, with the epoch check *inside*: a
        request that queued behind a cutover re-checks against the
        epoch that cutover installed, so it can never run new-table
        routing while asserting the old epoch.
        """
        if opcode == Opcode.PING:
            return {
                "pong": True,
                "version": PROTOCOL_VERSION,
                "versions": list(SUPPORTED_VERSIONS),
                "max_frame": self.max_frame,
                "role": "router",
                "shards": len(self._links),
            }
        if opcode == Opcode.TOPOLOGY:
            return self._topology()
        if opcode == Opcode.ROUTE:
            return self._route(payload)
        if opcode == Opcode.MIGRATE:
            return await self._migrate_admin(payload)
        async with self._topo_gate.read_locked():
            # Data ops are fenced by the topology epoch: a client that
            # observed epoch E must not write through a layout E' != E.
            # Raising here — before any shard link is contacted — is
            # what makes the client's transparent retry safe for
            # ``_many`` batches: a rejected request has applied nothing.
            if epoch and epoch != self._epoch:
                self.metrics.stale_rejections += 1
                raise StaleTopologyError(
                    f"request asserted epoch {epoch}, topology is at "
                    f"{self._epoch}",
                    epoch=self._epoch,
                )
            if opcode == Opcode.SEARCH:
                key = key_field(payload)
                self.metrics.point_ops_routed += 1
                return await self._read_request(
                    self._shard_for_key(key), opcode, payload
                )
            if opcode in (Opcode.INSERT, Opcode.DELETE):
                key = key_field(payload)
                self.metrics.point_ops_routed += 1
                return await self._link_for_key(key).request(opcode, payload)
            if opcode == Opcode.INSERT_MANY:
                return await self._insert_many(payload)
            if opcode in (Opcode.SEARCH_MANY, Opcode.DELETE_MANY):
                return await self._keyed_many(opcode, payload)
            if opcode == Opcode.RANGE:
                return await self._range(payload)
            if opcode == Opcode.STATS:
                return await self._stats()
        raise ProtocolError(f"unknown opcode {opcode}", code="bad-opcode")

    async def _migrate_admin(self, payload: Any) -> Any:
        """The router half of MIGRATE: operator-facing rebalance verbs
        (the worker half — taps, fetch, evict — lives in
        :class:`~repro.server.server.QueryServer`)."""
        action = field(payload, "action", str)
        if action == "status":
            migrating = (
                self._migrator is not None and self._migrator.in_progress
            )
            return {
                "epoch": self._epoch,
                "shards": len(self._specs),
                "migrating": migrating,
                "migrations": (
                    self._migrator.completed
                    if self._migrator is not None else 0
                ),
            }
        shard = None
        if isinstance(payload, dict) and payload.get("shard") is not None:
            shard = field(payload, "shard", int)
        if action == "split":
            cut = None
            if isinstance(payload, dict) and payload.get("cut") is not None:
                cut = field(payload, "cut", int)
            return await self.migrator.split(shard=shard, cut=cut)
        if action == "merge":
            return await self.migrator.merge(shard=shard)
        if action == "promote":
            if shard is None:
                raise ProtocolError(
                    "promote needs a shard", code="bad-payload"
                )
            failpoint = None
            if isinstance(payload, dict) and payload.get("failpoint"):
                failpoint = field(payload, "failpoint", str)
            return await self.promote(shard, failpoint=failpoint)
        raise ProtocolError(
            f"unknown migration action {action!r}", code="bad-payload"
        )

    async def promote(
        self, shard: int, *, failpoint: str | None = None
    ) -> dict[str, Any]:
        """Replace shard ``shard``'s (dead) primary with its
        most-caught-up follower and re-fence the topology.

        The blocking promotion (kill → choose → catch up → fork) runs
        on an executor thread *outside* the topology gate — reads on
        the surviving shards keep flowing the whole time.  Only the
        final link swap takes the write fence, exactly like a
        migration cutover, and installs the bumped epoch so straggler
        clients of the old primary are fenced off.
        """
        if self._manager is None:
            raise MigrationError(
                "this router has no shard manager; promotion needs one"
            )
        from repro.server.replica import promote as run_promotion

        manager = self._manager
        async with self._promote_lock:
            loop = asyncio.get_running_loop()
            summary = await loop.run_in_executor(
                None,
                lambda: run_promotion(
                    manager, self._replicas, shard, failpoint=failpoint
                ),
            )
            async with self.fence():
                old_links = self.install_topology(
                    manager.specs, manager.boundaries, epoch=manager.epoch
                )
                if self._replicas is not None:
                    old_links += self.install_replicas(
                        self._replicas.all_specs()
                    )
            for link in old_links:
                await link.close()
            self.metrics.promotions += 1
            summary["epoch"] = self._epoch
            return summary

    async def _failover_loop(self) -> None:
        """Auto-promote: watch every primary's liveness and run the
        promotion state machine the moment one dies.  Same error
        discipline as the auto-split loop — a failed attempt counts a
        shard error and retries on the next tick."""
        assert self._manager is not None
        while True:
            await asyncio.sleep(self._failover_interval)
            if self.draining:
                continue
            for spec in list(self._specs):
                try:
                    if self._manager.is_alive(spec.shard):
                        continue
                    await self.promote(spec.shard)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    self.metrics.shard_errors += 1

    def _topology(self) -> dict[str, Any]:
        return {
            "role": "router",
            "epoch": self._epoch,
            "boundaries": list(self._boundaries),
            "shards": [spec.as_payload() for spec in self._specs],
            "replicas": [
                link.spec.as_payload()
                for shard in sorted(self._replica_links)
                for link in self._replica_links[shard]
            ],
        }

    def _route(self, payload: Any) -> dict[str, Any]:
        key = key_field(payload)
        try:
            z = self._z(key)
        except Exception as exc:
            raise ProtocolError(
                f"unroutable key {key!r}: {exc}", code="bad-key"
            ) from None
        shard = shard_for(z, self._boundaries)
        spec = self._specs[shard]
        return {
            "epoch": self._epoch,
            "shard": shard,
            "z": z,
            "host": spec.host,
            "port": spec.port,
        }

    async def _insert_many(self, payload: Any) -> Any:
        pairs = field(payload, "pairs", list)
        for pair in pairs:
            if not isinstance(pair, list) or len(pair) != 2:
                raise ProtocolError(
                    "pairs must be [[key, value], ...]", code="bad-payload"
                )
        groups = self._split_by_shard([pair[0] for pair in pairs])
        self.metrics.batches_split += 1
        outcome = await self._gather_by_shard(
            {
                shard: self._links[shard].request(
                    Opcode.INSERT_MANY,
                    {"pairs": [pairs[i] for i in positions]},
                )
                for shard, positions in groups.items()
            }
        )
        inserted = 0
        for reply in outcome.values():
            inserted += field(reply, "inserted", int)
        return {"inserted": inserted}

    async def _keyed_many(self, opcode: Opcode, payload: Any) -> Any:
        keys = field(payload, "keys", list)
        for key in keys:
            if not isinstance(key, list):
                raise ProtocolError(
                    "keys must be [key, ...]", code="bad-payload"
                )
        groups = self._split_by_shard(keys)
        self.metrics.batches_split += 1
        if opcode == Opcode.SEARCH_MANY:
            calls = {
                shard: self._read_request(
                    shard, opcode, {"keys": [keys[i] for i in positions]}
                )
                for shard, positions in groups.items()
            }
        else:
            calls = {
                shard: self._links[shard].request(
                    opcode, {"keys": [keys[i] for i in positions]}
                )
                for shard, positions in groups.items()
            }
        outcome = await self._gather_by_shard(calls)
        values: list[Any] = [None] * len(keys)
        for shard, positions in groups.items():
            shard_values = field(outcome[shard], "values", list)
            if len(shard_values) != len(positions):
                raise ProtocolError(
                    f"shard {shard} returned {len(shard_values)} values "
                    f"for {len(positions)} keys",
                    code="bad-payload",
                )
            for position, value in zip(positions, shard_values):
                values[position] = value
        return {"values": values}

    async def _range(self, payload: Any) -> Any:
        lows = field(payload, "lows", list)
        highs = field(payload, "highs", list)
        try:
            z_low = self._z(lows)
            z_high = self._z(highs)
        except Exception as exc:
            raise ProtocolError(
                f"unroutable range bounds: {exc}", code="bad-key"
            ) from None
        targets = [
            spec.shard
            for spec in self._specs
            if spec.z_low <= z_high and z_low <= spec.z_high
        ]
        self.metrics.scatter_queries += 1
        self.metrics.scatter_fanout += len(targets)
        outcome = await self._gather_by_shard(
            {
                shard: self._read_request(shard, Opcode.RANGE, payload)
                for shard in targets
            }
        )
        # Order-preserving merge: per-shard items sorted by z, shards
        # visited in ascending z-range order — the concatenation is the
        # global z order because shard ranges are contiguous + disjoint.
        # Each item is also filtered to its shard's *owned* z range:
        # between a split's commit and the source's orphan eviction the
        # source still physically holds the moved records, and without
        # the ownership filter a scatter would return them twice.
        items: list[Any] = []
        for shard in sorted(targets):
            spec = self._specs[shard]
            shard_items = field(outcome[shard], "items", list)
            try:
                keyed = sorted(
                    ((self._z(item[0]), item) for item in shard_items),
                    key=lambda pair: pair[0],
                )
            except (TypeError, IndexError) as exc:
                raise ProtocolError(
                    f"shard {shard} returned malformed range items: {exc}",
                    code="bad-payload",
                ) from None
            items.extend(
                item for z, item in keyed
                if spec.z_low <= z <= spec.z_high
            )
        return {"items": items, "count": len(items)}

    async def _stats(self) -> Any:
        # Primary-preferred: stats should describe the authoritative
        # copy; a replica answers only when its primary's link died.
        outcome = await asyncio.gather(
            *(
                self._read_request(
                    spec.shard, Opcode.STATS, prefer_replica=False
                )
                for spec in self._specs
            ),
            return_exceptions=True,
        )
        shards: list[Any] = []
        keys = 0
        scheme = None
        dims = None
        load_sum, load_count = 0.0, 0
        for spec, reply in zip(self._specs, outcome):
            if isinstance(reply, BaseException):
                shards.append(
                    {"shard": spec.shard, "error": str(reply)}
                )
                continue
            if not isinstance(reply, dict):
                shards.append(
                    {"shard": spec.shard, "error": "malformed stats"}
                )
                continue
            entry = {"shard": spec.shard, **reply}
            shards.append(entry)
            keys += int(reply.get("keys", 0))
            scheme = scheme or reply.get("scheme")
            dims = dims if dims is not None else reply.get("dims")
            if isinstance(reply.get("load_factor"), (int, float)):
                load_sum += float(reply["load_factor"])
                load_count += 1
        return {
            "role": "router",
            "epoch": self._epoch,
            "scheme": scheme or "unknown",
            "dims": dims if dims is not None else self._codec.dimensions,
            "widths": list(self._widths),
            "keys": keys,
            "load_factor": load_sum / load_count if load_count else 0.0,
            "boundaries": list(self._boundaries),
            "shards": shards,
            "server": self.metrics.snapshot(),
            "admission": {
                "inflight": self.admission.inflight,
                "max_inflight": self.admission.max_inflight,
                "per_session": self.admission.per_session,
                "underflows": self.admission.underflows,
            },
        }
