"""One client connection: framing, pipelining, structured errors.

A :class:`Session` reads frames in a loop and dispatches each request.
Three dispatch lanes, fastest first:

* **inline reads** — a server exposing ``try_dispatch_inline`` (the
  :class:`~repro.server.server.QueryServer` does, for PING/SEARCH/
  SEARCH_MANY) answers uncontended point reads synchronously on the
  event loop: no task, no executor hop, no per-reply syscall;
* **mutation futures** — a server exposing ``submit_mutation_nowait``
  enqueues the mutation on the write aggregator and the reply is framed
  from the future's done-callback, again without spawning a task;
* **handler tasks** — everything else (range scans, stats, routed ops)
  runs as its own task, so a pipelining client still gets concurrent
  execution up to the admission controller's per-session limit.

Replies from all three lanes go through one outbound buffer that is
flushed once per event-loop tick (``call_soon``), so a pipelined burst
of replies costs one ``write()`` instead of one syscall each; the
transport's write buffer is drained asynchronously past a high-water
mark so a slow client cannot balloon server memory.

The error discipline is the fuzz suite's contract:

* a malformed-but-framed request (bad version, unknown opcode, bad
  payload) gets a structured ``REPLY_ERR`` and the stream continues —
  frame boundaries are intact, so the next frame is readable;
* an unframeable byte stream (garbage length prefix, oversized claim,
  mid-frame truncation) gets one final structured error and the
  connection closes — there is no way to resync;
* nothing a client sends can crash the server or leak a latch: request
  handlers release admission slots and latches in ``finally`` blocks,
  and every exception is mapped to a wire code.

Sessions are shared between :class:`~repro.server.server.QueryServer`
and :class:`~repro.server.router.ShardRouter` — anything satisfying the
:class:`ServesSessions` protocol.  Replies are framed in the version the
request arrived in; v2+ replies carry the server's current topology
epoch, which is how a router pushes topology changes to its clients for
free.
"""

from __future__ import annotations

import asyncio
from typing import Any, Protocol

from repro.errors import ProtocolError
from repro.server import protocol
from repro.server.admission import AdmissionController
from repro.server.metrics import ServerMetrics
from repro.server.protocol import MUTATION_OPCODES, Opcode

#: Sentinel returned by ``try_dispatch_inline`` when the request must
#: take the task path (contended locks, non-read opcode, big batch).
INLINE_MISS = object()

#: Transport write-buffer size past which a flush schedules an async
#: drain, applying backpressure to the reply stream.
_DRAIN_HIGH_WATER = 256 * 1024


class ServesSessions(Protocol):
    """The surface a :class:`Session` needs from its server.

    Satisfied by :class:`~repro.server.server.QueryServer` and
    :class:`~repro.server.router.ShardRouter`.  The fast-path hooks
    (``try_dispatch_inline``, ``submit_mutation_nowait``) and the
    ``max_frame`` cap are optional — the session probes them with
    ``getattr`` so duck-typed test servers keep working.
    """

    metrics: ServerMetrics
    admission: AdmissionController
    draining: bool
    drain_timeout: float

    @property
    def epoch(self) -> int:
        """Current topology epoch, stamped into every v2+ reply."""
        ...

    async def dispatch(
        self, opcode: Opcode, payload: Any, epoch: int = 0
    ) -> Any:
        ...

    def _session_done(self, session: "Session") -> None:
        ...


class Session:
    """The per-connection read-dispatch-reply loop."""

    _next_id = 0

    def __init__(
        self,
        server: ServesSessions,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        Session._next_id += 1
        self.session_id = Session._next_id
        self._server = server
        self._reader = reader
        self._frames = protocol.FrameReader(reader)
        self._writer = writer
        self._max_frame: int | None = getattr(server, "max_frame", None)
        self._inline = getattr(server, "try_dispatch_inline", None)
        self._submit_nowait = getattr(server, "submit_mutation_nowait", None)
        #: In-flight work: handler tasks plus pending mutation futures.
        self._tasks: set[asyncio.Future] = set()
        #: Reply frames accumulated this event-loop tick.
        self._out: list[bytes] = []
        self._flush_scheduled = False
        self.closed = False

    # -- outbound ------------------------------------------------------------

    def _send_soon(self, frame: bytes) -> None:
        """Queue one reply frame; the whole tick's worth is written in
        a single ``write()`` from a ``call_soon`` callback."""
        if self.closed:
            return
        self._out.append(frame)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush_out)

    def _flush_out(self) -> None:
        self._flush_scheduled = False
        if not self._out:
            return
        data = b"".join(self._out)
        self._out.clear()
        if self.closed:
            return
        try:
            self._writer.write(data)
        except (ConnectionError, OSError):
            self.closed = True
            return
        transport = self._writer.transport
        if (
            transport is not None
            and transport.get_write_buffer_size() > _DRAIN_HIGH_WATER
        ):
            self._track(
                asyncio.get_running_loop().create_task(self._drain_writer())
            )

    async def _drain_writer(self) -> None:
        try:
            await self._writer.drain()
        except (ConnectionError, OSError):
            self.closed = True

    def _track(self, task: asyncio.Future) -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _send(self, frame: bytes) -> None:
        self._send_soon(frame)

    def _reply_error(
        self, request_id: int, code: str, message: str, version: int = 1
    ) -> None:
        self._server.metrics.replies_err += 1
        self._send_soon(
            protocol.encode_error(
                request_id,
                code,
                message,
                version=version,
                epoch=self._server.epoch,
                max_frame=self._max_frame,
            )
        )

    async def _send_error(
        self, request_id: int, code: str, message: str, version: int = 1
    ) -> None:
        self._reply_error(request_id, code, message, version)

    def _reply_ok(self, request_id: int, result: Any, version: int) -> None:
        """Frame and queue a success reply (shared by all three lanes)."""
        metrics = self._server.metrics
        try:
            frame = protocol.encode_frame(
                Opcode.REPLY_OK,
                request_id,
                result,
                version=version,
                epoch=self._server.epoch,
                max_frame=self._max_frame,
            )
        except Exception as exc:
            # A codec decoded to something the frame cannot carry; the
            # request still gets a structured reply.
            self._reply_error(
                request_id, "internal", f"unencodable reply: {exc}", version
            )
        else:
            metrics.replies_ok += 1
            self._send_soon(frame)

    # -- inbound -------------------------------------------------------------

    async def run(self) -> None:
        """Serve frames until EOF, a fatal framing error, or shutdown."""
        metrics = self._server.metrics
        try:
            while not self.closed:
                try:
                    body = await self._frames.next_frame(self._max_frame)
                except ProtocolError as exc:
                    # Unframeable stream: reply once, then close — the
                    # frame boundary is lost, resync is impossible.
                    metrics.protocol_errors += 1
                    self._reply_error(0, exc.code, str(exc))
                    return
                if body is None:
                    return  # clean EOF
                await self._dispatch_frame(body)
        finally:
            await self._finish()

    async def _dispatch_frame(self, body: bytes) -> None:
        metrics = self._server.metrics
        try:
            frame = protocol.decode_frame(body)
        except ProtocolError as exc:
            # The frame was delimited correctly — the stream is intact,
            # reply and keep serving.
            metrics.protocol_errors += 1
            self._reply_error(0, exc.code, str(exc))
            return
        version, request_id = frame.version, frame.request_id
        try:
            opcode = Opcode(frame.opcode)
        except ValueError:
            metrics.protocol_errors += 1
            self._reply_error(
                request_id,
                "bad-opcode",
                f"unknown opcode {frame.opcode}",
                version,
            )
            return
        if opcode in (Opcode.REPLY_OK, Opcode.REPLY_ERR):
            metrics.protocol_errors += 1
            self._reply_error(
                request_id,
                "bad-opcode",
                "reply opcodes are server-to-client",
                version,
            )
            return
        metrics.record_request(opcode.name)
        if self._server.draining:
            metrics.drain_rejections += 1
            self._reply_error(
                request_id, "shutting-down", "server is draining", version
            )
            return
        rejection = self._server.admission.try_admit(self.session_id)
        if rejection is not None:
            if rejection == "busy":
                metrics.busy_rejections += 1
            else:
                metrics.pipeline_rejections += 1
            self._reply_error(
                request_id,
                rejection,
                "request rejected by admission control, retry",
                version,
            )
            return
        # Lane 1: synchronous inline reads (no task, no executor hop).
        if self._inline is not None:
            try:
                result = self._inline(opcode, frame.payload)
            except asyncio.CancelledError:
                self._server.admission.release(self.session_id)
                raise
            except BaseException as exc:
                self._reply_error(
                    request_id, protocol.error_code(exc), str(exc), version
                )
                self._server.admission.release(self.session_id)
                return
            if result is not INLINE_MISS:
                self._reply_ok(request_id, result, version)
                self._server.admission.release(self.session_id)
                return
        # Lane 2: mutations resolve from the aggregator's future — the
        # reply is framed in its done-callback.
        if self._submit_nowait is not None and opcode in MUTATION_OPCODES:
            try:
                future = self._submit_nowait(opcode, frame.payload)
            except asyncio.CancelledError:
                self._server.admission.release(self.session_id)
                raise
            except BaseException as exc:
                self._reply_error(
                    request_id, protocol.error_code(exc), str(exc), version
                )
                self._server.admission.release(self.session_id)
                return
            self._tasks.add(future)
            future.add_done_callback(
                lambda fut, rid=request_id, ver=version: self._mutation_done(
                    fut, rid, ver
                )
            )
            return
        # Lane 3: the general handler task.
        self._track(
            asyncio.get_running_loop().create_task(
                self._handle(
                    opcode, request_id, frame.payload, version, frame.epoch
                )
            )
        )

    def _mutation_done(
        self, future: asyncio.Future, request_id: int, version: int
    ) -> None:
        """Frame a mutation's reply from its aggregator future."""
        self._tasks.discard(future)
        metrics = self._server.metrics
        try:
            if future.cancelled():
                return
            exc = future.exception()
            if exc is not None:
                code = protocol.error_code(exc)
                if code == "latch-timeout":
                    metrics.latch_timeouts += 1
                self._reply_error(request_id, code, str(exc), version)
            else:
                self._reply_ok(request_id, future.result(), version)
        finally:
            self._server.admission.release(self.session_id)

    async def _handle(
        self,
        opcode: Opcode,
        request_id: int,
        payload: Any,
        version: int,
        epoch: int,
    ) -> None:
        """Execute one admitted request and reply; never raises."""
        metrics = self._server.metrics
        try:
            result = await self._server.dispatch(opcode, payload, epoch)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            code = protocol.error_code(exc)
            if code == "latch-timeout":
                metrics.latch_timeouts += 1
            self._reply_error(request_id, code, str(exc), version)
        else:
            self._reply_ok(request_id, result, version)
        finally:
            self._server.admission.release(self.session_id)

    # -- teardown ------------------------------------------------------------

    async def drain(self, timeout: float | None = None) -> None:
        """Wait for this session's in-flight requests to finish."""
        tasks = [t for t in self._tasks if not t.done()]
        if not tasks:
            return
        done, pending = await asyncio.wait(tasks, timeout=timeout)
        for task in pending:
            task.cancel()

    async def _finish(self) -> None:
        await self.drain(timeout=self._server.drain_timeout)
        # Push out replies framed by late done-callbacks before closing.
        self._flush_out()
        self.closed = True
        self._server.admission.forget_session(self.session_id)
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._server._session_done(self)
