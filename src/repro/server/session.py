"""One client connection: framing, pipelining, structured errors.

A :class:`Session` reads frames in a loop and dispatches each request as
its own task, so a pipelining client gets concurrent execution up to the
admission controller's per-session limit.  The error discipline is the
fuzz suite's contract:

* a malformed-but-framed request (bad version, unknown opcode, bad
  payload) gets a structured ``REPLY_ERR`` and the stream continues —
  frame boundaries are intact, so the next frame is readable;
* an unframeable byte stream (garbage length prefix, oversized claim,
  mid-frame truncation) gets one final structured error and the
  connection closes — there is no way to resync;
* nothing a client sends can crash the server or leak a latch: request
  handlers release admission slots and latches in ``finally`` blocks,
  and every exception is mapped to a wire code.

Sessions are shared between :class:`~repro.server.server.QueryServer`
and :class:`~repro.server.router.ShardRouter` — anything satisfying the
:class:`ServesSessions` protocol.  Replies are framed in the version the
request arrived in; v2 replies carry the server's current topology
epoch, which is how a router pushes topology changes to its clients for
free.
"""

from __future__ import annotations

import asyncio
from typing import Any, Protocol

from repro.errors import ProtocolError
from repro.server import protocol
from repro.server.admission import AdmissionController
from repro.server.metrics import ServerMetrics
from repro.server.protocol import Opcode


class ServesSessions(Protocol):
    """The surface a :class:`Session` needs from its server.

    Satisfied by :class:`~repro.server.server.QueryServer` and
    :class:`~repro.server.router.ShardRouter`.
    """

    metrics: ServerMetrics
    admission: AdmissionController
    draining: bool
    drain_timeout: float

    @property
    def epoch(self) -> int:
        """Current topology epoch, stamped into every v2 reply."""
        ...

    async def dispatch(
        self, opcode: Opcode, payload: Any, epoch: int = 0
    ) -> Any:
        ...

    def _session_done(self, session: "Session") -> None:
        ...


class Session:
    """The per-connection read-dispatch-reply loop."""

    _next_id = 0

    def __init__(
        self,
        server: ServesSessions,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        Session._next_id += 1
        self.session_id = Session._next_id
        self._server = server
        self._reader = reader
        self._writer = writer
        self._send_lock = asyncio.Lock()
        self._tasks: set[asyncio.Task] = set()
        self.closed = False

    # -- outbound ------------------------------------------------------------

    async def _send(self, frame: bytes) -> None:
        """Write one reply frame; replies from concurrent handlers are
        serialized so frames never interleave."""
        async with self._send_lock:
            if self.closed:
                return
            try:
                self._writer.write(frame)
                await self._writer.drain()
            except (ConnectionError, OSError):
                self.closed = True

    async def _send_error(
        self, request_id: int, code: str, message: str, version: int = 1
    ) -> None:
        self._server.metrics.replies_err += 1
        await self._send(
            protocol.encode_error(
                request_id,
                code,
                message,
                version=version,
                epoch=self._server.epoch,
            )
        )

    # -- inbound -------------------------------------------------------------

    async def run(self) -> None:
        """Serve frames until EOF, a fatal framing error, or shutdown."""
        metrics = self._server.metrics
        try:
            while not self.closed:
                try:
                    body = await protocol.read_frame(self._reader)
                except ProtocolError as exc:
                    # Unframeable stream: reply once, then close — the
                    # frame boundary is lost, resync is impossible.
                    metrics.protocol_errors += 1
                    await self._send_error(0, exc.code, str(exc))
                    return
                if body is None:
                    return  # clean EOF
                await self._dispatch_frame(body)
        finally:
            await self._finish()

    async def _dispatch_frame(self, body: bytes) -> None:
        metrics = self._server.metrics
        try:
            frame = protocol.decode_frame(body)
        except ProtocolError as exc:
            # The frame was delimited correctly — the stream is intact,
            # reply and keep serving.
            metrics.protocol_errors += 1
            await self._send_error(0, exc.code, str(exc))
            return
        version, request_id = frame.version, frame.request_id
        try:
            opcode = Opcode(frame.opcode)
        except ValueError:
            metrics.protocol_errors += 1
            await self._send_error(
                request_id,
                "bad-opcode",
                f"unknown opcode {frame.opcode}",
                version,
            )
            return
        if opcode in (Opcode.REPLY_OK, Opcode.REPLY_ERR):
            metrics.protocol_errors += 1
            await self._send_error(
                request_id,
                "bad-opcode",
                "reply opcodes are server-to-client",
                version,
            )
            return
        metrics.record_request(opcode.name)
        if self._server.draining:
            metrics.drain_rejections += 1
            await self._send_error(
                request_id, "shutting-down", "server is draining", version
            )
            return
        rejection = self._server.admission.try_admit(self.session_id)
        if rejection is not None:
            if rejection == "busy":
                metrics.busy_rejections += 1
            else:
                metrics.pipeline_rejections += 1
            await self._send_error(
                request_id,
                rejection,
                "request rejected by admission control, retry",
                version,
            )
            return
        task = asyncio.get_running_loop().create_task(
            self._handle(opcode, request_id, frame.payload, version, frame.epoch)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _handle(
        self,
        opcode: Opcode,
        request_id: int,
        payload: Any,
        version: int,
        epoch: int,
    ) -> None:
        """Execute one admitted request and reply; never raises."""
        metrics = self._server.metrics
        try:
            result = await self._server.dispatch(opcode, payload, epoch)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            code = protocol.error_code(exc)
            if code == "latch-timeout":
                metrics.latch_timeouts += 1
            await self._send_error(request_id, code, str(exc), version)
        else:
            try:
                frame = protocol.encode_frame(
                    Opcode.REPLY_OK,
                    request_id,
                    result,
                    version=version,
                    epoch=self._server.epoch,
                )
            except Exception as exc:
                # A codec decoded to something JSON cannot carry; the
                # request still gets a structured reply.
                await self._send_error(
                    request_id, "internal", f"unencodable reply: {exc}", version
                )
            else:
                metrics.replies_ok += 1
                await self._send(frame)
        finally:
            self._server.admission.release(self.session_id)

    # -- teardown ------------------------------------------------------------

    async def drain(self, timeout: float | None = None) -> None:
        """Wait for this session's in-flight requests to finish."""
        tasks = [t for t in self._tasks if not t.done()]
        if not tasks:
            return
        done, pending = await asyncio.wait(tasks, timeout=timeout)
        for task in pending:
            task.cancel()

    async def _finish(self) -> None:
        self.closed = True
        await self.drain(timeout=self._server.drain_timeout)
        self._server.admission.forget_session(self.session_id)
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._server._session_done(self)
