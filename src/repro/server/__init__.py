"""Concurrent query service layer: serve an index over TCP.

The storage stack built in PRs 2-4 (buffer pool, WAL group commit,
batched executors, the writer-preferring latch) only pays off at scale
if concurrent requests can reach it.  This subpackage is that reach:

* :mod:`repro.server.protocol` — a length-prefixed, versioned binary
  wire protocol carrying JSON payloads;
* :mod:`repro.server.server` — :class:`QueryServer`, an asyncio TCP
  server multiplexing client sessions onto one
  :class:`~repro.core.facade.MultiKeyFile` through the store's
  :class:`~repro.storage.latch.ReadWriteLatch`;
* :mod:`repro.server.aggregator` — the write-coalescing aggregator:
  concurrently-arriving mutations are collected into a single
  :meth:`~repro.storage.disk.PageStore.group` group commit, so N
  concurrent writers pay ~1 WAL COMMIT + durability flush instead of N;
* :mod:`repro.server.session` / :mod:`repro.server.admission` — per
  connection framing, pipelining limits and bounded-in-flight admission
  control (backpressure replies instead of unbounded queueing);
* :mod:`repro.server.client` — :class:`QueryClient`, an asyncio
  pipelining client mirroring the ``MultiKeyFile`` API;
* :mod:`repro.server.metrics` — served-request counters exposed over
  the ``STATS`` opcode and asserted by the ``served`` bench cell;
* :mod:`repro.server.shard` — :class:`ShardManager`, range-partitioning
  the z-order keyspace into per-process shard workers;
* :mod:`repro.server.router` — :class:`ShardRouter`, the protocol-v2
  scatter-gather front end over the shard workers;
* :mod:`repro.server.migrate` — :class:`ShardMigrator`, online shard
  split/merge under live traffic (committed-window tailing, fenced
  digest-verified cutover, zero acked-write loss).
"""

from repro.server.admission import AdmissionController, ReadWriteGate
from repro.server.aggregator import WriteAggregator
from repro.server.client import QueryClient, RemoteError, ServerBusy
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_MAX,
    SUPPORTED_VERSIONS,
    Frame,
    Opcode,
    encode_frame,
    decode_body,
    decode_frame,
    negotiated_version,
    read_frame,
)
from repro.server.migrate import ShardMigrator
from repro.server.router import RouterMetrics, ShardRouter
from repro.server.server import QueryServer
from repro.server.shard import (
    ShardManager,
    ShardSpec,
    boundaries_from_sample,
    shard_for,
    uniform_boundaries,
)

__all__ = [
    "AdmissionController",
    "ReadWriteGate",
    "WriteAggregator",
    "QueryClient",
    "RemoteError",
    "ServerBusy",
    "ServerMetrics",
    "RouterMetrics",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSION_MAX",
    "SUPPORTED_VERSIONS",
    "Frame",
    "Opcode",
    "encode_frame",
    "decode_body",
    "decode_frame",
    "negotiated_version",
    "read_frame",
    "QueryServer",
    "ShardManager",
    "ShardMigrator",
    "ShardSpec",
    "ShardRouter",
    "boundaries_from_sample",
    "shard_for",
    "uniform_boundaries",
]
