"""The asyncio pipelining client.

:class:`QueryClient` mirrors the :class:`~repro.core.facade.MultiKeyFile`
API over the wire.  Every call is one request frame; a background reader
task matches replies to requests by id, so any number of calls may be in
flight on one connection (pipelining) — fire them with
``asyncio.gather`` and the server interleaves them up to its per-session
limit.  Wire errors are mapped back onto the :mod:`repro.errors`
hierarchy: a served ``duplicate-key`` raises
:class:`~repro.errors.DuplicateKeyError` exactly as the embedded index
would, and the 503-style backpressure codes raise :class:`ServerBusy`,
which callers treat as retryable.
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from repro.errors import (
    CapacityError,
    DuplicateKeyError,
    EncodingError,
    KeyDimensionError,
    KeyNotFoundError,
    ProtocolError,
    ReproError,
    StorageError,
)
from repro.server import protocol
from repro.server.protocol import BUSY_CODES, Opcode


class RemoteError(ReproError):
    """A structured error reply the client has no local class for.

    Attributes:
        code: the wire error code (``internal``, ``invariant``, ...).
    """

    def __init__(self, message: str, *, code: str = "internal") -> None:
        self.code = code
        super().__init__(f"[{code}] {message}")


class ServerBusy(RemoteError):
    """A 503-style backpressure reply: the request was rejected, not
    failed — retry after easing off."""


#: Wire code -> local exception class (bare message constructors).
_CODE_ERRORS: dict[str, type] = {
    "duplicate-key": DuplicateKeyError,
    "key-not-found": KeyNotFoundError,
    "bad-key": KeyDimensionError,
    "encoding": EncodingError,
    "capacity": CapacityError,
    "storage": StorageError,
}


def _error_for(code: str, message: str) -> Exception:
    if code in BUSY_CODES:
        return ServerBusy(message, code=code)
    cls = _CODE_ERRORS.get(code)
    if cls is not None:
        return cls(message)
    if code.startswith("bad-") or code == "oversized":
        return ProtocolError(message, code=code)
    return RemoteError(message, code=code)


class QueryClient:
    """One pipelined connection to a :class:`QueryServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_replies(), name="repro-client-reader"
        )

    @classmethod
    async def connect(cls, host: str, port: int) -> "QueryClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def __aenter__(self) -> "QueryClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending(ConnectionError("client closed"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    # -- plumbing ------------------------------------------------------------

    async def _read_replies(self) -> None:
        try:
            while True:
                body = await protocol.read_frame(self._reader)
                if body is None:
                    self._fail_pending(
                        ConnectionError("server closed the connection")
                    )
                    return
                opcode, request_id, payload = protocol.decode_body(body)
                future = self._pending.pop(request_id, None)
                if future is None or future.done():
                    continue  # unsolicited or already-failed request
                if opcode == Opcode.REPLY_OK:
                    future.set_result(payload)
                elif opcode == Opcode.REPLY_ERR:
                    code = "internal"
                    message = "unstructured error reply"
                    if isinstance(payload, dict):
                        code = str(payload.get("code", code))
                        message = str(payload.get("message", message))
                    future.set_exception(_error_for(code, message))
                else:
                    future.set_exception(
                        ProtocolError(
                            f"unexpected reply opcode {opcode}",
                            code="bad-opcode",
                        )
                    )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_pending(
                exc if isinstance(exc, ReproError)
                else ConnectionError(f"connection failed: {exc}")
            )

    async def _request(self, opcode: Opcode, payload: Any = None) -> Any:
        if self._closed:
            raise ConnectionError("client is closed")
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(protocol.encode_frame(opcode, request_id, payload))
        await self._writer.drain()
        return await future

    # -- the MultiKeyFile API, served ---------------------------------------

    async def ping(self) -> dict:
        return await self._request(Opcode.PING)

    async def insert(self, key: Sequence[Any], value: Any = None) -> None:
        await self._request(Opcode.INSERT, {"key": list(key), "value": value})

    async def search(self, key: Sequence[Any]) -> Any:
        reply = await self._request(Opcode.SEARCH, {"key": list(key)})
        return reply["value"]

    async def delete(self, key: Sequence[Any]) -> Any:
        reply = await self._request(Opcode.DELETE, {"key": list(key)})
        return reply["value"]

    async def insert_many(
        self, pairs: Sequence[tuple[Sequence[Any], Any]]
    ) -> int:
        reply = await self._request(
            Opcode.INSERT_MANY,
            {"pairs": [[list(key), value] for key, value in pairs]},
        )
        return reply["inserted"]

    async def search_many(self, keys: Sequence[Sequence[Any]]) -> list[Any]:
        reply = await self._request(
            Opcode.SEARCH_MANY, {"keys": [list(key) for key in keys]}
        )
        return reply["values"]

    async def delete_many(self, keys: Sequence[Sequence[Any]]) -> list[Any]:
        reply = await self._request(
            Opcode.DELETE_MANY, {"keys": [list(key) for key in keys]}
        )
        return reply["values"]

    async def range_search(
        self,
        lows: Sequence[Any],
        highs: Sequence[Any],
        parallelism: int | None = None,
    ) -> list[tuple[tuple[Any, ...], Any]]:
        payload: dict[str, Any] = {"lows": list(lows), "highs": list(highs)}
        if parallelism is not None:
            payload["parallelism"] = parallelism
        reply = await self._request(Opcode.RANGE, payload)
        return [(tuple(key), value) for key, value in reply["items"]]

    async def stats(self) -> dict:
        return await self._request(Opcode.STATS)
