"""The asyncio pipelining client.

:class:`QueryClient` mirrors the :class:`~repro.core.facade.MultiKeyFile`
API over the wire.  Every call is one request frame; a background reader
task matches replies to requests by id, so any number of calls may be in
flight on one connection (pipelining) — fire them with
``asyncio.gather`` and the server interleaves them up to its per-session
limit.  Wire errors are mapped back onto the :mod:`repro.errors`
hierarchy: a served ``duplicate-key`` raises
:class:`~repro.errors.DuplicateKeyError` exactly as the embedded index
would, and the 503-style backpressure codes raise :class:`ServerBusy`,
which callers treat as retryable.

Long-lived connections are first-class:

* request ids wrap modulo 2^32 (the wire width), skipping 0 and any id
  still awaiting its reply, so a pipelined connection never dies of id
  exhaustion;
* reply payloads are validated through :func:`repro.server.protocol.field`
  before indexing — a malformed ``REPLY_OK`` surfaces as a structured
  :class:`~repro.errors.ProtocolError` (``bad-payload``), never a raw
  ``TypeError``/``KeyError``;
* after :meth:`negotiate` the client speaks protocol v2 against a
  sharding router: every reply header updates the cached topology epoch,
  every data request echoes it, and a ``stale-topology`` rejection is
  retried transparently with the refreshed epoch.
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from repro.errors import (
    CapacityError,
    DuplicateKeyError,
    EncodingError,
    KeyDimensionError,
    KeyNotFoundError,
    ProtocolError,
    ReproError,
    ShardDownError,
    StaleTopologyError,
    StorageError,
)
from repro.server import protocol
from repro.server.protocol import BUSY_CODES, Opcode

#: Request ids are ``u32`` on the wire; 0 is reserved for server-initiated
#: error frames, so the usable id space is [1, 2^32).
_ID_SPACE = 1 << 32

#: Bounded transparent retries on ``stale-topology`` — each retry uses
#: the epoch learned from the rejecting reply's own header, so one
#: round normally suffices; the bound guards against a flapping router.
_STALE_RETRIES = 3

#: Socket write-buffer size past which a request awaits ``drain()``.
#: Below it, requests are fire-and-forget writes — a pipelined gather
#: burst costs no per-request suspension.
_WRITE_HIGH_WATER = 256 * 1024


class RemoteError(ReproError):
    """A structured error reply the client has no local class for.

    Attributes:
        code: the wire error code (``internal``, ``invariant``, ...).
    """

    def __init__(self, message: str, *, code: str = "internal") -> None:
        self.code = code
        super().__init__(f"[{code}] {message}")


class ServerBusy(RemoteError):
    """A 503-style backpressure reply: the request was rejected, not
    failed — retry after easing off."""


#: Wire code -> local exception class (bare message constructors).
_CODE_ERRORS: dict[str, type] = {
    "duplicate-key": DuplicateKeyError,
    "key-not-found": KeyNotFoundError,
    "bad-key": KeyDimensionError,
    "encoding": EncodingError,
    "capacity": CapacityError,
    "storage": StorageError,
    "shard-down": ShardDownError,
    "stale-topology": StaleTopologyError,
}


def _error_for(code: str, message: str) -> Exception:
    if code in BUSY_CODES:
        return ServerBusy(message, code=code)
    cls = _CODE_ERRORS.get(code)
    if cls is not None:
        return cls(message)
    if code.startswith("bad-") or code == "oversized":
        return ProtocolError(message, code=code)
    return RemoteError(message, code=code)


class QueryClient:
    """One pipelined connection to a :class:`QueryServer` or
    :class:`~repro.server.router.ShardRouter`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._frames = protocol.FrameReader(reader)
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        #: Protocol version used for outgoing frames; raised to the
        #: highest shared version (2 or 3) by :meth:`negotiate`.
        self._version = 1
        #: Frame-size cap agreed at negotiation (None = protocol default).
        self._max_frame: int | None = None
        #: Last topology epoch seen in any v2+ reply header (0 = none).
        self._epoch = 0
        #: Outgoing frames buffered for one coalesced ``write()`` per
        #: loop tick — a pipelined gather burst becomes one syscall on
        #: this side and one large ``recv`` on the server's.
        self._out: list[bytes] = []
        self._flush_scheduled = False
        self._loop = asyncio.get_running_loop()
        self._reader_task = self._loop.create_task(
            self._read_replies(), name="repro-client-reader"
        )

    @classmethod
    async def connect(
        cls, host: str, port: int, *, negotiate: bool = False
    ) -> "QueryClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        if negotiate:
            await client.negotiate()
        return client

    @property
    def protocol_version(self) -> int:
        """The frame version this client currently speaks (1, 2 or 3)."""
        return self._version

    @property
    def max_frame(self) -> int:
        """The frame-size cap in force on this connection."""
        return (
            protocol.MAX_FRAME if self._max_frame is None else self._max_frame
        )

    @property
    def epoch(self) -> int:
        """The last topology epoch observed from the peer (0 = none)."""
        return self._epoch

    async def __aenter__(self) -> "QueryClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def close(self) -> None:
        if self._closed:
            return
        self._flush_out()  # last queued frames, before _closed drops them
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending(ConnectionError("client closed"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    def _abandon(self, exc: Exception) -> None:
        """Mark the connection dead after an EOF or reader failure.

        Without this, a peer that dies *between* requests leaves the
        client looking healthy (`_closed` False, nothing pending) and
        the next request writes into a dead socket and waits forever —
        the reply that would resolve it can never arrive.  Flagging the
        client closed here makes callers (the router's shard links, any
        reconnect wrapper) observe the death synchronously.
        """
        self._closed = True
        try:
            self._writer.close()
        except Exception:
            pass
        self._fail_pending(exc)

    # -- plumbing ------------------------------------------------------------

    def _send_frame(self, data: bytes) -> None:
        """Queue one frame; all frames queued this tick share a write.

        Order is preserved (one FIFO list), so pipelined requests still
        hit the wire in submission order.
        """
        self._out.append(data)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush_out)

    def _flush_out(self) -> None:
        self._flush_scheduled = False
        if not self._out or self._closed:
            self._out.clear()
            return
        data = b"".join(self._out)
        self._out.clear()
        self._writer.write(data)

    async def _read_replies(self) -> None:
        try:
            while True:
                body = await self._frames.next_frame(self._max_frame)
                if body is None:
                    self._abandon(
                        ConnectionError("server closed the connection")
                    )
                    return
                frame = protocol.decode_frame(body)
                if frame.version >= 2 and frame.epoch:
                    # Every v2 reply refreshes the topology epoch — the
                    # stale-topology retry path depends on the rejection
                    # itself having already delivered the new epoch.
                    self._epoch = frame.epoch
                future = self._pending.pop(frame.request_id, None)
                if future is None or future.done():
                    continue  # unsolicited or already-failed request
                if frame.opcode == Opcode.REPLY_OK:
                    future.set_result(frame.payload)
                elif frame.opcode == Opcode.REPLY_ERR:
                    code = "internal"
                    message = "unstructured error reply"
                    if isinstance(frame.payload, dict):
                        code = str(frame.payload.get("code", code))
                        message = str(frame.payload.get("message", message))
                    future.set_exception(_error_for(code, message))
                else:
                    future.set_exception(
                        ProtocolError(
                            f"unexpected reply opcode {frame.opcode}",
                            code="bad-opcode",
                        )
                    )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._abandon(
                exc if isinstance(exc, ReproError)
                else ConnectionError(f"connection failed: {exc}")
            )

    def _allocate_id(self) -> int:
        """The next request id: wraps modulo 2^32, skips 0 (reserved for
        server-initiated errors) and ids still awaiting replies.

        The id space dwarfs any admissible pipeline depth, so the scan
        terminates after at most ``len(_pending) + 2`` steps.
        """
        for _ in range(len(self._pending) + 2):
            self._next_id = (self._next_id + 1) % _ID_SPACE
            if self._next_id != 0 and self._next_id not in self._pending:
                return self._next_id
        raise ProtocolError(
            "no free request id: every id in the 2^32 space is in flight",
            code="bad-frame",
        )

    async def request(self, opcode: Opcode, payload: Any = None) -> Any:
        """Send one request frame and await its reply payload.

        The generic entry point behind every typed method — also the
        router's upstream hook.  Handles id allocation, epoch stamping
        and the transparent ``stale-topology`` retry.
        """
        last: StaleTopologyError | None = None
        for _ in range(_STALE_RETRIES):
            try:
                return await self._request_once(opcode, payload)
            except StaleTopologyError as exc:
                # The rejecting reply's header already updated
                # self._epoch; re-send with the fresh value.
                last = exc
        assert last is not None
        raise last

    async def _request_once(self, opcode: Opcode, payload: Any = None) -> Any:
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = self._allocate_id()
        future: asyncio.Future = self._loop.create_future()
        self._pending[request_id] = future
        self._send_frame(
            protocol.encode_frame(
                opcode,
                request_id,
                payload,
                version=self._version,
                epoch=self._epoch,
                max_frame=self._max_frame,
            )
        )
        transport = self._writer.transport
        if (
            transport is not None
            and transport.get_write_buffer_size() > _WRITE_HIGH_WATER
        ):
            await self._writer.drain()
        return await future

    # Kept as the historical private name; tests and subclasses reach it.
    _request = request

    # -- version negotiation --------------------------------------------------

    async def negotiate(self) -> int:
        """Agree on the highest shared protocol version with the peer.

        Sends a v1 ``PING`` (every server speaks v1) and inspects the
        advertised ``versions`` list.  Returns the agreed version and
        switches this connection to it for all subsequent frames; a
        peer that advertises a ``max_frame`` also fixes this
        connection's frame-size cap in both directions.
        """
        reply = await self._request_once(Opcode.PING)
        self._version = protocol.negotiated_version(reply)
        self._max_frame = protocol.negotiated_max_frame(reply)
        return self._version

    # -- the MultiKeyFile API, served ---------------------------------------

    async def ping(self) -> dict:
        reply = await self.request(Opcode.PING)
        if not isinstance(reply, dict):
            raise ProtocolError(
                f"PING reply must be an object, got {type(reply).__name__}",
                code="bad-payload",
            )
        return reply

    async def insert(self, key: Sequence[Any], value: Any = None) -> None:
        await self.request(Opcode.INSERT, {"key": list(key), "value": value})

    async def search(self, key: Sequence[Any]) -> Any:
        reply = await self.request(Opcode.SEARCH, {"key": list(key)})
        return protocol.field(reply, "value")

    async def delete(self, key: Sequence[Any]) -> Any:
        reply = await self.request(Opcode.DELETE, {"key": list(key)})
        return protocol.field(reply, "value")

    async def insert_many(
        self, pairs: Sequence[tuple[Sequence[Any], Any]]
    ) -> int:
        reply = await self.request(
            Opcode.INSERT_MANY,
            {"pairs": [[list(key), value] for key, value in pairs]},
        )
        return protocol.field(reply, "inserted", int)

    async def search_many(self, keys: Sequence[Sequence[Any]]) -> list[Any]:
        reply = await self.request(
            Opcode.SEARCH_MANY, {"keys": [list(key) for key in keys]}
        )
        return protocol.field(reply, "values", list)

    async def delete_many(self, keys: Sequence[Sequence[Any]]) -> list[Any]:
        reply = await self.request(
            Opcode.DELETE_MANY, {"keys": [list(key) for key in keys]}
        )
        return protocol.field(reply, "values", list)

    async def range_search(
        self,
        lows: Sequence[Any],
        highs: Sequence[Any],
        parallelism: int | None = None,
    ) -> list[tuple[tuple[Any, ...], Any]]:
        payload: dict[str, Any] = {"lows": list(lows), "highs": list(highs)}
        if parallelism is not None:
            payload["parallelism"] = parallelism
        reply = await self.request(Opcode.RANGE, payload)
        items = protocol.field(reply, "items", list)
        try:
            return [(tuple(key), value) for key, value in items]
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed RANGE items: {exc}", code="bad-payload"
            ) from None

    async def stats(self) -> dict:
        reply = await self.request(Opcode.STATS)
        if not isinstance(reply, dict):
            raise ProtocolError(
                f"STATS reply must be an object, got {type(reply).__name__}",
                code="bad-payload",
            )
        return reply

    # -- routing introspection (protocol v2) ----------------------------------

    async def topology(self) -> dict:
        """The peer's shard topology (a plain server reports one shard)."""
        reply = await self.request(Opcode.TOPOLOGY)
        if not isinstance(reply, dict):
            raise ProtocolError(
                f"TOPOLOGY reply must be an object, "
                f"got {type(reply).__name__}",
                code="bad-payload",
            )
        return reply

    async def route(self, key: Sequence[Any]) -> dict:
        """Which shard owns ``key`` (routing debug surface)."""
        reply = await self.request(Opcode.ROUTE, {"key": list(key)})
        if not isinstance(reply, dict):
            raise ProtocolError(
                f"ROUTE reply must be an object, got {type(reply).__name__}",
                code="bad-payload",
            )
        return reply

    async def migrate(self, action: str, **fields: Any) -> dict:
        """One MIGRATE admin request (see
        :meth:`repro.server.router.ShardRouter._migrate_admin` for the
        router verbs — ``split``/``merge``/``status`` — and
        :meth:`repro.server.server.QueryServer._migrate` for the worker
        verbs the migrator drives)."""
        reply = await self.request(Opcode.MIGRATE, {"action": action, **fields})
        if not isinstance(reply, dict):
            raise ProtocolError(
                f"MIGRATE reply must be an object, "
                f"got {type(reply).__name__}",
                code="bad-payload",
            )
        return reply

    async def repl(self, action: str, **fields: Any) -> dict:
        """One REPL stream-control request (``hello``/``checkpoint``/
        ``tail``/``bye`` — see
        :meth:`repro.server.server.QueryServer._repl`).  Page images are
        raw bytes, so the connection must have negotiated protocol v3.
        """
        reply = await self.request(Opcode.REPL, {"action": action, **fields})
        if not isinstance(reply, dict):
            raise ProtocolError(
                f"REPL reply must be an object, got {type(reply).__name__}",
                code="bad-payload",
            )
        return reply
