"""Range-partitioned shard workers over the z-order keyspace.

The service layer of PR 5 multiplexes every client onto one process,
so one GIL owns the whole index.  This module is the scale-out step:
:class:`ShardManager` splits the interleaved (z-order) keyspace into
``N`` contiguous ranges and runs one full :class:`~repro.server.server.
QueryServer` — own :class:`~repro.core.facade.MultiKeyFile`, own page
store, own WAL, own write aggregator — per range, each in its own
``multiprocessing`` worker.  A :class:`~repro.server.router.ShardRouter`
in the parent fronts the workers.

**Boundary selection.**  Cuts are picked the way *Building a Balanced
k-d Tree with MapReduce* picks median cuts: sample the workload's keys,
interleave them, and place the ``N-1`` cuts at the sample's quantiles
(:func:`boundaries_from_sample`).  Because a z-prefix is a dyadic box,
contiguous z-ranges are unions of boxes — every shard owns a
geometrically meaningful region, and a range query's z-interval
``[z(lows), z(highs)]`` intersects exactly the shards the router
scatters to.  With no sample (an empty cluster) the cuts fall back to
:func:`uniform_boundaries`, which splits the z domain evenly.

**Process model.**  Workers default to the ``fork`` start method
(sub-second for four workers; override with ``REPRO_SHARD_START=spawn``
when fork is unavailable).  Each worker reports ``(host, port)`` of its
ephemeral listener through a pipe before the manager declares the
cluster up.  ``SIGTERM`` triggers the worker's graceful drain — the
``QueryServer`` shutdown path flushes the final write window and
checkpoints the WAL — so a managed ``stop()`` leaves every shard
recoverable; ``kill()`` (SIGKILL) is the crash path the degradation
tests use.

Start the manager from synchronous code, before any event loop is
running in the calling thread: forking under a live loop duplicates its
internals into the child.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import multiprocessing
import os
import signal
from bisect import bisect_right
from multiprocessing.connection import Connection
from pathlib import Path
from typing import Any, Sequence

from repro.bits import interleave
from repro.errors import ShardDownError

#: Start method when neither the constructor nor the environment says
#: otherwise.  ``fork`` is an order of magnitude faster to boot than
#: ``spawn`` and works from any caller; ``spawn`` additionally needs an
#: importable ``__main__``.
_START_ENV = "REPRO_SHARD_START"
_DEFAULT_START = "fork"

#: The topology sidecar a durable cluster writes into its workdir, so a
#: restart re-derives the same partition without re-sampling.
TOPOLOGY_FILE = "topology.json"


# -- boundary selection -------------------------------------------------------


def uniform_boundaries(shards: int, total_width: int) -> list[int]:
    """``shards - 1`` evenly spaced cuts over the ``total_width``-bit
    z domain."""
    if shards < 1:
        raise ValueError("shard count must be >= 1")
    domain = 1 << total_width
    return [(i * domain) // shards for i in range(1, shards)]


def boundaries_from_sample(
    zs: Sequence[int], shards: int, total_width: int
) -> list[int]:
    """Quantile cuts from a sample of z values (median-cut style).

    Sorting the sample and cutting at the ``i/shards`` quantiles gives
    each shard an equal share of the *sampled* distribution, which is
    the MapReduce k-d construction's balancing argument transplanted to
    one dimension (the z axis).  Degenerate samples — too few distinct
    values to support ``shards - 1`` strictly increasing cuts — fall
    back to :func:`uniform_boundaries` so the partition is always total.
    """
    if shards < 1:
        raise ValueError("shard count must be >= 1")
    if shards == 1:
        return []
    ordered = sorted(zs)
    if len(ordered) < shards:
        return uniform_boundaries(shards, total_width)
    cuts: list[int] = []
    for i in range(1, shards):
        cut = ordered[(i * len(ordered)) // shards]
        if cuts and cut <= cuts[-1]:
            return uniform_boundaries(shards, total_width)
        cuts.append(cut)
    if cuts and (cuts[0] <= 0 or cuts[-1] >= (1 << total_width)):
        return uniform_boundaries(shards, total_width)
    return cuts


def shard_for(z: int, boundaries: Sequence[int]) -> int:
    """The shard owning z value ``z``: shard ``i`` owns
    ``[boundaries[i-1], boundaries[i])`` (0 and 2^W at the ends)."""
    return bisect_right(boundaries, z)


# -- worker configuration -----------------------------------------------------


@dataclasses.dataclass(frozen=True)
class WorkerConfig:
    """Everything a shard worker needs, as picklable primitives (the
    worker rebuilds codec/store/index itself, so ``spawn`` works too).

    ``worker`` is the *stable worker id*, not the shard position: shard
    positions shift when a split inserts a new range, but a worker's WAL
    file must keep naming the same data across restarts, so durability
    artifacts are keyed by worker id (``shard-{worker:03d}.pages``).
    """

    worker: int
    dims: int
    widths: tuple[int, ...]
    page_capacity: int
    wal_path: str | None
    host: str
    coalesce_window: float
    max_batch: int
    #: Generous admission: the router funnels its whole in-flight budget
    #: through one pipelined session per shard, so the worker's
    #: per-session limit must dominate the router's global one.
    max_inflight: int
    session_pipeline: int
    read_workers: int
    #: Buffer-pool frames in front of the worker's WAL-backed store.
    #: Group commit flushes the pool before the COMMIT record, so acked
    #: writes stay durable; reads stop paying a page decode per access.
    pool_pages: int = 256


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One live shard: its z range and its worker's address."""

    shard: int
    z_low: int
    z_high: int
    host: str
    port: int
    pid: int

    def as_payload(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


def _build_file(config: WorkerConfig) -> Any:
    from repro.core.facade import MultiKeyFile
    from repro.encoding import KeyCodec, UIntEncoder
    from repro.storage import PageStore
    from repro.storage.wal import WALBackend, recover_index

    from repro.storage.buffer import BufferPool

    codec = KeyCodec([UIntEncoder(w) for w in config.widths])
    if config.wal_path and os.path.exists(config.wal_path):
        index = recover_index(
            config.wal_path, pool_capacity=config.pool_pages or None
        )
        if index is not None:
            return MultiKeyFile.from_index(codec, index)
    store = None
    if config.wal_path:
        pool = BufferPool(config.pool_pages) if config.pool_pages else None
        store = PageStore(backend=WALBackend(config.wal_path), pool=pool)
    return MultiKeyFile(
        codec, page_capacity=config.page_capacity, store=store
    )


async def _serve_shard(config: WorkerConfig, conn: Connection) -> None:
    from repro.server.server import QueryServer

    server = QueryServer(
        _build_file(config),
        host=config.host,
        port=0,
        max_inflight=config.max_inflight,
        session_pipeline=config.session_pipeline,
        coalesce_window=config.coalesce_window,
        max_batch=config.max_batch,
        read_workers=config.read_workers,
    )
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    async with server:
        host, port = server.address
        conn.send(("ready", host, port))
        conn.close()
        await stop.wait()
        # __aexit__ drains sessions, flushes the last write window and
        # checkpoints the WAL — the graceful half of the shard contract.


def _worker_main(config: WorkerConfig, conn: Connection) -> None:
    """Entry point of one shard worker process."""
    try:
        asyncio.run(_serve_shard(config, conn))
    except Exception as exc:  # pragma: no cover - startup failures only
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            conn.close()
        except (OSError, ValueError):
            pass
        raise SystemExit(1)


# -- the manager --------------------------------------------------------------


class ShardManager:
    """Spawn, address and stop one worker process per z range.

    The manager is synchronous on purpose: it forks, so it must run
    before (or outside) any event loop.  The async half of the cluster —
    connections, routing, scatter-gather — lives in
    :class:`~repro.server.router.ShardRouter`.
    """

    def __init__(
        self,
        shards: int,
        *,
        dims: int = 2,
        widths: Sequence[int] | int = 16,
        page_capacity: int = 32,
        workdir: str | os.PathLike[str] | None = None,
        boundaries: Sequence[int] | None = None,
        sample_keys: Sequence[Sequence[int]] | None = None,
        host: str = "127.0.0.1",
        coalesce_window: float = 0.002,
        max_batch: int = 64,
        worker_max_inflight: int = 256,
        worker_pipeline: int = 256,
        read_workers: int = 2,
        start_method: str | None = None,
        ready_timeout: float = 30.0,
    ) -> None:
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        self.shards = shards
        self.dims = dims
        if isinstance(widths, int):
            self.widths: tuple[int, ...] = (widths,) * dims
        else:
            self.widths = tuple(widths)
        if len(self.widths) != dims:
            raise ValueError("widths arity must match dims")
        self.total_width = sum(self.widths)
        self.page_capacity = page_capacity
        self.workdir = Path(workdir) if workdir is not None else None
        self._host = host
        self._coalesce_window = coalesce_window
        self._max_batch = max_batch
        self._worker_max_inflight = worker_max_inflight
        self._worker_pipeline = worker_pipeline
        self._read_workers = read_workers
        self._start_method = (
            start_method
            or os.environ.get(_START_ENV, "").strip()
            or _DEFAULT_START
        )
        self._ready_timeout = ready_timeout
        self._persisted = self._read_topology()
        self.boundaries = self._resolve_boundaries(boundaries, sample_keys)
        if self._persisted is not None:
            self.worker_ids = [
                int(w) for w in self._persisted.get(
                    "workers", range(self.shards)
                )
            ]
            self.epoch = int(self._persisted.get("epoch", 1))
        else:
            self.worker_ids = list(range(self.shards))
            self.epoch = 1
        if len(self.worker_ids) != self.shards:
            raise ValueError(
                f"topology lists {len(self.worker_ids)} workers for "
                f"{self.shards} shards"
            )
        self._next_worker_id = max(self.worker_ids, default=-1) + 1
        self._procs: list[Any] = []
        self._endpoints: list[tuple[str, int, int]] = []
        self.specs: list[ShardSpec] = []

    @classmethod
    def from_workdir(
        cls, workdir: str | os.PathLike[str], **kwargs: Any
    ) -> "ShardManager":
        """Rebuild a manager from a workdir's persisted topology.

        The restart path for an elastic cluster: the shard count is
        whatever the last committed split/merge left behind, so callers
        (chaos recovery, ``repro serve`` restarts) must not have to
        guess it.
        """
        path = Path(workdir) / TOPOLOGY_FILE
        if not path.exists():
            raise ValueError(f"{path} does not exist; nothing to restart")
        data = json.loads(path.read_text(encoding="utf-8"))
        kwargs.setdefault("dims", int(data.get("dims", 2)))
        kwargs.setdefault("widths", [int(w) for w in data["widths"]])
        return cls(int(data["shards"]), workdir=workdir, **kwargs)

    # -- partition ----------------------------------------------------------

    def _resolve_boundaries(
        self,
        explicit: Sequence[int] | None,
        sample_keys: Sequence[Sequence[int]] | None,
    ) -> list[int]:
        """Explicit cuts win, then a persisted topology, then sampled
        quantiles, then the uniform fallback."""
        if explicit is not None:
            cuts = list(explicit)
            if len(cuts) != self.shards - 1 or cuts != sorted(set(cuts)):
                raise ValueError(
                    f"need {self.shards - 1} strictly increasing cuts, "
                    f"got {cuts}"
                )
            return cuts
        if self._persisted is not None:
            return [int(b) for b in self._persisted["boundaries"]]
        if sample_keys:
            zs = [interleave(tuple(k), self.widths) for k in sample_keys]
            return boundaries_from_sample(zs, self.shards, self.total_width)
        return uniform_boundaries(self.shards, self.total_width)

    def _topology_path(self) -> Path | None:
        if self.workdir is None:
            return None
        return self.workdir / TOPOLOGY_FILE

    def _read_topology(self) -> dict[str, Any] | None:
        path = self._topology_path()
        if path is None or not path.exists():
            return None
        data = json.loads(path.read_text(encoding="utf-8"))
        if (
            data.get("shards") != self.shards
            or data.get("widths") != list(self.widths)
        ):
            raise ValueError(
                f"{path} records a different cluster shape "
                f"({data.get('shards')} shards over {data.get('widths')}); "
                f"refusing to re-partition durable data"
            )
        return data

    def _persist_topology(self) -> None:
        """Atomically replace the topology sidecar.

        The WAL compaction idiom (tmp + fsync + ``os.replace``): a crash
        at any instant leaves either the complete old file or the
        complete new one, never a torn JSON that bricks the next
        restart.  This write *is* the commit point of an online
        split/merge — after the replace, a restart runs the new
        partition; before it, the old one.
        """
        path = self._topology_path()
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "version": 2,
                "shards": self.shards,
                "dims": self.dims,
                "widths": list(self.widths),
                "boundaries": list(self.boundaries),
                "workers": list(self.worker_ids),
                "epoch": self.epoch,
            },
            indent=2,
        ) + "\n"
        tmp = path.parent / (path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def z_range(self, shard: int) -> tuple[int, int]:
        """The inclusive ``[z_low, z_high]`` range shard ``shard`` owns."""
        low = self.boundaries[shard - 1] if shard > 0 else 0
        high = (
            self.boundaries[shard] - 1
            if shard < len(self.boundaries)
            else (1 << self.total_width) - 1
        )
        return low, high

    def shard_for_key(self, key: Sequence[int]) -> int:
        return shard_for(interleave(tuple(key), self.widths), self.boundaries)

    # -- lifecycle ----------------------------------------------------------

    def wal_path(self, worker_id: int) -> str | None:
        """The WAL file of worker ``worker_id`` (stable across splits)."""
        if self.workdir is None:
            return None
        return str(self.workdir / f"shard-{worker_id:03d}.pages")

    def _worker_config(self, worker_id: int) -> WorkerConfig:
        if self.workdir is not None:
            self.workdir.mkdir(parents=True, exist_ok=True)
        return WorkerConfig(
            worker=worker_id,
            dims=self.dims,
            widths=self.widths,
            page_capacity=self.page_capacity,
            wal_path=self.wal_path(worker_id),
            host=self._host,
            coalesce_window=self._coalesce_window,
            max_batch=self._max_batch,
            max_inflight=self._worker_max_inflight,
            session_pipeline=self._worker_pipeline,
            read_workers=self._read_workers,
        )

    def _launch(self, worker_id: int) -> tuple[Any, Connection]:
        """Fork one worker process; the caller awaits its ready pipe."""
        ctx = multiprocessing.get_context(self._start_method)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_main,
            args=(self._worker_config(worker_id), child_conn),
            name=f"repro-shard-w{worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _await_ready(
        self, label: str, conn: Connection, shard: int | None = None
    ) -> tuple[str, int]:
        if not conn.poll(self._ready_timeout):
            raise ShardDownError(
                f"{label} did not report ready within "
                f"{self._ready_timeout:.0f}s",
                shard=shard,
            )
        message = conn.recv()
        if message[0] != "ready":
            raise ShardDownError(
                f"{label} failed to start: {message[1]}", shard=shard
            )
        return message[1], message[2]

    def _rebuild_specs(self) -> None:
        self.specs = []
        for shard, (host, port, pid) in enumerate(self._endpoints):
            low, high = self.z_range(shard)
            self.specs.append(
                ShardSpec(
                    shard=shard, z_low=low, z_high=high,
                    host=host, port=port, pid=pid,
                )
            )

    def start(self) -> list[ShardSpec]:
        """Fork the workers and wait until every one is listening."""
        if self._procs:
            raise RuntimeError("shard workers already started")
        pipes: list[Connection] = []
        for worker_id in self.worker_ids:
            proc, parent_conn = self._launch(worker_id)
            self._procs.append(proc)
            pipes.append(parent_conn)
        try:
            for shard, conn in enumerate(pipes):
                host, port = self._await_ready(
                    f"shard {shard}", conn, shard=shard
                )
                self._endpoints.append(
                    (host, port, self._procs[shard].pid or 0)
                )
        except BaseException:
            self.stop(timeout=2.0)
            raise
        finally:
            for conn in pipes:
                conn.close()
        self._rebuild_specs()
        self._persist_topology()
        return self.specs

    # -- elastic membership (online split/merge) -----------------------------

    def allocate_worker_id(self) -> int:
        """Claim the next stable worker id (for callers that prepare a
        worker's durable files — a promoted follower's — before
        forking)."""
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        return worker_id

    def spawn_worker(
        self, worker_id: int | None = None, *, fresh: bool = True
    ) -> tuple[int, Any, tuple[str, int, int]]:
        """Fork one *extra* worker outside the current topology.

        Allocates a fresh stable worker id (unless one is passed in),
        removes any stale WAL file a previously-aborted migration left
        under that id (its contents were never part of a committed
        topology), forks, and waits for the listener.  The worker serves
        an empty index; it joins the partition only when
        :meth:`apply_split` (or :meth:`apply_promote`, with
        ``fresh=False`` so a promoted follower's caught-up WAL survives)
        commits it.  Blocking (the ready-pipe wait) — callers on an
        event loop run this in an executor.
        """
        if worker_id is None:
            worker_id = self.allocate_worker_id()
        wal = self.wal_path(worker_id)
        if fresh and wal is not None and os.path.exists(wal):
            os.unlink(wal)
        proc, conn = self._launch(worker_id)
        try:
            host, port = self._await_ready(f"worker {worker_id}", conn)
        except BaseException:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)
            raise
        finally:
            conn.close()
        return worker_id, proc, (host, port, proc.pid or 0)

    def apply_split(
        self,
        shard: int,
        cut: int,
        *,
        worker_id: int,
        proc: Any,
        endpoint: tuple[str, int, int],
        epoch: int | None = None,
    ) -> list[ShardSpec]:
        """Commit a split: shard ``shard`` keeps ``[low, cut)``, the new
        worker takes ``[cut, high]``.  The atomic topology persist at
        the end is the migration's durability commit point."""
        low, high = self.z_range(shard)
        if not low < cut <= high:
            raise ValueError(
                f"cut {cut} outside shard {shard}'s range [{low}, {high}]"
            )
        self.boundaries[shard:shard] = [cut]
        self.worker_ids[shard + 1:shard + 1] = [worker_id]
        self._procs[shard + 1:shard + 1] = [proc]
        self._endpoints[shard + 1:shard + 1] = [endpoint]
        self.shards += 1
        self.epoch = self.epoch + 1 if epoch is None else epoch
        self._rebuild_specs()
        self._persist_topology()
        return self.specs

    def apply_merge(
        self, shard: int, *, epoch: int | None = None
    ) -> tuple[Any, str | None]:
        """Commit a merge: shard ``shard`` leaves the partition and its
        range folds into the adjacent shard (the one below, or above for
        shard 0).  The caller has already copied the data over; the
        removed worker's process is returned for retirement."""
        if self.shards < 2:
            raise ValueError("cannot merge a single-shard cluster")
        worker_id = self.worker_ids.pop(shard)
        proc = self._procs.pop(shard)
        self._endpoints.pop(shard)
        # Dropping the cut between the merged shard and its absorber
        # extends the neighbour's range over the vacated one.
        self.boundaries.pop(shard - 1 if shard > 0 else 0)
        self.shards -= 1
        self.epoch = self.epoch + 1 if epoch is None else epoch
        self._rebuild_specs()
        self._persist_topology()
        return proc, self.wal_path(worker_id)

    def apply_promote(
        self,
        shard: int,
        *,
        worker_id: int,
        proc: Any,
        endpoint: tuple[str, int, int],
        epoch: int | None = None,
    ) -> list[ShardSpec]:
        """Commit a failover: the worker at position ``shard`` (dead or
        dying) is replaced by a promoted follower serving the *same* z
        range under a new stable worker id.  Boundaries are untouched;
        the epoch bump plus the atomic topology persist is the fencing
        commit point — a router that installs the new specs at this
        epoch will reject any client still asserting the old one."""
        old = self._procs[shard]
        if old.is_alive():  # the primary must be dead before its
            raise ValueError(  # replacement claims the range
                f"shard {shard}'s worker is still alive; kill it before "
                "promoting a follower over its range"
            )
        self.worker_ids[shard] = worker_id
        self._procs[shard] = proc
        self._endpoints[shard] = endpoint
        self.epoch = self.epoch + 1 if epoch is None else epoch
        self._rebuild_specs()
        self._persist_topology()
        return self.specs

    def retire(self, proc: Any, timeout: float = 10.0) -> None:
        """Gracefully stop one worker that left the partition."""
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=timeout)
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.kill()
            proc.join(timeout=5.0)

    def is_alive(self, shard: int) -> bool:
        return bool(self._procs) and self._procs[shard].is_alive()

    def kill(self, shard: int) -> None:
        """SIGKILL one worker — the crash path (no drain, no checkpoint)."""
        proc = self._procs[shard]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)

    def stop(self, timeout: float = 10.0) -> None:
        """SIGTERM every worker and wait for its graceful drain."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=5.0)
        self._procs.clear()
        self._endpoints = []
        self.specs = []

    def __enter__(self) -> "ShardManager":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
