"""The asyncio TCP query server.

:class:`QueryServer` exposes every :class:`~repro.core.facade.MultiKeyFile`
operation over the wire protocol, multiplexing any number of client
sessions onto one index with the concurrency discipline the storage
layer expects:

* **reads fan out** — point lookups run on a thread-pool executor under
  the service gate's shared side plus the store latch's shared side
  (with a timeout: a stuck writer is a ``latch-timeout`` backpressure
  reply, not a hang); range queries may additionally fan per-page scans
  through :func:`~repro.core.rangequery.scan_parallel`, whose workers
  read via :meth:`~repro.storage.disk.PageStore.read_shared`;
* **writes serialize and coalesce** — every mutation flows through the
  :class:`~repro.server.aggregator.WriteAggregator` (enforced by lint
  rule REP106), which holds the gate's exclusive side per coalesced
  window and commits the whole window under one
  :meth:`~repro.storage.disk.PageStore.group` scope;
* **admission is bounded** — the in-flight budget and per-session
  pipelining limit reject excess load with 503-style replies instead of
  queueing it (see :mod:`repro.server.admission`).

Graceful shutdown drains in three stages: stop accepting and reject new
requests (``shutting-down``), wait for in-flight requests and flush the
aggregator's final window, then make the served state durable — on a
WAL backend via :func:`repro.storage.wal.checkpoint`, binding the last
commit to a whole-index state that
:func:`~repro.storage.wal.recover_index` can reopen; elsewhere via a
plain store flush.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.bits import interleave
from repro.core.facade import MultiKeyFile
from repro.errors import LatchTimeout, ProtocolError
from repro.server.admission import AdmissionController, ReadWriteGate
from repro.server.aggregator import (
    DEFAULT_MAX_BATCH,
    DEFAULT_WINDOW,
    WriteAggregator,
)
from repro.server.binpayload import canonical_blob
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    MAX_FRAME,
    MUTATION_OPCODES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    Opcode,
    field,
    key_field,
)
from repro.server.session import INLINE_MISS, Session
from repro.storage.wal import WALBackend, checkpoint

#: Largest SEARCH_MANY batch answered synchronously on the event loop;
#: bigger batches take the executor path so the loop never stalls.
_INLINE_BATCH_LIMIT = 128


class _MigrationTap:
    """A committed-window tail of one z range.

    Registered as a :class:`~repro.server.aggregator.WriteAggregator`
    observer, it accumulates every *committed* mutation whose key falls
    in ``[z_low, z_high]`` — published before the write is acked, so the
    tap never misses an acknowledged write.  This is the service-level
    equivalent of tailing the committed WAL for the moving range: the
    migrator drains it with ``delta`` rounds while bulk-copying, then
    once more under the router's fence.

    A window whose committed key set could not be fully described (a
    partially-applied ``_many`` op) sets ``tainted``; the migrator then
    falls back to the digest/reconcile path instead of trusting the
    delta stream.
    """

    def __init__(
        self, z_low: int, z_high: int, z_of: Callable[[Sequence[Any]], int]
    ) -> None:
        self.z_low = z_low
        self.z_high = z_high
        self._z_of = z_of
        self.ops: list[list[Any]] = []
        self.tainted = False

    def __call__(
        self, committed: list[tuple[str, Any, Any]], tainted: bool
    ) -> None:
        if tainted:
            self.tainted = True
        for kind, key, value in committed:
            try:
                z = self._z_of(key)
            except Exception:
                # An unroutable key cannot belong to the moving range,
                # but be conservative: force the digest path.
                self.tainted = True
                continue
            if self.z_low <= z <= self.z_high:
                self.ops.append([kind, list(key), value])


class QueryServer:
    """Serve one :class:`MultiKeyFile` to concurrent TCP clients."""

    def __init__(
        self,
        file: MultiKeyFile,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        session_pipeline: int = 16,
        coalesce_window: float = DEFAULT_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        read_workers: int = 4,
        latch_timeout: float | None = 5.0,
        drain_timeout: float = 10.0,
        range_parallelism: int | None = None,
        max_frame: int = MAX_FRAME,
    ) -> None:
        self._file = file
        self._host = host
        self._port = port
        #: Frame-body cap, advertised in PING replies; sessions read and
        #: write frames up to this size once a v3 client negotiates.
        self.max_frame = max_frame
        self.metrics = ServerMetrics()
        self.admission = AdmissionController(max_inflight, session_pipeline)
        self._gate = ReadWriteGate()
        self._latch_timeout = latch_timeout
        self.drain_timeout = drain_timeout
        self._range_parallelism = range_parallelism
        #: Serializes store access when point reads fan out over the
        #: executor: a byte backend's file handle seeks, the pool's LRU
        #: and the dedup ledgers are all single-threaded (the same
        #: discipline as ``PageStore.read_shared``'s internal lock).
        #: The fan-out win is at the wire level — parse/encode/framing
        #: overlap — and inside parallel range scans, whose workers
        #: serialize on ``read_shared`` themselves.
        self._read_mutex = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, read_workers),
            thread_name_prefix="repro-serve",
        )
        self._aggregator = WriteAggregator(
            file,
            self._gate,
            self.metrics,
            executor=self._executor,
            window=coalesce_window,
            max_batch=max_batch,
            latch_timeout=latch_timeout,
        )
        self._server: asyncio.base_events.Server | None = None
        self._sessions: set[Session] = set()
        self.draining = False
        self._shut_down = False
        #: Live migration taps by id (see :class:`_MigrationTap`).
        self._taps: dict[int, _MigrationTap] = {}
        self._next_tap = 1
        #: Live replication streams by id: each holds a WAL tap (see
        #: :class:`repro.storage.wal.ReplicationTap`) a follower drains.
        self._repl_streams: dict[int, Any] = {}
        self._next_repl = 1

    # -- lifecycle -----------------------------------------------------------

    @property
    def file(self) -> MultiKeyFile:
        return self._file

    @property
    def aggregator(self) -> WriteAggregator:
        return self._aggregator

    @property
    def epoch(self) -> int:
        """A plain server has no shard topology: always epoch 0, which
        v2 clients read as "nothing to assert"."""
        return 0

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemerals)."""
        if self._server is None:
            raise ProtocolError("server is not started", code="internal")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> "QueryServer":
        self._server = await asyncio.start_server(
            self._on_connect, self._host, self._port
        )
        self._aggregator.start()
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.shutdown()

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = Session(self, reader, writer)
        self._sessions.add(session)
        self.metrics.connections_opened += 1
        try:
            await session.run()
        except (ConnectionError, OSError):
            # A peer that dies during teardown can surface a reset from
            # transport internals after the session's own handlers ran;
            # a dead connection is this callback's normal end state.
            pass

    def _session_done(self, session: Session) -> None:
        self._sessions.discard(session)
        self.metrics.connections_closed += 1

    async def shutdown(self) -> None:
        """Drain sessions, flush the last write window, make the state
        durable.  Idempotent."""
        if self._shut_down:
            return
        self._shut_down = True
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self._sessions):
            await session.drain(timeout=self.drain_timeout)
        await self._aggregator.stop()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self._final_checkpoint)
        for session in list(self._sessions):
            session.closed = True
            await session._finish()
        self._executor.shutdown(wait=True)

    def _final_checkpoint(self) -> None:
        """The durability half of the shutdown contract: after this,
        :func:`~repro.storage.wal.recover_index` on the page file
        reopens exactly the drained state."""
        store = self._file.store
        if isinstance(store.backend, WALBackend):
            checkpoint(self._file.index)
        else:
            store.flush()

    # -- dispatch ------------------------------------------------------------

    async def dispatch(
        self, opcode: Opcode, payload: Any, epoch: int = 0
    ) -> Any:
        """Execute one admitted request; returns the reply payload.

        ``epoch`` is the client's asserted topology epoch — meaningful
        only behind a router; a plain server accepts any value.
        """
        if opcode in MUTATION_OPCODES:
            return await self._aggregator.submit(opcode, payload)
        if opcode == Opcode.PING:
            return self._ping_reply()
        if opcode == Opcode.TOPOLOGY:
            return await self._run_read(self._topology, latched=False)
        if opcode == Opcode.ROUTE:
            key_field(payload)  # validate shape even though unrouted
            return {"epoch": 0, "shard": 0, "role": "server"}
        if opcode == Opcode.SEARCH:
            key = key_field(payload)
            return await self._run_read(
                lambda: {"value": self._file.search(key)}
            )
        if opcode == Opcode.SEARCH_MANY:
            keys = field(payload, "keys", list)
            for key in keys:
                if not isinstance(key, list):
                    raise ProtocolError(
                        "keys must be [key, ...]", code="bad-payload"
                    )
            return await self._run_read(
                lambda: {"values": self._file.search_many(keys)}
            )
        if opcode == Opcode.RANGE:
            return await self._range(payload)
        if opcode == Opcode.STATS:
            return await self._run_read(self._stats)
        if opcode == Opcode.MIGRATE:
            return await self._migrate(payload)
        if opcode == Opcode.REPL:
            return await self._repl(payload)
        raise ProtocolError(f"unknown opcode {opcode}", code="bad-opcode")

    def _ping_reply(self) -> dict[str, Any]:
        return {
            "pong": True,
            "version": PROTOCOL_VERSION,
            "versions": list(SUPPORTED_VERSIONS),
            "max_frame": self.max_frame,
            "role": "server",
        }

    # -- the inline fast path -------------------------------------------------

    def try_dispatch_inline(self, opcode: Opcode, payload: Any) -> Any:
        """Answer an uncontended point read synchronously on the event
        loop; returns :data:`~repro.server.session.INLINE_MISS` when the
        request must take the task path.

        Safety argument: nothing here awaits, so between the gate check
        and the return no other event-loop callback runs — the write
        aggregator (which takes the gate's exclusive side *on the loop*)
        cannot start a window mid-read, which is exactly the exclusion
        ``read_locked`` buys the task path.  Non-service writers are
        excluded by the store latch's shared side, acquired
        non-blockingly — writer contention is a miss, never a stall on
        the loop.  Executor-thread readers are excluded by the read
        mutex, taken in the same latch-then-mutex order as
        ``_latched_read`` (so the two read paths cannot deadlock) and
        held only for the one point read — a bounded, sub-millisecond
        wait.
        """
        if opcode is Opcode.PING:
            return self._ping_reply()
        if opcode is Opcode.SEARCH:
            key = key_field(payload)
            reader = lambda: {"value": self._file.search(key)}  # noqa: E731
        elif opcode is Opcode.SEARCH_MANY:
            keys = field(payload, "keys", list)
            if len(keys) > _INLINE_BATCH_LIMIT:
                return INLINE_MISS
            for key in keys:
                if not isinstance(key, list):
                    raise ProtocolError(
                        "keys must be [key, ...]", code="bad-payload"
                    )
            reader = lambda: {  # noqa: E731
                "values": self._file.search_many(keys)
            }
        else:
            return INLINE_MISS
        if not self._gate.writer_idle:
            return INLINE_MISS
        # Same order as ``_latched_read`` (latch, then read mutex) so the
        # two read paths can never deadlock against each other.
        store = self._file.store
        try:
            store.latch.acquire_read(timeout=0)
        except LatchTimeout:
            return INLINE_MISS
        try:
            with self._read_mutex:
                result = reader()
        finally:
            store.latch.release_read()
        self.metrics.reads_served += 1
        return result

    def submit_mutation_nowait(
        self, opcode: Opcode, payload: Any
    ) -> "asyncio.Future[Any]":
        """Enqueue a mutation without a wrapping task; the session frames
        the reply from the returned future's done-callback."""
        return self._aggregator.submit_nowait(opcode, payload)

    async def _run_read(
        self, fn: Callable[[], Any], latched: bool = True
    ) -> Any:
        """Run a read on the executor under the service gate's shared
        side (fanning out with other reads, excluded from write
        windows), plus — for point reads — the store latch's shared side
        with a timeout, guarding against non-service writers."""
        loop = asyncio.get_running_loop()
        async with self._gate.read_locked():
            result = await loop.run_in_executor(
                self._executor, self._latched_read, fn, latched
            )
        self.metrics.reads_served += 1
        return result

    def _latched_read(self, fn: Callable[[], Any], latched: bool) -> Any:
        store = self._file.store
        if not latched:
            return fn()
        with store.latch.read(timeout=self._latch_timeout):
            with self._read_mutex:
                return fn()

    async def _range(self, payload: Any) -> Any:
        lows = field(payload, "lows", list)
        highs = field(payload, "highs", list)
        parallelism = None
        if isinstance(payload, dict) and payload.get("parallelism") is not None:
            parallelism = payload["parallelism"]
            if not isinstance(parallelism, int) or parallelism < 1:
                raise ProtocolError(
                    "parallelism must be a positive integer",
                    code="bad-payload",
                )
        if parallelism is None:
            parallelism = self._range_parallelism
        use_snapshot = True
        if isinstance(payload, dict) and payload.get("snapshot") is not None:
            use_snapshot = bool(payload["snapshot"])

        def scan() -> Any:
            records = [
                [list(key), value]
                for key, value in self._file.range_search(
                    lows, highs, parallelism=parallelism
                )
            ]
            return {"items": records, "count": len(records)}

        if use_snapshot:
            return await self._read_at_snapshot(scan)
        # Legacy gated path (``snapshot: false``): the scan holds the
        # gate's shared side for its whole duration, blocking writers.
        # A fanned-out scan takes the latch's shared side per page read
        # (scan_parallel -> read_shared) from its own workers; holding
        # the outer latch here as well could deadlock against a
        # writer-preference claim, so the gate alone excludes writers.
        return await self._run_read(
            scan, latched=not (parallelism and parallelism > 1)
        )

    async def _read_at_snapshot(self, fn: Callable[[], Any]) -> Any:
        """The MVCC read path: pin a snapshot at a committed window
        boundary (the gate's shared side covers only the *open*, which
        is cheap), then run ``fn`` latch-free against the pinned page
        versions with the gate released — a long scan never blocks the
        write aggregator, and a write storm can never turn the scan into
        a ``latch-timeout``."""
        loop = asyncio.get_running_loop()
        store = self._file.store
        async with self._gate.read_locked():
            snap = await loop.run_in_executor(
                self._executor,
                lambda: store.snapshot(timeout=self._latch_timeout),
            )
        try:

            def run() -> Any:
                with snap.reading():
                    return fn()

            result = await loop.run_in_executor(self._executor, run)
        finally:
            snap.close()
        self.metrics.reads_served += 1
        self.metrics.snapshot_reads += 1
        return result

    # -- migration (worker side) ----------------------------------------------

    def _z_key(self, key: Sequence[Any]) -> int:
        codec = self._file.codec
        return interleave(codec.encode(key), codec.widths)

    def _migration_snapshot(self) -> list[tuple[int, list[Any], Any]]:
        """Every record as ``(z, key, value)`` — run through
        :meth:`_read_at_snapshot`, so the iteration sees one pinned MVCC
        state and never blocks (or is blocked by) the write window."""
        codec = self._file.codec
        widths = codec.widths
        out: list[tuple[int, list[Any], Any]] = []
        for codes, value in self._file.index.items():
            out.append(
                (interleave(tuple(codes), widths), list(codec.decode(codes)),
                 value)
            )
        return out

    async def _migrate(self, payload: Any) -> Any:
        """The worker half of online migration: taps, paged snapshot
        reads and range eviction, driven over the wire by a
        :class:`~repro.server.migrate.ShardMigrator`.

        Tap bookkeeping happens on the event loop (no locks needed);
        snapshot reads run through :meth:`_run_read`; eviction is a
        plain ``DELETE_MANY`` through the aggregator, so it obeys every
        durability and latch rule an external delete would.
        """
        action = field(payload, "action", str)
        if action == "begin":
            z_low = field(payload, "z_low", int)
            z_high = field(payload, "z_high", int)
            tap_id = self._next_tap
            self._next_tap += 1
            tap = _MigrationTap(z_low, z_high, self._z_key)
            self._taps[tap_id] = tap
            self._aggregator.add_observer(tap)
            return {"tap": tap_id}
        if action in ("end", "abort"):
            tap = self._taps.pop(field(payload, "tap", int), None)
            if tap is not None:
                self._aggregator.remove_observer(tap)
            return {"ok": True, "released": tap is not None}
        if action == "delta":
            tap = self._taps.get(field(payload, "tap", int))
            if tap is None:
                raise ProtocolError(
                    "unknown migration tap", code="bad-payload"
                )
            limit = 4096
            if isinstance(payload, dict) and payload.get("limit") is not None:
                limit = field(payload, "limit", int)
            ops = tap.ops[:limit]
            del tap.ops[: len(ops)]
            return {"ops": ops, "more": bool(tap.ops), "tainted": tap.tainted}
        if action not in ("fetch", "digest", "sample", "evict"):
            raise ProtocolError(
                f"unknown migration action {action!r}", code="bad-payload"
            )
        z_low = field(payload, "z_low", int)
        z_high = field(payload, "z_high", int)
        snapshot = await self._read_at_snapshot(self._migration_snapshot)
        in_range = sorted(
            (entry for entry in snapshot if z_low <= entry[0] <= z_high),
            key=lambda entry: entry[0],
        )
        if action == "fetch":
            after_z = -1
            if isinstance(payload, dict) and payload.get("after_z") is not None:
                after_z = field(payload, "after_z", int)
            limit = 512
            if isinstance(payload, dict) and payload.get("limit") is not None:
                limit = field(payload, "limit", int)
            pending = [entry for entry in in_range if entry[0] > after_z]
            page = pending[:limit]
            return {
                "items": [[key, value] for _, key, value in page],
                "next_z": page[-1][0] if page else after_z,
                "done": len(pending) <= limit,
            }
        if action == "digest":
            crc = 0
            for z, key, value in in_range:
                crc = zlib.crc32(canonical_blob(key, value), crc)
            return {"count": len(in_range), "crc": crc}
        if action == "sample":
            limit = 1024
            if isinstance(payload, dict) and payload.get("limit") is not None:
                limit = field(payload, "limit", int)
            zs = [entry[0] for entry in in_range]
            if len(zs) > limit:
                stride = len(zs) / limit
                zs = [zs[int(i * stride)] for i in range(limit)]
            return {"zs": zs, "keys": len(in_range)}
        # evict: delete every in-range record through the aggregator —
        # the post-cutover cleanup of the moved (now orphaned) range.
        keys = [key for _, key, _ in in_range]
        if not keys:
            return {"evicted": 0}
        await self._aggregator.submit(Opcode.DELETE_MANY, {"keys": keys})
        return {"evicted": len(keys)}

    # -- replication (primary side) -------------------------------------------

    async def _repl(self, payload: Any) -> Any:
        """The primary half of WAL shipping, driven over the wire by a
        :class:`~repro.server.replica.ReplicaManager` follower.

        ``hello`` attaches a :class:`~repro.storage.wal.ReplicationTap`
        (which also takes a compaction floor, so ``compact()`` cannot
        drop records the stream still needs); ``checkpoint`` pages the
        committed images to a bootstrapping follower; ``tail`` drains
        the committed batches published since the last drain; ``bye``
        detaches.  Requires a WAL backend and protocol v3 (page images
        are raw bytes).  Everything here is read-side: replication can
        never enter the write aggregator.
        """
        action = field(payload, "action", str)
        backend = self._file.store.backend
        if not isinstance(backend, WALBackend):
            raise ProtocolError(
                "replication requires a WAL-backed server", code="no-wal"
            )
        if action == "hello":
            stream_id = self._next_repl
            self._next_repl += 1
            self._repl_streams[stream_id] = backend.attach_tap()
            pages = await self._run_read(
                lambda: sum(1 for _ in backend.inner.page_ids()),
                latched=False,
            )
            return {
                "stream": stream_id,
                "lsn": backend.lsn,
                "pages": pages,
                "meta": backend.metadata,
            }
        stream_id = field(payload, "stream", int)
        tap = self._repl_streams.get(stream_id)
        if tap is None:
            raise ProtocolError(
                f"unknown replication stream {stream_id}", code="bad-payload"
            )
        if action == "bye":
            del self._repl_streams[stream_id]
            backend.detach_tap(tap.tap_id)
            return {"ok": True}
        if action == "checkpoint":
            after = -1
            if isinstance(payload, dict) and payload.get("after") is not None:
                after = field(payload, "after", int)
            limit = 64
            if isinstance(payload, dict) and payload.get("limit") is not None:
                limit = field(payload, "limit", int)

            def chunk() -> Any:
                # Under the store's io_lock: the committed-image reads
                # share the page file's seeking handle with the pool's
                # and the snapshot machinery's backend hops.
                items: list[list[Any]] = []
                done = True
                with self._file.store.io_lock:
                    for pid, image in backend.committed_pages():
                        if pid <= after:
                            continue
                        if len(items) >= limit:
                            done = False
                            break
                        items.append([pid, image])
                return {
                    "pages": items,
                    "next": items[-1][0] if items else after,
                    "done": done,
                }

            # Under the gate's shared side: the commit window applies
            # pending images to the inner file, so excluding it keeps
            # the enumeration on one committed state.
            return await self._run_read(chunk, latched=False)
        if action == "tail":
            batches = [
                [b["lsn"], [[op, pid, image] for op, pid, image in b["ops"]],
                 b["meta"]]
                for b in tap.drain()
            ]
            self.metrics.repl_batches_shipped += len(batches)
            return {
                "batches": batches,
                "lsn": backend.lsn,
                "overflowed": tap.overflowed,
            }
        raise ProtocolError(
            f"unknown replication action {action!r}", code="bad-payload"
        )

    def _topology(self) -> dict[str, Any]:
        """The degenerate one-shard topology: a plain server owns the
        whole z keyspace, so routing clients can treat it uniformly."""
        index = self._file.index
        z_high = (1 << sum(index.widths)) - 1
        shard: dict[str, Any] = {
            "shard": 0,
            "z_low": 0,
            "z_high": z_high,
            "keys": len(index),
        }
        try:
            host, port = self.address
        except ProtocolError:
            pass
        else:
            shard["host"], shard["port"] = host, port
        return {
            "role": "server",
            "epoch": 0,
            "boundaries": [],
            "shards": [shard],
        }

    def _stats(self) -> dict[str, Any]:
        index = self._file.index
        store = self._file.store
        stats: dict[str, Any] = {
            "scheme": type(index).__name__,
            "dims": index.dims,
            "widths": list(index.widths),
            "page_capacity": index.page_capacity,
            "keys": len(index),
            "directory_size": index.directory_size,
            "data_pages": index.data_page_count,
            "load_factor": index.load_factor,
            "store": {
                "logical_reads": store.stats.reads,
                "logical_writes": store.stats.writes,
                "backend_reads": store.backend_stats.reads,
                "backend_writes": store.backend_stats.writes,
            },
            "server": self.metrics.snapshot(),
            "admission": {
                "inflight": self.admission.inflight,
                "max_inflight": self.admission.max_inflight,
                "per_session": self.admission.per_session,
                "underflows": self.admission.underflows,
            },
            # The sharded bench's critical-path metric: CPU consumed by
            # this server's process, attributable per shard worker.
            "process": {
                "pid": os.getpid(),
                "cpu_seconds": time.process_time(),
            },
        }
        backend = store.backend
        if isinstance(backend, WALBackend):
            stats["wal"] = {
                "commits": backend.checkpoints,
                "records": backend.wal_records,
                "replayed_ops": backend.replayed_ops,
                "lsn": backend.lsn,
                "taps": backend.tap_count,
            }
        return stats
