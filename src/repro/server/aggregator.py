"""The write-coalescing aggregator: N concurrent writers, ~1 commit.

Every served mutation (``INSERT``, ``DELETE``, ``INSERT_MANY``,
``DELETE_MANY``) flows through one instance of :class:`WriteAggregator`
— the repo lint (REP106) forbids any other service-layer code from
calling an index mutation method.  The aggregator is what turns PR 4's
group commit into a *service-level* win: a single client pays one WAL
COMMIT per mutation, but N clients whose mutations arrive within one
micro-batch window share a single
:meth:`~repro.storage.disk.PageStore.group` scope — one COMMIT record,
one durability flush, for the whole window (Conway & Farach-Colton's
amortize-across-the-batch argument, applied at the service boundary).

Mechanics
---------

Mutations are enqueued as ``(op, future)`` pairs.  A single drain task
takes the first pending op, sleeps the micro-batch window (default 2 ms)
to let concurrent arrivals pile up, then drains up to ``max_batch`` ops
and applies them in one executor hop:

* the batch runs under the service gate's **exclusive** side, so no
  read is in flight anywhere while the index restructures;
* inside ``store.group(metadata=...)``, each *single* mutation is
  applied under the store latch's exclusive side (``acquire_write``
  with a timeout: a stuck latch becomes a per-op ``latch-timeout``
  backpressure error, not a hung server); the ``_many`` forms take
  their own nested group and latch scopes, which nest transparently;
* key-level failures (duplicate key, missing key, bad dimensions) are
  caught per op — the index stays consistent, the op's future gets the
  error, and the window keeps going;
* a structural failure stops the window: the remaining ops fail with
  ``aborted``, and the already-applied prefix still commits (matching
  the batch executors' z-order-prefix partial-failure contract);
* if the commit itself fails, *every* op in the window — including ones
  applied in memory — is failed: an acknowledgement is a durability
  promise, and none was kept.

The caller observes its own result only; coalescing is invisible except
in the commit count, which is exactly what the ``served`` bench cell
gates (commits per mutation < 1 at concurrency >= 8).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from typing import Any, Callable

from repro.core.facade import MultiKeyFile
from repro.errors import (
    CapacityError,
    DuplicateKeyError,
    EncodingError,
    KeyDimensionError,
    KeyNotFoundError,
    LatchTimeout,
    ProtocolError,
    StorageError,
)
from repro.server import protocol
from repro.server.admission import ReadWriteGate
from repro.server.metrics import ServerMetrics
from repro.server.protocol import Opcode

#: Failures that leave the index consistent: the op's future gets the
#: error, the rest of the commit window proceeds.
_KEY_LEVEL_ERRORS = (
    DuplicateKeyError,
    KeyNotFoundError,
    KeyDimensionError,
    EncodingError,
    CapacityError,
    LatchTimeout,
    ProtocolError,
)

#: Seconds the drain loop leaves the window open for concurrent
#: mutations to pile up before committing the batch.
DEFAULT_WINDOW = 0.002
#: Mutations per coalesced group commit, at most.
DEFAULT_MAX_BATCH = 64

#: The one INSERT success reply — goes straight to the frame encoder,
#: so one shared instance saves a dict allocation per acked insert.
_INSERT_OK = {"ok": True}


class _Op:
    """One pending mutation: a bound apply thunk plus its future."""

    __slots__ = ("apply", "single", "future", "outcome", "ops")

    def __init__(
        self,
        apply: Callable[[], Any],
        single: bool,
        future: "asyncio.Future[Any]",
        ops: list[tuple[str, Any, Any]],
    ) -> None:
        self.apply = apply
        self.single = single
        self.future = future
        self.outcome: tuple[str, Any] | None = None
        #: Key-level description of the mutation — ``("put", key, value)``
        #: / ``("del", key, None)`` tuples in application order — so a
        #: committed-window observer (migration tailing) can replay it
        #: without re-parsing the payload.
        self.ops = ops


class WriteAggregator:
    """Coalesce concurrently-submitted mutations into group commits."""

    def __init__(
        self,
        file: MultiKeyFile,
        gate: ReadWriteGate,
        metrics: ServerMetrics,
        executor: Executor | None = None,
        window: float = DEFAULT_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        latch_timeout: float | None = 5.0,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if window < 0:
            raise ValueError("window must be >= 0 seconds")
        self._file = file
        self._gate = gate
        self._metrics = metrics
        self._executor = executor
        self._window = window
        self._max_batch = max_batch
        self._latch_timeout = latch_timeout
        self._queue: "asyncio.Queue[_Op | None]" = asyncio.Queue()
        self._drain_task: asyncio.Task | None = None
        self._stopping = False
        #: Committed-window observers: ``fn(committed_ops, tainted)``
        #: called on the event loop after a window's group commit
        #: succeeds and *before* any of its futures resolve — whatever a
        #: client has been acked, an observer has been shown first.
        #: ``tainted`` flags a window whose committed key set may exceed
        #: the published ops (a ``_many`` op failed after applying a
        #: prefix); migration treats a tainted tap as "re-verify by
        #: digest, do not trust the delta stream alone".
        self._observers: list[Callable[[list[tuple[str, Any, Any]], bool], None]] = []

    # -- committed-window observation (event loop side) ---------------------

    def add_observer(
        self, fn: Callable[[list[tuple[str, Any, Any]], bool], None]
    ) -> None:
        """Register a committed-window observer (see ``_observers``)."""
        self._observers.append(fn)

    def remove_observer(
        self, fn: Callable[[list[tuple[str, Any, Any]], bool], None]
    ) -> None:
        try:
            self._observers.remove(fn)
        except ValueError:
            pass

    def _publish_window(self, batch: list[_Op]) -> None:
        """Show a committed window to observers before acking it.

        Only ops whose outcome is ``ok`` are published — a key-level
        failure applied nothing.  An errored ``_many`` op *may* have
        applied a z-order prefix (the batch executors' partial-failure
        contract), and a structurally-failed single op may have mutated
        before raising; both taint the stream rather than guess.
        """
        if not self._observers:
            return
        committed: list[tuple[str, Any, Any]] = []
        tainted = False
        for op in batch:
            status, result = op.outcome or ("err", None)
            if status == "ok":
                committed.extend(op.ops)
            elif not op.single or not isinstance(result, _KEY_LEVEL_ERRORS):
                tainted = True
        if committed or tainted:
            for observer in list(self._observers):
                observer(committed, tainted)

    # -- submission (event loop side) ---------------------------------------

    def start(self) -> None:
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain(), name="repro-write-aggregator"
            )

    async def stop(self) -> None:
        """Drain every queued mutation (final group commit) and stop."""
        self._stopping = True
        if self._drain_task is not None:
            await self._queue.put(None)
            await self._drain_task
            self._drain_task = None
        # A submit that raced the sentinel would never be drained: fail
        # it cleanly rather than leaving its future pending forever.
        while True:
            try:
                op = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if op is not None and not op.future.cancelled():
                op.future.set_exception(
                    ProtocolError(
                        "server drained before this mutation was applied",
                        code="shutting-down",
                    )
                )

    def submit_nowait(self, opcode: int, payload: Any) -> "asyncio.Future[Any]":
        """Enqueue one mutation; the returned future resolves with its
        reply payload.

        Payload shape errors raise immediately (before the op enters a
        commit window); apply-time errors resolve the future with the
        exception, exactly as the index would have raised it.  This is
        the session fast path: no wrapping coroutine, the reply is
        framed straight from the future's done-callback.
        """
        if self._stopping:
            raise ProtocolError(
                "server is draining, retry elsewhere", code="shutting-down"
            )
        op = self._parse(opcode, payload)
        self._metrics.mutations_submitted += 1
        self.start()
        self._queue.put_nowait(op)
        return op.future

    async def submit(self, opcode: int, payload: Any) -> Any:
        """Enqueue one mutation and await its reply payload."""
        return await self.submit_nowait(opcode, payload)

    def _parse(self, opcode: int, payload: Any) -> _Op:
        """Validate the payload and bind the apply thunk."""
        file = self._file
        ops: list[tuple[str, Any, Any]]
        if opcode == Opcode.INSERT:
            key = protocol.key_field(payload)
            value = payload.get("value") if isinstance(payload, dict) else None
            ok = _INSERT_OK  # shared reply: encoded, never mutated

            def apply() -> Any:
                file.insert(key, value)
                return ok

            single = True
            ops = [("put", key, value)]
        elif opcode == Opcode.DELETE:
            key = protocol.key_field(payload)

            def apply() -> Any:
                return {"value": file.delete(key)}

            single = True
            ops = [("del", key, None)]
        elif opcode == Opcode.INSERT_MANY:
            pairs = protocol.field(payload, "pairs", list)
            for pair in pairs:
                if not isinstance(pair, list) or len(pair) != 2 \
                        or not isinstance(pair[0], list):
                    raise ProtocolError(
                        "pairs must be [[key, value], ...]",
                        code="bad-payload",
                    )

            def apply() -> Any:
                return {"inserted": file.insert_many(
                    [(key, value) for key, value in pairs]
                )}

            single = False
            ops = [("put", key, value) for key, value in pairs]
        elif opcode == Opcode.DELETE_MANY:
            keys = protocol.field(payload, "keys", list)
            for key in keys:
                if not isinstance(key, list):
                    raise ProtocolError(
                        "keys must be [key, ...]", code="bad-payload"
                    )

            def apply() -> Any:
                return {"values": file.delete_many(keys)}

            single = False
            ops = [("del", key, None) for key in keys]
        else:
            raise ProtocolError(
                f"opcode {opcode} is not a mutation", code="bad-opcode"
            )
        future: "asyncio.Future[Any]" = (
            asyncio.get_running_loop().create_future()
        )
        return _Op(apply, single, future, ops)

    # -- the drain loop -------------------------------------------------------

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is None:
                return
            batch = [first]
            if self._window > 0 and self._queue.empty():
                # The micro-batch window: let concurrently-arriving
                # mutations join this commit.  Skipped when the queue
                # already holds company for this op — sleeping would
                # only add latency, not coalescing.
                await asyncio.sleep(self._window)
            stop_after = False
            while len(batch) < self._max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    stop_after = True
                    break
                batch.append(nxt)
            async with self._gate.write_locked():
                try:
                    await loop.run_in_executor(
                        self._executor, self._apply_window, batch
                    )
                except BaseException as exc:  # commit failure: fail all
                    for op in batch:
                        op.outcome = ("err", exc)
            # Publish the committed window *before* resolving futures:
            # an acked write has always been shown to every observer.
            self._publish_window(batch)
            applied = 0
            for op in batch:
                status, result = op.outcome or (
                    "err",
                    StorageError("mutation window produced no outcome"),
                )
                if op.future.cancelled():
                    continue
                if status == "ok":
                    applied += 1
                    op.future.set_result(result)
                else:
                    self._metrics.mutation_errors += 1
                    op.future.set_exception(result)
            self._metrics.mutations_applied += applied
            if applied:
                self._metrics.record_group(len(batch))
            if stop_after:
                return

    # -- batch application (executor thread) ----------------------------------

    def _apply_window(self, batch: list[_Op]) -> None:
        """Apply one coalesced window under a single group commit.

        Runs in an executor thread while the event loop holds the
        service gate's exclusive side, so no served read can observe a
        half-applied window.  Single ops additionally hold the store
        latch's exclusive side (with a timeout) against non-service
        readers; the ``_many`` forms manage their own nested latch and
        group scopes.
        """
        store = self._file.store
        index = self._file.index
        aborted: BaseException | None = None
        with store.group(metadata=index._commit_metadata):
            for op in batch:
                if aborted is not None:
                    op.outcome = (
                        "err",
                        StorageError(
                            "aborted: an earlier mutation in the same "
                            f"commit window failed structurally ({aborted})"
                        ),
                    )
                    continue
                try:
                    if op.single:
                        with store.latch.write(timeout=self._latch_timeout):
                            result = op.apply()
                    else:
                        result = op.apply()
                    op.outcome = ("ok", result)
                except _KEY_LEVEL_ERRORS as exc:
                    op.outcome = ("err", exc)
                except BaseException as exc:
                    op.outcome = ("err", exc)
                    aborted = exc
