"""Admission control and read/write scheduling for the query server.

Two primitives, both event-loop-confined (single-threaded, no locks):

* :class:`AdmissionController` — a bounded in-flight request budget.
  Admission is *non-blocking*: a request that does not fit is rejected
  immediately with a 503-style code (``busy`` globally,
  ``pipeline-limit`` per session) instead of queueing unboundedly.  The
  client retries; the server's memory stays bounded.
* :class:`ReadWriteGate` — an async many-readers/one-writer gate, the
  event-loop counterpart of the store's thread-level
  :class:`~repro.storage.latch.ReadWriteLatch`.  Reads (point lookups,
  parallel range scans) share it; the write aggregator takes the
  exclusive side per coalesced batch, so index-restructuring mutations
  never interleave with a fanned-out scan.  Writer-preferring, same as
  the storage latch: a pending batch blocks new readers so a stream of
  scans cannot starve writes.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import AsyncIterator

from repro.sanitize.hooks import sanitize_enabled as _sanitize_enabled


class AdmissionController:
    """Bounded in-flight budget: global and per-session.

    ``release`` is the teardown-racing hot spot: a session closing while
    one of its requests completes can double-release a slot.  An
    unmatched release must not drive the budget negative — that would
    silently raise effective capacity forever — so underflow is clamped,
    counted in :attr:`underflows`, and escalated to an
    :class:`~repro.errors.InvariantViolation` under ``REPRO_SANITIZE``.
    """

    def __init__(self, max_inflight: int = 64, per_session: int = 16) -> None:
        if max_inflight < 1 or per_session < 1:
            raise ValueError("admission limits must be >= 1")
        self.max_inflight = max_inflight
        self.per_session = per_session
        self._inflight = 0
        self._by_session: dict[int, int] = {}
        #: Release calls with no matching admit (clamped, not applied).
        self.underflows = 0

    @property
    def inflight(self) -> int:
        return self._inflight

    def try_admit(self, session_id: int) -> str | None:
        """Admit one request, or return the rejection code.

        ``pipeline-limit`` when this session already has its fill of
        outstanding requests, ``busy`` when the server as a whole does.
        """
        if self._by_session.get(session_id, 0) >= self.per_session:
            return "pipeline-limit"
        if self._inflight >= self.max_inflight:
            return "busy"
        self._inflight += 1
        self._by_session[session_id] = self._by_session.get(session_id, 0) + 1
        return None

    def release(self, session_id: int) -> None:
        """Return one slot admitted for ``session_id``.

        A release with no matching admit — the global count at zero or
        the session holding no slots — is an accounting bug in the
        caller: it is counted and clamped (never applied), and raises
        under sanitized runs so the race is caught in CI instead of
        silently widening the budget in production.
        """
        held = self._by_session.get(session_id, 0)
        if self._inflight <= 0 or held <= 0:
            self.underflows += 1
            self._by_session.pop(session_id, None)
            if _sanitize_enabled():
                from repro.errors import InvariantViolation

                raise InvariantViolation(
                    f"release without matching admit (session {session_id}, "
                    f"inflight={self._inflight}, session slots={held})",
                    invariant="admission-balance",
                    scheme="AdmissionController",
                )
            return
        self._inflight -= 1
        if held > 1:
            self._by_session[session_id] = held - 1
        else:
            self._by_session.pop(session_id, None)

    def forget_session(self, session_id: int) -> None:
        """Drop a closed session's book-keeping (its in-flight requests
        release themselves as they finish)."""
        if self._by_session.get(session_id) == 0:
            self._by_session.pop(session_id, None)


class ReadWriteGate:
    """Async many-readers / one-writer gate; writer-preferring."""

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextlib.asynccontextmanager
    async def read_locked(self) -> AsyncIterator[None]:
        """Hold the shared side for an ``async with`` block."""
        async with self._cond:
            while self._writer_active or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextlib.asynccontextmanager
    async def write_locked(self) -> AsyncIterator[None]:
        """Hold the exclusive side for an ``async with`` block."""
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            async with self._cond:
                self._writer_active = False
                self._cond.notify_all()

    @property
    def active_readers(self) -> int:
        return self._readers

    @property
    def writer_idle(self) -> bool:
        """True when the exclusive side is neither held nor requested.

        The inline read path checks this synchronously on the event
        loop: with no writer active or queued, a read completing within
        the same callback cannot overlap a commit window, so it may skip
        the full gate protocol.
        """
        return not (self._writer_active or self._writers_waiting)
