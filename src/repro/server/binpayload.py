"""Protocol v3 payload bodies: tagged binary with a JSON escape hatch.

A v3 frame's payload starts with one *format byte*:

* ``0x02`` — the payload object in the tagged binary encoding of
  :mod:`repro.storage.binval` (pickle disabled in both directions: a
  frame crossed a trust boundary, so the pickle tag is refused rather
  than executed);
* ``0x01`` — UTF-8 JSON, exactly the v1/v2 body.  The encoder falls
  back to this when a payload holds a value outside the tagged
  universe, so v3 never loses expressiveness over v2 — it only stops
  paying ``json.dumps``/``loads`` per hot operation.

This module and :mod:`repro.server.protocol` are the only service-layer
files allowed to touch :mod:`json` (lint rule REP107): every other
server module is on the hot path and must go through these codecs.
"""

from __future__ import annotations

import json
from typing import Any, Union

from repro.errors import ProtocolError, SerializationError
from repro.storage import binval

Buffer = Union[bytes, bytearray, memoryview]

#: Payload format bytes (an empty payload has no body at all).
FORMAT_JSON = 0x01
FORMAT_BINARY = 0x02


def encode_payload(payload: Any) -> bytes:
    """One v3 payload body: format byte + encoded object."""
    out = bytearray(1)
    out[0] = FORMAT_BINARY
    try:
        binval.encode_into(out, payload, pickle_fallback=False)
    except SerializationError:
        return b"\x01" + json.dumps(
            payload, separators=(",", ":")
        ).encode("utf-8")
    return bytes(out)


def decode_payload(raw: Buffer) -> Any:
    """Invert :func:`encode_payload`; raises ``bad-payload`` on garbage."""
    try:
        fmt = raw[0]
        if fmt == FORMAT_BINARY:
            return binval.decode(raw[1:], allow_pickle=False)
        if fmt == FORMAT_JSON:
            return json.loads(bytes(raw[1:]).decode("utf-8"))
    except (SerializationError, UnicodeDecodeError,
            json.JSONDecodeError) as exc:
        raise ProtocolError(
            f"undecodable v3 payload: {exc}", code="bad-payload"
        ) from None
    raise ProtocolError(
        f"unknown v3 payload format byte {fmt:#x}", code="bad-payload"
    )


def canonical_blob(key: Any, value: Any) -> bytes:
    """The migration digest's canonical record encoding.

    Deliberately *stays* JSON: both ends of a digest comparison must
    produce byte-identical blobs across library versions, and the JSON
    form is the one PR 8's migrators already hash.
    """
    return json.dumps(
        [key, value], separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
