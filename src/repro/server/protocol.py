"""The wire protocol: length-prefixed, versioned binary frames.

Version 1 frame layout (all integers little-endian)::

    u32  body length                  (frame = 4-byte prefix + body)
    u8   protocol version             (1)
    u8   opcode                       (Opcode)
    u32  request id                   (client-chosen; echoed in replies)
    ...  payload                      (UTF-8 JSON, possibly empty)

Version 2 inserts a topology epoch between the request id and the
payload::

    u32  body length
    u8   protocol version             (2)
    u8   opcode
    u32  request id
    u32  topology epoch               (0 = "not asserting an epoch")
    ...  payload

The epoch is the sharding layer's staleness fence: a
:class:`~repro.server.router.ShardRouter` stamps every reply with its
current topology epoch, and a v2 client echoes the last epoch it saw on
each data request.  A request carrying a stale non-zero epoch is
rejected with ``stale-topology`` — the error reply's header already
carries the new epoch, so the client refreshes and retries without a
round trip.  Servers that do not shard (a plain ``QueryServer``) run at
epoch 0 and never reject.  Both endpoints speak both versions; the
:func:`negotiated_version` helper picks the highest shared one from a
``PING`` reply's ``versions`` list.

The length prefix counts the body (version byte onward) and is capped at
:data:`MAX_FRAME`; a larger claim is rejected before any allocation — a
garbage prefix must never buffer gigabytes.  Requests and replies share
the layout; a reply echoes the request id and carries either
:attr:`Opcode.REPLY_OK` with a result object or :attr:`Opcode.REPLY_ERR`
with a structured ``{"code", "message"}`` payload.  JSON keeps the
payloads debuggable and covers every value the
:class:`~repro.encoding.KeyCodec` attribute types round-trip through.

Pipelining: a client may send any number of frames before reading
replies (bounded by the server's per-session limit); replies may arrive
out of order, matched by request id.

Error codes travel as short stable strings (``duplicate-key``,
``key-not-found``, ``busy``, ``bad-payload``, ...) so clients can map
them back to the :mod:`repro.errors` hierarchy without parsing prose.
The ``busy`` family (``busy``, ``pipeline-limit``, ``latch-timeout``,
``shutting-down``) is the 503-style backpressure surface: retryable,
never fatal, never queued unboundedly on the server.  ``shard-down``
and ``stale-topology`` are the routing layer's structured failures:
the first is a dead upstream surfaced instead of a hang, the second is
handled transparently by the client as described above.

Version 3 keeps the v2 header and replaces the payload *encoding*: the
body after the header starts with a format byte — ``0x02`` for the
tagged binary encoding of :mod:`repro.server.binpayload`, ``0x01`` for
the JSON fallback — so the hot operations stop paying
``json.dumps``/``loads`` per frame while anything the binary codec
cannot carry still travels as JSON.  A ``PING`` reply additionally
advertises ``max_frame``, the server's frame-body cap; after
negotiation both endpoints frame and accept bodies up to that size
instead of the default :data:`MAX_FRAME`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import enum
import json
import struct
from typing import Any

from repro.errors import (
    CapacityError,
    DuplicateKeyError,
    EncodingError,
    InvariantViolation,
    KeyDimensionError,
    KeyNotFoundError,
    LatchTimeout,
    ProtocolError,
    SerializationError,
    StorageError,
)
# A submodule import (not an attribute of the package) so the circular
# ``repro.server`` package init resolves; binpayload imports nothing
# from this module.
from repro.server import binpayload

PROTOCOL_VERSION = 1
#: Highest protocol version this build speaks (v2 adds the epoch field
#: and the TOPOLOGY/ROUTE opcodes; v3 adds binary payload bodies).
PROTOCOL_VERSION_MAX = 3
#: Every version both endpoints of this build can frame.
SUPPORTED_VERSIONS: tuple[int, ...] = (1, 2, 3)
#: Default cap on a frame body; larger length prefixes are garbage.
#: Endpoints may negotiate a different cap (the server's ``max_frame``
#: config, advertised in its PING reply) — every framing entry point
#: below takes an optional override.
MAX_FRAME = 1 << 20

_LEN = struct.Struct("<I")
_HEAD = struct.Struct("<BBI")  # v1: version, opcode, request id
_HEAD2 = struct.Struct("<BBII")  # v2: version, opcode, request id, epoch
_ID_LIMIT = 1 << 32  # request ids and epochs are u32 on the wire


class Opcode(enum.IntEnum):
    """Request and reply opcodes."""

    PING = 1
    INSERT = 2
    SEARCH = 3
    DELETE = 4
    INSERT_MANY = 5
    SEARCH_MANY = 6
    DELETE_MANY = 7
    RANGE = 8
    STATS = 9
    TOPOLOGY = 10
    ROUTE = 11
    MIGRATE = 12
    #: Replication stream control (v3): ``hello`` attaches a WAL tap
    #: and reports the checkpoint size, ``checkpoint`` pages committed
    #: images to a bootstrapping follower, ``tail`` drains committed
    #: batches, ``bye`` detaches.  Read-side: never enters the write
    #: aggregator.
    REPL = 13
    REPLY_OK = 128
    REPLY_ERR = 129


#: Opcodes that mutate the index — these must flow through the write
#: aggregator; everything else is a read and fans out.
MUTATION_OPCODES = frozenset(
    (Opcode.INSERT, Opcode.DELETE, Opcode.INSERT_MANY, Opcode.DELETE_MANY)
)

#: Exception class -> wire error code.  First match wins (subclasses
#: before bases: LatchTimeout is not a StorageError but Serialization
#: and Crash errors are).
_ERROR_CODES: tuple[tuple[type, str], ...] = (
    (DuplicateKeyError, "duplicate-key"),
    (KeyNotFoundError, "key-not-found"),
    (KeyDimensionError, "bad-key"),
    (EncodingError, "bad-key"),
    (CapacityError, "capacity"),
    (LatchTimeout, "latch-timeout"),
    (InvariantViolation, "invariant"),
    (SerializationError, "storage"),
    (StorageError, "storage"),
    (ProtocolError, "bad-payload"),
)

#: Codes the client should treat as retryable backpressure (503-style).
BUSY_CODES = frozenset(
    ("busy", "pipeline-limit", "latch-timeout", "shutting-down")
)


def error_code(exc: BaseException) -> str:
    """The wire code for an exception raised while serving a request.

    An exception carrying a string ``code`` attribute (``ProtocolError``,
    ``ShardDownError``, ``StaleTopologyError``, a client-side
    ``RemoteError`` being re-raised by the router) keeps that code —
    this is what lets a structured error round-trip shard → router →
    client without collapsing to ``internal``.
    """
    code = getattr(exc, "code", None)
    if isinstance(code, str) and code:
        return code
    for cls, wire_code in _ERROR_CODES:
        if isinstance(exc, cls):
            return wire_code
    return "internal"


def encode_frame(
    opcode: int,
    request_id: int,
    payload: Any = None,
    *,
    version: int = PROTOCOL_VERSION,
    epoch: int = 0,
    max_frame: int | None = None,
) -> bytes:
    """Serialize one frame (length prefix included).

    ``version=1`` produces the legacy header; ``version=2`` appends the
    topology ``epoch``; ``version=3`` keeps the v2 header and encodes
    the payload through :mod:`repro.server.binpayload`.  Request ids
    and epochs must fit ``u32``.  ``max_frame`` overrides the default
    body cap when the endpoints negotiated one.
    """
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"cannot encode protocol version {version}", code="bad-version"
        )
    if not 0 <= request_id < _ID_LIMIT:
        raise ProtocolError(
            f"request id {request_id} outside [0, 2^32)", code="bad-frame"
        )
    if version == 1:
        body = _HEAD.pack(version, opcode, request_id)
    else:
        body = _HEAD2.pack(version, opcode, request_id, epoch % _ID_LIMIT)
    if payload is not None:
        if version >= 3:
            body += binpayload.encode_payload(payload)
        else:
            body += json.dumps(payload, separators=(",", ":")).encode("utf-8")
    limit = MAX_FRAME if max_frame is None else max_frame
    if len(body) > limit:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{limit}-byte limit",
            code="oversized",
        )
    return _LEN.pack(len(body)) + body


def encode_error(
    request_id: int,
    code: str,
    message: str,
    *,
    version: int = PROTOCOL_VERSION,
    epoch: int = 0,
    max_frame: int | None = None,
) -> bytes:
    """Serialize a structured error reply."""
    return encode_frame(
        Opcode.REPLY_ERR,
        request_id,
        {"code": code, "message": message},
        version=version,
        epoch=epoch,
        max_frame=max_frame,
    )


@dataclasses.dataclass(frozen=True)
class Frame:
    """One decoded frame body."""

    version: int
    opcode: int
    request_id: int
    payload: Any
    epoch: int = 0


def decode_frame(body: bytes) -> Frame:
    """Parse a frame body of any supported version.

    Raises :class:`~repro.errors.ProtocolError` (with a structured code)
    on a truncated header, an unknown version, or an undecodable
    payload.  An unknown-but-well-formed opcode is returned as-is — the
    dispatcher replies ``bad-opcode`` at the request level, keeping the
    stream usable.
    """
    if len(body) < 1:
        raise ProtocolError("empty frame body", code="bad-frame")
    version = body[0]
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"protocol version {version} is not supported "
            f"(this endpoint speaks {list(SUPPORTED_VERSIONS)})",
            code="bad-version",
        )
    head = _HEAD if version == 1 else _HEAD2
    if len(body) < head.size:
        raise ProtocolError(
            f"frame body of {len(body)} bytes is shorter than the "
            f"{head.size}-byte v{version} header",
            code="bad-frame",
        )
    epoch = 0
    if version == 1:
        _, opcode, request_id = _HEAD.unpack_from(body, 0)
    else:
        _, opcode, request_id, epoch = _HEAD2.unpack_from(body, 0)
    raw = body[head.size :]
    payload: Any = None
    if raw:
        if version >= 3:
            payload = binpayload.decode_payload(raw)
        else:
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(
                    f"undecodable frame payload: {exc}", code="bad-payload"
                ) from None
    return Frame(version, opcode, request_id, payload, epoch)


def decode_body(body: bytes) -> tuple[int, int, Any]:
    """Parse a frame body into ``(opcode, request_id, payload)``.

    The version-1-era entry point, kept for callers that predate the
    epoch field; it accepts any supported version and drops the epoch.
    """
    frame = decode_frame(body)
    return frame.opcode, frame.request_id, frame.payload


def negotiated_version(ping_reply: Any) -> int:
    """The highest protocol version shared with a peer, from its ``PING``
    reply.  A peer that does not advertise ``versions`` is a v1 server.
    """
    if not isinstance(ping_reply, dict):
        return 1
    advertised = ping_reply.get("versions")
    if not isinstance(advertised, list):
        return 1
    shared = [
        v for v in advertised if isinstance(v, int) and v in SUPPORTED_VERSIONS
    ]
    return max(shared, default=1)


def negotiated_max_frame(ping_reply: Any) -> int:
    """The frame-body cap a peer advertises in its ``PING`` reply.

    A peer that advertises nothing (or garbage) runs at the default
    :data:`MAX_FRAME` — exactly what every pre-v3 build enforces.
    """
    if not isinstance(ping_reply, dict):
        return MAX_FRAME
    advertised = ping_reply.get("max_frame")
    if not isinstance(advertised, int) or advertised < 1:
        return MAX_FRAME
    return advertised


class FrameReader:
    """Buffered frame splitter for a connection's read loop.

    :func:`read_frame` suspends twice per frame (prefix, body); under a
    pipelined burst the peer delivers many frames per TCP segment, so a
    per-connection buffer turns those suspensions into one ``read()``
    per segment and plain slicing per frame.  Error semantics match
    :func:`read_frame` exactly: ``None`` on clean EOF at a frame
    boundary, ``bad-frame`` on truncation, ``oversized`` past the cap.
    """

    __slots__ = ("_reader", "_buf", "_pos")

    #: Bytes requested per stream read — large enough to swallow a
    #: whole pipelined burst in one syscall.
    _CHUNK = 1 << 16

    def __init__(self, reader: asyncio.StreamReader) -> None:
        self._reader = reader
        self._buf = bytearray()
        self._pos = 0

    async def next_frame(self, max_frame: int | None = None) -> bytes | None:
        """One frame body (``max_frame`` may change between calls: the
        session tightens it after negotiation)."""
        limit = MAX_FRAME if max_frame is None else max_frame
        buf = self._buf
        prefix_size = _LEN.size
        while True:
            avail = len(buf) - self._pos
            if avail >= prefix_size:
                (length,) = _LEN.unpack_from(buf, self._pos)
                if length == 0 or length > limit:
                    raise ProtocolError(
                        f"frame length {length} outside (0, {limit}]",
                        code="oversized" if length else "bad-frame",
                    )
                if avail >= prefix_size + length:
                    start = self._pos + prefix_size
                    end = start + length
                    body = bytes(buf[start:end])
                    if end == len(buf):
                        buf.clear()
                        self._pos = 0
                    elif end >= self._CHUNK:
                        del buf[:end]
                        self._pos = 0
                    else:
                        self._pos = end
                    return body
            chunk = await self._reader.read(self._CHUNK)
            if not chunk:
                if avail == 0:
                    return None  # clean EOF at a frame boundary
                raise ProtocolError(
                    "truncated frame body"
                    if avail >= prefix_size
                    else "truncated length prefix",
                    code="bad-frame",
                )
            buf += chunk


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int | None = None
) -> bytes | None:
    """Read one frame body from the stream.

    Returns ``None`` on a clean EOF at a frame boundary.  Raises
    :class:`~repro.errors.ProtocolError` on an oversized or zero length
    prefix or a mid-frame truncation — the connection cannot be resynced
    after either, so the session replies once and closes.  ``max_frame``
    overrides the default body cap when the endpoints negotiated one.
    """
    limit = MAX_FRAME if max_frame is None else max_frame
    try:
        # readexactly, not read(n): a length prefix may straddle a TCP
        # segment boundary (routine once peers batch many frames into
        # one write), and a short read here is not a protocol error.
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF at a frame boundary
        raise ProtocolError(
            "truncated length prefix", code="bad-frame"
        ) from None
    (length,) = _LEN.unpack(prefix)
    if length == 0 or length > limit:
        raise ProtocolError(
            f"frame length {length} outside (0, {limit}]",
            code="oversized" if length else "bad-frame",
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("truncated frame body", code="bad-frame") from None


# -- payload field validation -------------------------------------------------


def field(payload: Any, name: str, kind: type | None = None) -> Any:
    """Extract a required payload field, raising ``bad-payload`` errors
    a fuzzer cannot turn into a server crash."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"payload must be an object, got {type(payload).__name__}",
            code="bad-payload",
        )
    if name not in payload:
        raise ProtocolError(f"missing field {name!r}", code="bad-payload")
    value = payload[name]
    if kind is not None and not isinstance(value, kind):
        raise ProtocolError(
            f"field {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}",
            code="bad-payload",
        )
    return value


def key_field(payload: Any, name: str = "key") -> list:
    """A key vector: a JSON array of attribute values."""
    return field(payload, name, list)
