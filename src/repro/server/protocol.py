"""The wire protocol: length-prefixed, versioned binary frames.

Frame layout (all integers little-endian)::

    u32  body length                  (frame = 4-byte prefix + body)
    u8   protocol version             (PROTOCOL_VERSION = 1)
    u8   opcode                       (Opcode)
    u32  request id                   (client-chosen; echoed in replies)
    ...  payload                      (UTF-8 JSON, possibly empty)

The length prefix counts the body (version byte onward) and is capped at
:data:`MAX_FRAME`; a larger claim is rejected before any allocation — a
garbage prefix must never buffer gigabytes.  Requests and replies share
the layout; a reply echoes the request id and carries either
:attr:`Opcode.REPLY_OK` with a result object or :attr:`Opcode.REPLY_ERR`
with a structured ``{"code", "message"}`` payload.  JSON keeps the
payloads debuggable and covers every value the
:class:`~repro.encoding.KeyCodec` attribute types round-trip through.

Pipelining: a client may send any number of frames before reading
replies (bounded by the server's per-session limit); replies may arrive
out of order, matched by request id.

Error codes travel as short stable strings (``duplicate-key``,
``key-not-found``, ``busy``, ``bad-payload``, ...) so clients can map
them back to the :mod:`repro.errors` hierarchy without parsing prose.
The ``busy`` family (``busy``, ``pipeline-limit``, ``latch-timeout``,
``shutting-down``) is the 503-style backpressure surface: retryable,
never fatal, never queued unboundedly on the server.
"""

from __future__ import annotations

import asyncio
import enum
import json
import struct
from typing import Any

from repro.errors import (
    CapacityError,
    DuplicateKeyError,
    EncodingError,
    InvariantViolation,
    KeyDimensionError,
    KeyNotFoundError,
    LatchTimeout,
    ProtocolError,
    SerializationError,
    StorageError,
)

PROTOCOL_VERSION = 1
#: Hard cap on a frame body; larger length prefixes are garbage.
MAX_FRAME = 1 << 20

_LEN = struct.Struct("<I")
_HEAD = struct.Struct("<BBI")  # version, opcode, request id


class Opcode(enum.IntEnum):
    """Request and reply opcodes."""

    PING = 1
    INSERT = 2
    SEARCH = 3
    DELETE = 4
    INSERT_MANY = 5
    SEARCH_MANY = 6
    DELETE_MANY = 7
    RANGE = 8
    STATS = 9
    REPLY_OK = 128
    REPLY_ERR = 129


#: Opcodes that mutate the index — these must flow through the write
#: aggregator; everything else is a read and fans out.
MUTATION_OPCODES = frozenset(
    (Opcode.INSERT, Opcode.DELETE, Opcode.INSERT_MANY, Opcode.DELETE_MANY)
)

#: Exception class -> wire error code.  First match wins (subclasses
#: before bases: LatchTimeout is not a StorageError but Serialization
#: and Crash errors are).
_ERROR_CODES: tuple[tuple[type, str], ...] = (
    (DuplicateKeyError, "duplicate-key"),
    (KeyNotFoundError, "key-not-found"),
    (KeyDimensionError, "bad-key"),
    (EncodingError, "bad-key"),
    (CapacityError, "capacity"),
    (LatchTimeout, "latch-timeout"),
    (InvariantViolation, "invariant"),
    (SerializationError, "storage"),
    (StorageError, "storage"),
    (ProtocolError, "bad-payload"),
)

#: Codes the client should treat as retryable backpressure (503-style).
BUSY_CODES = frozenset(
    ("busy", "pipeline-limit", "latch-timeout", "shutting-down")
)


def error_code(exc: BaseException) -> str:
    """The wire code for an exception raised while serving a request."""
    if isinstance(exc, ProtocolError):
        return exc.code
    for cls, code in _ERROR_CODES:
        if isinstance(exc, cls):
            return code
    return "internal"


def encode_frame(opcode: int, request_id: int, payload: Any = None) -> bytes:
    """Serialize one frame (length prefix included)."""
    body = _HEAD.pack(PROTOCOL_VERSION, opcode, request_id)
    if payload is not None:
        body += json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME}-byte limit",
            code="oversized",
        )
    return _LEN.pack(len(body)) + body


def encode_error(request_id: int, code: str, message: str) -> bytes:
    """Serialize a structured error reply."""
    return encode_frame(
        Opcode.REPLY_ERR, request_id, {"code": code, "message": message}
    )


def decode_body(body: bytes) -> tuple[int, int, Any]:
    """Parse a frame body into ``(opcode, request_id, payload)``.

    Raises :class:`~repro.errors.ProtocolError` (with a structured code)
    on a truncated header, an unknown version, or an undecodable
    payload.  An unknown-but-well-formed opcode is returned as-is — the
    dispatcher replies ``bad-opcode`` at the request level, keeping the
    stream usable.
    """
    if len(body) < _HEAD.size:
        raise ProtocolError(
            f"frame body of {len(body)} bytes is shorter than the "
            f"{_HEAD.size}-byte header",
            code="bad-frame",
        )
    version, opcode, request_id = _HEAD.unpack_from(body, 0)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version} is not supported "
            f"(this server speaks {PROTOCOL_VERSION})",
            code="bad-version",
        )
    raw = body[_HEAD.size :]
    if not raw:
        return opcode, request_id, None
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            f"undecodable frame payload: {exc}", code="bad-payload"
        ) from None
    return opcode, request_id, payload


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame body from the stream.

    Returns ``None`` on a clean EOF at a frame boundary.  Raises
    :class:`~repro.errors.ProtocolError` on an oversized or zero length
    prefix or a mid-frame truncation — the connection cannot be resynced
    after either, so the session replies once and closes.
    """
    prefix = await reader.read(_LEN.size)
    if not prefix:
        return None
    if len(prefix) < _LEN.size:
        raise ProtocolError("truncated length prefix", code="bad-frame")
    (length,) = _LEN.unpack(prefix)
    if length == 0 or length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} outside (0, {MAX_FRAME}]",
            code="oversized" if length else "bad-frame",
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("truncated frame body", code="bad-frame") from None


# -- payload field validation -------------------------------------------------


def field(payload: Any, name: str, kind: type | None = None) -> Any:
    """Extract a required payload field, raising ``bad-payload`` errors
    a fuzzer cannot turn into a server crash."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"payload must be an object, got {type(payload).__name__}",
            code="bad-payload",
        )
    if name not in payload:
        raise ProtocolError(f"missing field {name!r}", code="bad-payload")
    value = payload[name]
    if kind is not None and not isinstance(value, kind):
        raise ProtocolError(
            f"field {name!r} must be {kind.__name__}, "
            f"got {type(value).__name__}",
            code="bad-payload",
        )
    return value


def key_field(payload: Any, name: str = "key") -> list:
    """A key vector: a JSON array of attribute values."""
    return field(payload, name, list)
