"""Service-layer counters, exposed over the ``STATS`` opcode.

All counters are mutated from the event loop thread only (handlers
update them before/after hopping to the executor), so plain integers
suffice — no locks.  The ``served`` bench cell reads
``mutations_applied`` and the WAL commit delta to assert the
write-coalescing claim (commits per mutation < 1 under concurrency).
"""

from __future__ import annotations

from typing import Any


class ServerMetrics:
    """Counters for one :class:`~repro.server.server.QueryServer`."""

    def __init__(self) -> None:
        self.connections_opened = 0
        self.connections_closed = 0
        self.requests_total = 0
        self.requests_by_opcode: dict[str, int] = {}
        self.replies_ok = 0
        self.replies_err = 0
        self.protocol_errors = 0
        self.busy_rejections = 0
        self.pipeline_rejections = 0
        self.drain_rejections = 0
        self.latch_timeouts = 0
        self.reads_served = 0
        #: Reads answered through the MVCC snapshot path (range scans,
        #: migration snapshots) — latch-free, never blocking a writer.
        self.snapshot_reads = 0
        #: Committed WAL batches shipped to replication streams.
        self.repl_batches_shipped = 0
        self.mutations_submitted = 0
        self.mutations_applied = 0
        self.mutation_errors = 0
        self.groups_committed = 0
        self.largest_group = 0

    def record_request(self, opcode_name: str) -> None:
        self.requests_total += 1
        self.requests_by_opcode[opcode_name] = (
            self.requests_by_opcode.get(opcode_name, 0) + 1
        )

    def record_group(self, size: int) -> None:
        """One coalesced write window was committed."""
        self.groups_committed += 1
        if size > self.largest_group:
            self.largest_group = size

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view for the ``STATS`` reply and the bench cell."""
        return {
            "connections_opened": self.connections_opened,
            "connections_closed": self.connections_closed,
            "requests_total": self.requests_total,
            "requests_by_opcode": dict(self.requests_by_opcode),
            "replies_ok": self.replies_ok,
            "replies_err": self.replies_err,
            "protocol_errors": self.protocol_errors,
            "busy_rejections": self.busy_rejections,
            "pipeline_rejections": self.pipeline_rejections,
            "drain_rejections": self.drain_rejections,
            "latch_timeouts": self.latch_timeouts,
            "reads_served": self.reads_served,
            "snapshot_reads": self.snapshot_reads,
            "repl_batches_shipped": self.repl_batches_shipped,
            "mutations_submitted": self.mutations_submitted,
            "mutations_applied": self.mutations_applied,
            "mutation_errors": self.mutation_errors,
            "groups_committed": self.groups_committed,
            "largest_group": self.largest_group,
        }
