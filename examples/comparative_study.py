"""Six multidimensional access methods, one workload, one table.

Runs the paper's three schemes plus the three related structures this
library also implements (grid file, K-D-B-tree, z-order mapping) over
the paper's skewed (normal) workload, prints a structural comparison,
replays a mixed read/write trace differentially across all of them, and
emits an SVG of each induced partition.  (For the one-level directory's
full catastrophe on *clustered* data — minutes of pointer rewriting —
see examples/geospatial_index.py, which feeds it only a sample.)

Run:  python examples/comparative_study.py [output-dir]
"""

import os
import sys
import tempfile

from repro import BMEHTree, GridFile, KDBTree, MDEH, MEHTree, ZOrderIndex
from repro.analysis import summarize, svg_partition
from repro.workloads import normal_keys, unique
from repro.workloads.trace import churn_trace, replay

SCHEMES = {
    "MDEH": MDEH,
    "MEH-tree": MEHTree,
    "BMEH-tree": BMEHTree,
    "grid file": GridFile,
    "K-D-B-tree": KDBTree,
    "z-order": ZOrderIndex,
}


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp()
    os.makedirs(out_dir, exist_ok=True)
    keys = unique(normal_keys(6_000, dims=2, seed=1986))
    print(f"{len(keys)} normal (skewed) keys (b = 8, width 31)\n")

    print(f"{'scheme':>12} {'sigma':>9} {'pages':>7} {'alpha':>7} "
          f"{'depth range':>12} {'lambda':>7}")
    indexes = {}
    for name, cls in SCHEMES.items():
        index = cls(2, 8, widths=31)
        for key in keys:
            index.insert(key)
        indexes[name] = index
        summary = summarize(index)
        before = index.store.stats.snapshot()
        for key in keys[:500]:
            index.search(key)
        lam = index.store.stats.delta(before).reads / 500
        print(
            f"{name:>12} {summary.directory_size:>9} {summary.data_pages:>7} "
            f"{summary.load_factor:>7.3f} "
            f"{summary.region_depth_min:>5}..{summary.region_depth_max:<5} "
            f"{lam:>7.2f}"
        )

    print("\ndifferential trace replay (2,000 mixed operations):")
    ops = churn_trace(2_000, dims=2, domain=1 << 31, seed=7)
    answer_sets = {}
    for name, index in indexes.items():
        report = replay(index, ops)
        answer_sets[name] = report.answers
        index.check_invariants()
    reference = next(iter(answer_sets.values()))
    agree = all(answers == reference for answers in answer_sets.values())
    print(f"  all {len(SCHEMES)} schemes agree on "
          f"{len(reference)} lookups: {agree}")
    assert agree

    print(f"\npartition SVGs in {out_dir}:")
    for name, index in indexes.items():
        slug = name.replace(" ", "_").replace("-", "_")
        path = f"{out_dir}/{slug}.svg"
        rectangles = svg_partition(index, path)
        print(f"  {path} ({rectangles} regions)")


if __name__ == "__main__":
    main()
