"""Durability: snapshots and byte-level page files.

Two storage paths below the indexes:

1. ``save_index`` / ``load_index`` — snapshot a whole live index
   (any scheme) into one file and restore it later;
2. ``FileBackend`` — a real fixed-size-slot page file driven through the
   struct-packed page codecs, with an LRU ``BufferPool`` on top.

Run:  python examples/persistence_demo.py
"""

import os
import tempfile

from repro import BMEHTree, BufferPool, FileBackend, PageStore
from repro.storage import DataPage, load_index, save_index
from repro.workloads import uniform_keys, unique


def snapshot_roundtrip(workdir: str) -> None:
    print("1. whole-index snapshot")
    index = BMEHTree(dims=2, page_capacity=8, widths=16)
    keys = unique(uniform_keys(3_000, 2, seed=11, domain=1 << 16))
    for i, key in enumerate(keys):
        index.insert(key, {"row": i})

    path = os.path.join(workdir, "bmeh.snap")
    save_index(index, path)
    size_kb = os.path.getsize(path) / 1024
    print(f"   saved {len(index)} records, "
          f"{index.node_count} nodes -> {size_kb:.0f} KiB")

    restored = load_index(path)
    restored.check_invariants()
    assert restored.search(keys[42]) == {"row": 42}
    restored.insert((0, 0), "post-restore") if (0, 0) not in restored else None
    print(f"   restored and verified: {len(restored)} records, "
          f"height {restored.height()}\n")


def page_file_with_buffer(workdir: str) -> None:
    print("2. byte-level page file + LRU buffer pool")
    path = os.path.join(workdir, "pages.db")
    store = PageStore(FileBackend(path, page_size=4096), pool=BufferPool(8))

    # Write 64 pages through the store, then read with a hot working set.
    ids = []
    for i in range(64):
        page = DataPage(16)
        page.put((i, i), f"payload-{i}")
        ids.append(store.allocate(page))
    for _ in range(4):
        for pid in ids[:6]:  # a working set smaller than the pool
            store.read(pid)
    print(f"   buffer hit rate on hot set : {store.pool.hit_rate:.0%}")
    before = store.backend_stats.snapshot()
    for pid in ids:  # full scan: mostly misses
        store.read(pid)
    print(f"   hit rate after a full scan: {store.pool.hit_rate:.0%}")
    print(f"   physical reads in the scan: "
          f"{store.backend_stats.delta(before).reads}/{len(ids)}")
    store.close()

    # Reopen the file: pages survive process boundaries.
    reopened = PageStore(FileBackend(path, page_size=4096))
    page = reopened.read(ids[5])
    assert page.get((5, 5)) == "payload-5"
    print(f"   reopened {path.split(os.sep)[-1]}: "
          f"{reopened.page_count} pages intact")
    reopened.close()


def live_index_on_disk(workdir: str) -> None:
    print("3. a BMEH-tree operating directly on a page file")
    path = os.path.join(workdir, "live.db")
    store = PageStore(FileBackend(path, page_size=8192))
    index = BMEHTree(dims=2, page_capacity=8, widths=16, store=store)
    keys = unique(uniform_keys(1_500, 2, seed=21, domain=1 << 16))
    for i, key in enumerate(keys):
        index.insert(key, i)  # every page round-trips through bytes
    assert index.search(keys[500]) == 500
    index.check_invariants()
    size_kb = os.path.getsize(path) / 1024
    print(f"   {len(index)} records, {index.node_count} directory nodes, "
          f"{size_kb:.0f} KiB on disk")
    store.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        snapshot_roundtrip(workdir)
        page_file_with_buffer(workdir)
        live_index_on_disk(workdir)
    print("\ndone")


if __name__ == "__main__":
    main()
