"""The paper's own worked example (§4.3, Table 1, Figures 4 and 5).

Inserts the 22 binary-encoded keys of Table 1 into a BMEH-tree with the
example's parameters (ξ = (2,2), b = 2, widths (4,3)), then prints the
resulting directory tree and an ASCII rendering of the induced attribute
space partition — the reproduction of Figure 5.

Run:  python examples/paper_walkthrough.py
"""

from repro import BMEHTree
from repro.analysis import assert_exact_tiling, ascii_partition
from repro.workloads.table1 import (
    TABLE1_KEYS,
    TABLE1_PAGE_CAPACITY,
    TABLE1_WIDTHS,
    TABLE1_XI,
    table1_codes,
)


def print_tree(index, node_id=None, indent=0):
    node_id = index.root_id if node_id is None else node_id
    node = index.store.peek(node_id)
    pad = "  " * indent
    print(f"{pad}node #{node_id} (level {node.level}, H={node.depths})")
    for entry in node.entries():
        kind = "node" if entry.is_node else "page"
        print(f"{pad}  h={tuple(entry.h)} -> {kind} {entry.ptr}")
        if entry.is_node:
            print_tree(index, entry.ptr, indent + 2)


def print_partition(index):
    """Figure 5: the rectilinear partition over the 16 x 8 code grid."""
    print(ascii_partition(index, mark=table1_codes()))
    print("  (letters = page regions, . = NIL, * = a Table 1 key)")


def main() -> None:
    index = BMEHTree(
        dims=2,
        page_capacity=TABLE1_PAGE_CAPACITY,
        widths=TABLE1_WIDTHS,
        xi=TABLE1_XI,
        node_policy="per_dim",
    )
    print("Inserting the 22 keys of Table 1 "
          f"(b = {TABLE1_PAGE_CAPACITY}, xi = {TABLE1_XI}):\n")
    for (bits1, bits2), codes in zip(TABLE1_KEYS, table1_codes()):
        index.insert(codes, f"K({bits1},{bits2})")

    print("Directory tree (compare the paper's Figure 4):")
    print_tree(index)

    print(f"\nheight        : {index.height()} (balanced)")
    print(f"nodes         : {index.node_count}")
    print(f"data pages    : {index.data_page_count}")
    print(f"load factor α : {index.load_factor:.3f}")

    print("\nInduced attribute-space partition (the paper's Figure 5):\n")
    print_partition(index)

    cells = assert_exact_tiling(index)
    print(f"\nthe {len(cells)} regions tile the 16x8 space exactly")

    # The paper's search walk-through: key <"0101...", "101..."> .
    probe = (0b0101, 0b101)
    before = index.store.stats.snapshot()
    value = index.search(probe)
    reads = index.store.stats.delta(before).reads
    print(f"search {probe} -> {value} in {reads} reads (root pinned)")


if __name__ == "__main__":
    main()
