"""Directory growth under skew — Figures 6/7 in miniature, plus theory.

Streams uniform and skewed keys into the three schemes, printing the
directory size every few thousand insertions next to the analytic
``N^(1+1/b)`` envelope the paper quotes for one-level directories.

Run:  python examples/directory_growth_study.py        (quick, N=12k)
      REPRO_N=40000 python examples/directory_growth_study.py
"""

import os

from repro import BMEHTree, MDEH, MEHTree
from repro.analysis import expected_onelevel_directory_size
from repro.workloads import normal_keys, uniform_keys, unique


def study(title, keys, page_capacity=8):
    schemes = {
        "MDEH": MDEH(2, page_capacity, widths=31),
        "MEH": MEHTree(2, page_capacity, widths=31),
        "BMEH": BMEHTree(2, page_capacity, widths=31),
    }
    step = max(len(keys) // 10, 1)
    print(f"\n{title} (b = {page_capacity})")
    print(f"{'keys':>8} {'MDEH σ':>10} {'MEH σ':>10} {'BMEH σ':>10} "
          f"{'~N^(1+1/b)':>12}")
    for i, key in enumerate(keys, 1):
        for index in schemes.values():
            index.insert(key)
        if i % step == 0:
            envelope = expected_onelevel_directory_size(
                i, page_capacity, constant=0.25
            )
            print(
                f"{i:>8} {schemes['MDEH'].directory_size:>10} "
                f"{schemes['MEH'].directory_size:>10} "
                f"{schemes['BMEH'].directory_size:>10} {envelope:>12.0f}"
            )
    bmeh = schemes["BMEH"]
    per_key = bmeh.directory_size / len(keys)
    print(f"BMEH directory slots per key: {per_key:.2f}  (≈ constant "
          "= the linear growth of the paper's title)")


def main() -> None:
    n = int(os.environ.get("REPRO_N", 12_000))
    study("uniform keys (Figure 6)", unique(uniform_keys(n, 2, seed=3)))
    study("normal keys (Figure 7)", unique(normal_keys(n, 2, seed=3)))


if __name__ == "__main__":
    main()
