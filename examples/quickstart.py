"""Quickstart: a balanced multidimensional extendible hash tree in 60 lines.

Builds a 2-dimensional BMEH-tree over raw pseudo-key codes, runs exact
and range searches, and shows the I/O ledger — the metric the paper's
evaluation is about.

Run:  python examples/quickstart.py
"""

from repro import BMEHTree
from repro.workloads import uniform_keys, unique


def main() -> None:
    # A 2-d index over 16-bit codes; data pages hold 8 records
    # (the paper's b), directory nodes hold 2^6 = 64 slots (its phi).
    index = BMEHTree(dims=2, page_capacity=8, widths=16)

    print("Inserting 5,000 uniform keys ...")
    keys = unique(uniform_keys(5_000, dims=2, seed=7, domain=1 << 16))
    for i, key in enumerate(keys):
        index.insert(key, value=f"record-{i}")

    print(f"  keys stored      : {len(index)}")
    print(f"  data pages       : {index.data_page_count}")
    print(f"  load factor α    : {index.load_factor:.3f}  (≈ ln 2)")
    print(f"  directory nodes  : {index.node_count}")
    print(f"  directory size σ : {index.directory_size} element slots")
    print(f"  tree height      : {index.height()} level(s), root pinned")

    # Exact-match search: with the root in memory, at most
    # ceil(w/phi) - 1 node reads + 1 page read.
    probe = keys[1234]
    before = index.store.stats.snapshot()
    value = index.search(probe)
    cost = index.store.stats.delta(before)
    print(f"\nsearch({probe}) -> {value!r} in {cost.reads} disk reads")

    # Partial-range query: a box over both dimensions.
    lows, highs = (10_000, 20_000), (12_000, 45_000)
    before = index.store.stats.snapshot()
    hits = list(index.range_search(lows, highs))
    cost = index.store.stats.delta(before)
    print(
        f"range {lows}..{highs}: {len(hits)} records "
        f"in {cost.reads} disk reads"
    )

    # Deletion reverses insertion; emptied pages are dropped immediately.
    index.delete(probe)
    print(f"\nafter delete: {len(index)} keys, "
          f"{index.data_page_count} pages")
    index.check_invariants()
    print("structural invariants hold")


if __name__ == "__main__":
    main()
